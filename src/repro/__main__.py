"""Command-line entry point: regenerate the paper's results.

Usage::

    python -m repro [artifact ...] [--scale S] [--jobs N]
                    [--trace-dir DIR] [--no-cache] [--format text|json]
                    [--batch | --no-batch]
                    [--timeline] [--sample-interval N]
                    [--events] [--events-capacity N]
                    [--mechanism NAME] [--vc-entries N] [--mc-entries N]
                    [--sb-count N] [--sb-depth N]

where each artifact is one of ``table1 figure5 figure6 figure7 figure10
misspath ablations false-sharing out-of-core`` (default: all of them, in
paper order).

``--mechanism`` enables an L1 miss-path stage (victim cache, miss cache,
stream buffers, or the combined composition -- see DESIGN.md §5f) on
every cell; the sizing knobs are only accepted alongside a mechanism
that reads them.  The ``misspath`` artifact runs the mechanism x app x
variant x line-size matrix and reports per-mechanism conflict-miss
absorption normalized against the baseline hierarchy; with
``--mechanism`` it narrows the matrix to ``none`` plus that mechanism
(the cheap CI smoke configuration).

The paper artifacts run capture-once-replay-many: each distinct
reference stream is simulated directly once, then replayed through every
other cache configuration that needs it (``--jobs N`` shards the work
across N processes).  By default replay runs in *batch* mode: cells are
grouped by reference stream, each group decodes its trace once, and
each config replays through an exec-specialized kernel with the machine
shape baked in as literals (bit-identical to the sequential path --
``--no-batch`` -- by contract; manifests record the engine per cell).
``--batch`` with ``--events`` exits with an error, since the event
stream forces the direct interpreter path.  Traces and replayed results persist under
``--trace-dir`` (default ``results/trace-cache``), so a repeated
invocation with unchanged code and parameters skips simulation entirely;
``--no-cache`` starts cold and persists nothing.

``--format json`` swaps the rendered tables for one JSON object mapping
each artifact name to its schema-validated run manifest (see
``repro.obs.manifest``); progress lines stay on stderr.

``--timeline`` turns on windowed time-series sampling (see DESIGN.md
§5d): every ``--sample-interval`` data references each simulation closes
a window of miss-rate / stall / forwarding-chase deltas, and the
``--format json`` manifests grow a ``timeline`` section.  ``--events``
additionally records the bounded structured event stream (relocations,
chain walks, L2 inclusion victims, pool traffic) -- this forces the
general interpreter path, so use it for diagnosis, not benchmarking.

There is also a ``timeline`` subcommand over saved manifests::

    python -m repro timeline diff BEFORE.json AFTER.json [--threshold T]
    python -m repro timeline export MANIFEST.json [--out trace.json]
                    [--csv CELL]

``diff`` aligns two runs' windows and exits nonzero iff a per-window
rate regresses beyond the threshold; ``export`` writes Chrome-trace
JSON (loadable in https://ui.perfetto.dev) or one cell's windows as CSV.

Long-lived serving (DESIGN.md §5e)::

    python -m repro serve --port 8321 --workers 4 --trace-dir DIR
    python -m repro serve.bench --scale 0.3 --out BENCH_PR5.json

``serve`` exposes the experiment surface as an async HTTP JSON API with
request coalescing against the content-hashed artifact store;
``serve.bench`` load-tests it and records cold/warm service latency.

Trace-corpus management (DESIGN.md §5h)::

    python -m repro corpus ls [--trace-dir DIR]
    python -m repro corpus stat [--trace-dir DIR] [--json]
    python -m repro corpus gc --budget BYTES [--dry-run] [--trace-dir DIR]
    python -m repro corpus migrate [--trace-dir DIR]

``ls`` lists every stored trace (LRU order -- the top rows are next to
be evicted); ``stat`` summarizes corpus size, dedup savings, and format
versions; ``gc`` evicts least-recently-used traces until the corpus
fits the byte budget (suffixes K/M/G accepted; evicted traces recapture
transparently on next use); ``migrate`` upgrades v2 trace files to the
current chunked columnar format in place.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.adapt import experiment as adapt_experiment
from repro.adapt.config import POLICIES
from repro.cache.misspath import KNOB_MECHANISMS, MECHANISMS
from repro.experiments import ExperimentRunner
from repro.experiments import (
    ablations,
    figure5,
    figure6,
    figure7,
    figure10,
    misspath,
    table1,
)
from repro.experiments.runner import specs_for_artifacts
from repro.obs import Registry

DEFAULT_TRACE_DIR = "results/trace-cache"

_PAPER_ARTIFACTS = ("table1", "figure5", "figure6", "figure7", "figure10")
_ALL = _PAPER_ARTIFACTS + (
    "misspath", "adapt", "ablations", "false-sharing", "out-of-core"
)

#: First-word subcommands (everything else is an artifact list).
_SUBCOMMANDS = ("timeline", "serve", "serve.bench", "corpus")


class _CLIError(Exception):
    """A user-facing CLI failure: one line on stderr, nonzero exit."""


def _run_extension(name: str) -> str:
    if name == "false-sharing":
        from repro.smp import run_false_sharing_experiment
        from repro.smp.false_sharing import run_adaptive_false_sharing

        before, after = run_false_sharing_experiment()
        triple = run_adaptive_false_sharing()
        lines = [
            "False sharing (Section 2.2 extension)",
            f"  {before.label:32s} cycles={before.cycles:12.0f} "
            f"coherence misses={before.coherence_misses}",
            f"  {after.label:32s} cycles={after.cycles:12.0f} "
            f"coherence misses={after.coherence_misses}",
            f"  speedup: {before.cycles / after.cycles:.2f}x",
            "  adaptive segregation (repro.adapt policy feedback):",
        ]
        for result in (triple.never, triple.once, triple.adaptive):
            lines.append(
                f"  {result.label:32s} cycles={result.cycles:12.0f} "
                f"coherence misses={result.coherence_misses}"
            )
        lines.append(
            f"  trigger round: {triple.trigger_round}, segregation cost: "
            f"{triple.segregation_cost:.0f} cycles, checksums equal: "
            f"{triple.checksums_equal}"
        )
        return "\n".join(lines)
    from repro.vm import run_out_of_core_experiment

    scattered, linearized = run_out_of_core_experiment()
    return (
        "Out-of-core linearization (Section 2.2 extension)\n"
        f"  {scattered.label:11s} cycles={scattered.cycles:14.0f} "
        f"page faults={scattered.page_faults}\n"
        f"  {linearized.label:11s} cycles={linearized.cycles:14.0f} "
        f"page faults={linearized.page_faults}\n"
        f"  speedup: {scattered.cycles / linearized.cycles:.1f}x"
    )


def _extension_manifest(name: str, scale: float) -> dict:
    """Run manifest for the SMP / out-of-core extensions.

    These experiments use their own purpose-built machines rather than
    the uniprocessor registry, so the aggregate metric tree is empty and
    each cell carries the experiment's headline numbers directly.
    """
    from repro.obs import build_manifest, cell

    if name == "false-sharing":
        from repro.smp import run_false_sharing_experiment
        from repro.smp.false_sharing import run_adaptive_false_sharing

        before, after = run_false_sharing_experiment()
        triple = run_adaptive_false_sharing()
        cells = [
            cell(
                result.label,
                values={
                    "cycles": result.cycles,
                    "coherence_misses": result.coherence_misses,
                },
            )
            for result in (
                before, after, triple.never, triple.once, triple.adaptive
            )
        ]
        summary = {
            "speedup": before.cycles / after.cycles,
            "adaptive_trigger_round": float(
                -1 if triple.trigger_round is None else triple.trigger_round
            ),
            "adaptive_segregation_cost": triple.segregation_cost,
            "adaptive_checksums_equal": (
                1.0 if triple.checksums_equal else 0.0
            ),
        }
    else:
        from repro.vm import run_out_of_core_experiment

        scattered, linearized = run_out_of_core_experiment()
        cells = [
            cell(
                result.label,
                values={
                    "cycles": result.cycles,
                    "page_faults": result.page_faults,
                },
            )
            for result in (scattered, linearized)
        ]
        summary = {"speedup": scattered.cycles / linearized.cycles}
    return build_manifest(
        name,
        run={"scale": scale, "jobs": 1, "cache": False, "trace_dir": None},
        seeds={},
        metrics={},
        cells=cells,
        summary=summary,
    )


def _timeline_main(argv: list[str]) -> int:
    """``python -m repro timeline {diff,export} ...`` over saved manifests."""
    from repro.obs import chrome_trace, diff_timelines, render_diff, windows_csv

    parser = argparse.ArgumentParser(
        prog="python -m repro timeline",
        description="Compare or export the timeline sections of saved "
                    "run manifests (produced with --timeline --format json).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    diff_parser = sub.add_parser(
        "diff", help="flag per-window regressions between two manifests"
    )
    diff_parser.add_argument("before", help="baseline manifest JSON")
    diff_parser.add_argument("after", help="candidate manifest JSON")
    diff_parser.add_argument(
        "--threshold", type=float, default=0.05, metavar="T",
        help="relative per-window regression threshold (default 0.05)",
    )

    export_parser = sub.add_parser(
        "export", help="write a Chrome-trace (Perfetto) JSON or CSV view"
    )
    export_parser.add_argument("manifest", help="manifest JSON to export")
    export_parser.add_argument(
        "--out", default=None, metavar="FILE",
        help="output path (default: stdout)",
    )
    export_parser.add_argument(
        "--csv", default=None, metavar="CELL",
        help="emit CSV of this timeline cell's windows instead of a "
             "Chrome trace (cell id looks like health/32B/L)",
    )
    args = parser.parse_args(argv)

    def _load(path: str) -> dict:
        try:
            with open(path, encoding="utf-8") as handle:
                loaded = json.load(handle)
        except OSError as exc:
            raise _CLIError(
                f"cannot read manifest {path}: {exc.strerror or exc}"
            ) from exc
        except ValueError as exc:
            raise _CLIError(f"{path} is not valid JSON: {exc}") from exc
        if not isinstance(loaded, dict):
            raise _CLIError(f"{path} is not a manifest (expected a JSON object)")
        return loaded

    if args.command == "diff":
        regressions, notes = diff_timelines(
            _load(args.before), _load(args.after), threshold=args.threshold
        )
        print(render_diff(regressions, notes))
        return 1 if regressions else 0

    manifest = _load(args.manifest)
    if args.csv is not None:
        cells = (manifest.get("timeline") or {}).get("cells") or {}
        if args.csv not in cells:
            parser.error(
                f"no timeline cell {args.csv!r}; "
                f"available: {sorted(cells) or 'none'}"
            )
        rendered = windows_csv(cells[args.csv]["windows"])
    else:
        rendered = json.dumps(chrome_trace(manifest), indent=2) + "\n"
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(rendered)
    else:
        sys.stdout.write(rendered)
    return 0


def _parse_bytes(text: str) -> int:
    """Parse a byte count with an optional K/M/G suffix (powers of 1024)."""
    scales = {"k": 1024, "m": 1024**2, "g": 1024**3}
    raw = text.strip().lower().removesuffix("b")
    scale = 1
    if raw and raw[-1] in scales:
        scale = scales[raw[-1]]
        raw = raw[:-1]
    try:
        value = int(float(raw) * scale)
    except ValueError:
        raise _CLIError(
            f"invalid byte budget {text!r} (examples: 1048576, 512K, 16M, 2G)"
        ) from None
    if value < 0:
        raise _CLIError(f"byte budget must be >= 0, got {text!r}")
    return value


def _human_bytes(n: int | float) -> str:
    for unit in ("B", "KiB", "MiB", "GiB"):
        if abs(n) < 1024 or unit == "GiB":
            return f"{n:.1f}{unit}" if unit != "B" else f"{int(n)}B"
        n /= 1024
    return f"{n:.1f}GiB"  # pragma: no cover - loop always returns


def _corpus_main(argv: list[str]) -> int:
    """``python -m repro corpus {ls,stat,gc,migrate}`` over a trace store."""
    from repro.trace.store import ArtifactStore

    parser = argparse.ArgumentParser(
        prog="python -m repro corpus",
        description="Inspect and manage the on-disk trace corpus.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(sub_parser):
        sub_parser.add_argument(
            "--trace-dir", default=DEFAULT_TRACE_DIR, metavar="DIR",
            help=f"trace/result cache root (default {DEFAULT_TRACE_DIR})",
        )

    ls_parser = sub.add_parser(
        "ls", help="list stored traces, least-recently-used first"
    )
    add_common(ls_parser)

    stat_parser = sub.add_parser(
        "stat", help="summarize corpus size, dedup savings, format versions"
    )
    add_common(stat_parser)
    stat_parser.add_argument(
        "--json", action="store_true", help="emit the summary as JSON"
    )

    gc_parser = sub.add_parser(
        "gc", help="evict least-recently-used traces down to a byte budget"
    )
    add_common(gc_parser)
    gc_parser.add_argument(
        "--budget", required=True, metavar="BYTES",
        help="target corpus size in bytes (K/M/G suffixes accepted)",
    )
    gc_parser.add_argument(
        "--dry-run", action="store_true",
        help="report what would be evicted without removing anything",
    )

    migrate_parser = sub.add_parser(
        "migrate", help="upgrade stored traces to the current format in place"
    )
    add_common(migrate_parser)

    args = parser.parse_args(argv)
    store = ArtifactStore(args.trace_dir)

    if args.command == "ls":
        rows = store.corpus_status()
        if not rows:
            print(f"empty corpus at {store.root}")
            return 0
        now = time.time()
        print(
            f"{'KEY':12s} {'APP':10s} {'VARIANT':8s} {'SCALE':>5s} "
            f"{'SEED':>4s} {'EVENTS':>10s} {'CHUNKS':>6s} {'SIZE':>10s} "
            f"{'RESOLVED':>10s} {'IDLE':>8s}"
        )
        for row in rows:
            idle = now - row["mtime"]
            idle_text = (
                f"{idle / 3600:.1f}h" if idle >= 3600 else f"{idle / 60:.0f}m"
            )
            print(
                f"{row['key'][:12]:12s} "
                f"{str(row.get('app', '?')):10s} "
                f"{str(row.get('variant', '?')):8s} "
                f"{row.get('scale', 0):>5g} "
                f"{row.get('seed', 0):>4} "
                f"{row.get('event_count', 0):>10} "
                f"{row.get('chunks', 0):>6} "
                f"{_human_bytes(row['bytes']):>10s} "
                f"{_human_bytes(row['resolved_bytes']):>10s} "
                f"{idle_text:>8s}"
            )
        return 0

    if args.command == "stat":
        rows = store.corpus_status()
        inode_size = {row["inode"]: row["bytes"] for row in rows}
        for row in rows:
            if "resolved_inode" in row:
                inode_size[row["resolved_inode"]] = row["resolved_bytes"]
        apparent = sum(row["bytes"] + row["resolved_bytes"] for row in rows)
        unique = sum(inode_size.values())
        versions: dict[str, int] = {}
        for row in rows:
            label = str(row.get("format", "unknown"))
            versions[label] = versions.get(label, 0) + 1
        summary = {
            "root": str(store.root),
            "traces": len(rows),
            "events": sum(row.get("event_count", 0) for row in rows),
            "apparent_bytes": apparent,
            "unique_bytes": unique,
            "dedup_saved_bytes": apparent - unique,
            "format_versions": versions,
        }
        if args.json:
            # Machine consumers get per-entry identity too: the
            # chunking-independent stream digest is what dedup and
            # sidecar validation key on, so scripts can join corpus
            # rows against capture manifests without re-reading traces.
            summary["entries"] = [
                {
                    "key": row["key"],
                    "stream_digest": row.get("stream_sha256"),
                    "bytes": row["bytes"],
                    "events": row.get("event_count", 0),
                    "format": row.get("format"),
                }
                for row in rows
            ]
            json.dump(summary, sys.stdout, indent=2, sort_keys=True)
            print()
        else:
            print(f"corpus at {summary['root']}")
            print(f"  traces:       {summary['traces']}")
            print(f"  events:       {summary['events']}")
            print(f"  on disk:      {_human_bytes(unique)}")
            print(
                f"  dedup saved:  {_human_bytes(summary['dedup_saved_bytes'])}"
            )
            print(f"  formats:      {summary['format_versions']}")
        return 0

    if args.command == "gc":
        report = store.gc(_parse_bytes(args.budget), dry_run=args.dry_run)
        verb = "would evict" if report["dry_run"] else "evicted"
        print(
            f"{verb} {len(report['evicted'])} trace(s), "
            f"freeing {_human_bytes(report['freed_bytes'])}: "
            f"{_human_bytes(report['total_bytes'])} -> "
            f"{_human_bytes(report['after_bytes'])} "
            f"(budget {_human_bytes(report['budget_bytes'])}, "
            f"{report['kept']} kept)"
        )
        for key in report["evicted"]:
            print(f"  {key}")
        return 0

    report = store.migrate()
    print(
        f"migrated {len(report['migrated'])} trace(s); "
        f"{report['current']} already current; "
        f"{len(report['failed'])} failed"
    )
    for entry in report["migrated"]:
        print(f"  v{entry['version']} {entry['from'][:12]} -> {entry['to'][:12]}")
    for name, error in report["failed"].items():
        print(f"  FAILED {name}: {error}", file=sys.stderr)
    return 1 if report["failed"] else 0


def main(argv: list[str] | None = None) -> int:
    """Top-level entry point: dispatch subcommands, then artifacts.

    Every user-facing failure -- unknown subcommand or artifact, invalid
    flag combination, unreadable manifest -- exits nonzero with a
    one-line message; tracebacks are reserved for actual bugs.
    """
    if argv is None:
        argv = sys.argv[1:]
    from repro.trace.format import TraceFormatError

    try:
        if argv and argv[0] == "timeline":
            return _timeline_main(argv[1:])
        if argv and argv[0] == "serve":
            from repro.serve import serve_main

            return serve_main(argv[1:])
        if argv and argv[0] == "serve.bench":
            from repro.serve.bench import bench_main

            return bench_main(argv[1:])
        if argv and argv[0] == "corpus":
            return _corpus_main(argv[1:])
        return _artifacts_main(argv)
    except _CLIError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except TraceFormatError as exc:
        # A garbled or unsupported trace file names itself (path + found
        # version); surface that one line instead of a traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return 130


def _artifacts_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the tables and figures of Luk & Mowry (ISCA 1999).",
    )
    parser.add_argument(
        "artifacts",
        nargs="*",
        metavar="artifact",
        help=f"artifacts to regenerate (default: all of {' '.join(_ALL)})",
    )
    parser.add_argument(
        "--scale", type=float, default=1.0,
        help="workload scale factor (default 1.0; smaller is faster)",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-run progress lines"
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="shard simulations across N worker processes (default 1)",
    )
    parser.add_argument(
        "--trace-dir", default=DEFAULT_TRACE_DIR, metavar="DIR",
        help="on-disk trace/result cache root "
             f"(default {DEFAULT_TRACE_DIR})",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="ignore the on-disk cache entirely (capture-once-replay-many "
             "still applies within this invocation)",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="run under cProfile and dump the hottest functions "
             "(by cumulative time) to stderr when done",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format: rendered tables (text) or one JSON object "
             "mapping artifact name to its run manifest (json)",
    )
    parser.add_argument(
        "--timeline", action="store_true",
        help="sample windowed time series during each simulation and "
             "emit a timeline section in JSON manifests",
    )
    parser.add_argument(
        "--sample-interval", type=int, default=None, metavar="N",
        help="window width in data references for --timeline "
             "(default 10000; requires --timeline)",
    )
    batch_group = parser.add_mutually_exclusive_group()
    batch_group.add_argument(
        "--batch", dest="batch", action="store_true", default=None,
        help="group sweep cells by reference stream and replay each "
             "group through one decoded stream with exec-specialized "
             "per-config kernels (the default; results are bit-identical "
             "to the sequential path)",
    )
    batch_group.add_argument(
        "--no-batch", dest="batch", action="store_false",
        help="run every cell through the sequential one-at-a-time path",
    )
    parser.add_argument(
        "--events", action="store_true",
        help="record the structured event stream (implies the general "
             "interpreter path; do not combine with benchmarking)",
    )
    parser.add_argument(
        "--events-capacity", type=int, default=None, metavar="N",
        help="event ring-buffer capacity for --events "
             "(default 4096; requires --events)",
    )
    parser.add_argument(
        "--adapt-policy", default=None, metavar="NAME",
        help="narrow the adapt artifact's policy matrix to one policy "
             f"({', '.join(POLICIES)}; default: all of them; requires "
             "the adapt artifact)",
    )
    parser.add_argument(
        "--heatmap-region", type=int, default=None, metavar="BYTES",
        help="heatmap region granularity in bytes for timeline/adapt "
             "sampling (power of two; default 65536; requires "
             "--timeline or the adapt artifact)",
    )
    parser.add_argument(
        "--mechanism", default=None, metavar="NAME",
        help="L1 miss-path mechanism for every cell "
             f"({', '.join(MECHANISMS)}; default none).  With the "
             "misspath artifact this narrows its matrix to "
             "none + NAME instead",
    )
    parser.add_argument(
        "--vc-entries", type=int, default=None, metavar="N",
        help="victim-cache entries (default 8; requires --mechanism "
             "victim_cache or combined)",
    )
    parser.add_argument(
        "--mc-entries", type=int, default=None, metavar="N",
        help="miss-cache entries (default 8; requires --mechanism "
             "miss_cache)",
    )
    parser.add_argument(
        "--sb-count", type=int, default=None, metavar="N",
        help="stream-buffer count (default 4; requires --mechanism "
             "stream_buffers or combined)",
    )
    parser.add_argument(
        "--sb-depth", type=int, default=None, metavar="N",
        help="stream-buffer depth (default 4; requires --mechanism "
             "stream_buffers or combined)",
    )
    args = parser.parse_args(argv)
    if args.scale <= 0:
        parser.error(f"--scale must be > 0, got {args.scale:g}")
    if args.jobs < 1:
        parser.error(f"--jobs must be >= 1, got {args.jobs}")
    if args.sample_interval is not None and not args.timeline:
        parser.error("--sample-interval only makes sense with --timeline")
    if args.events_capacity is not None and not args.events:
        parser.error("--events-capacity only makes sense with --events")
    if args.batch and args.events:
        parser.error(
            "--batch cannot be combined with --events: the event stream "
            "forces the direct interpreter path (drop --batch; event "
            "cells always run sequentially)"
        )
    batch = (not args.events) if args.batch is None else args.batch
    sample_interval = 10000 if args.sample_interval is None else args.sample_interval
    events_capacity = 4096 if args.events_capacity is None else args.events_capacity
    if sample_interval < 1:
        parser.error("--sample-interval must be >= 1")
    if events_capacity < 1:
        parser.error("--events-capacity must be >= 1")
    mechanism = args.mechanism or "none"
    if mechanism not in MECHANISMS:
        parser.error(
            f"unknown --mechanism {mechanism!r}; choose from {list(MECHANISMS)}"
        )
    misspath_knobs = {}
    for knob, users in KNOB_MECHANISMS.items():
        flag = "--" + knob.replace("_", "-")
        value = getattr(args, knob)
        if value is None:
            continue
        if mechanism not in users:
            parser.error(
                f"{flag} only makes sense with --mechanism "
                f"{' or '.join(users)}"
            )
        if value < 1:
            parser.error(f"{flag} must be >= 1, got {value}")
        misspath_knobs[knob] = value
    artifacts = args.artifacts or list(_ALL)
    unknown = [name for name in artifacts if name not in _ALL]
    if unknown:
        parser.error(
            f"unknown artifact(s) or subcommand {unknown}; artifacts: "
            f"{list(_ALL)}; subcommands: {list(_SUBCOMMANDS)}"
        )
    if args.adapt_policy is not None:
        if args.adapt_policy not in POLICIES:
            parser.error(
                f"unknown --adapt-policy {args.adapt_policy!r}; "
                f"choose from {list(POLICIES)}"
            )
        if "adapt" not in artifacts:
            parser.error(
                "--adapt-policy only makes sense with the adapt artifact"
            )
    from repro.adapt.config import DEFAULT_HEATMAP_REGION

    heatmap_region = DEFAULT_HEATMAP_REGION
    if args.heatmap_region is not None:
        value = args.heatmap_region
        if value < 1 or value & (value - 1):
            parser.error(
                f"--heatmap-region must be a power of two, got {value}"
            )
        if not args.timeline and "adapt" not in artifacts:
            parser.error(
                "--heatmap-region only makes sense with --timeline or "
                "the adapt artifact"
            )
        heatmap_region = value

    profiler = None
    if args.profile:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()

    runner = ExperimentRunner(
        scale=args.scale,
        verbose=not args.quiet,
        jobs=args.jobs,
        trace_dir=args.trace_dir,
        use_cache=not args.no_cache,
        timeline_interval=sample_interval if args.timeline else 0,
        events_capacity=events_capacity if args.events else 0,
        mechanism=mechanism,
        batch=batch,
        heatmap_region=heatmap_region,
        adapt_policy=args.adapt_policy,
        **misspath_knobs,
    )
    runner.prime(
        specs_for_artifacts(
            artifacts,
            args.scale,
            mechanism,
            adapt_policy=args.adapt_policy,
            **misspath_knobs,
        )
    )
    modules = {
        "table1": table1,
        "figure5": figure5,
        "figure6": figure6,
        "figure7": figure7,
        "figure10": figure10,
        "misspath": misspath,
        "adapt": adapt_experiment,
    }
    emit_json = args.format == "json"
    manifests: dict[str, dict] = {}
    started = time.time()
    for artifact in artifacts:
        if not emit_json:
            print(f"=== {artifact} ===")
        if artifact in modules:
            with runner.span(artifact):
                result = modules[artifact].run(runner, scale=args.scale)
            if emit_json:
                manifests[artifact] = modules[artifact].manifest(result, runner)
            else:
                print(result.render())
        elif artifact == "ablations":
            obs = Registry()
            scale = min(args.scale, 0.5)
            results = ablations.run_all(scale=scale, obs=obs)
            if emit_json:
                manifests[artifact] = ablations.manifest(results, scale, obs)
            else:
                for ablation in results:
                    print(ablation.render())
                    print()
        elif emit_json:
            manifests[artifact] = _extension_manifest(artifact, args.scale)
        else:
            print(_run_extension(artifact))
        if not emit_json:
            print()
    if emit_json:
        json.dump(manifests, sys.stdout, indent=2)
        print()
        print(f"done in {time.time() - started:.0f}s", file=sys.stderr)
    else:
        print(f"done in {time.time() - started:.0f}s")
    if profiler is not None:
        import pstats

        profiler.disable()
        stats = pstats.Stats(profiler, stream=sys.stderr)
        stats.sort_stats("cumulative").print_stats(40)
    return 0


if __name__ == "__main__":
    sys.exit(main())
