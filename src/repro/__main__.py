"""Command-line entry point: regenerate the paper's results.

Usage::

    python -m repro [artifact ...] [--scale S] [--jobs N]
                    [--trace-dir DIR] [--no-cache] [--format text|json]

where each artifact is one of ``table1 figure5 figure6 figure7 figure10
ablations false-sharing out-of-core`` (default: all of them, in paper
order).

The paper artifacts run capture-once-replay-many: each distinct
reference stream is simulated directly once, then replayed through every
other cache configuration that needs it (``--jobs N`` shards the work
across N processes).  Traces and replayed results persist under
``--trace-dir`` (default ``results/trace-cache``), so a repeated
invocation with unchanged code and parameters skips simulation entirely;
``--no-cache`` starts cold and persists nothing.

``--format json`` swaps the rendered tables for one JSON object mapping
each artifact name to its schema-validated run manifest (see
``repro.obs.manifest``); progress lines stay on stderr.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.experiments import ExperimentRunner
from repro.experiments import ablations, figure5, figure6, figure7, figure10, table1
from repro.experiments.runner import specs_for_artifacts
from repro.obs import Registry

DEFAULT_TRACE_DIR = "results/trace-cache"

_PAPER_ARTIFACTS = ("table1", "figure5", "figure6", "figure7", "figure10")
_ALL = _PAPER_ARTIFACTS + ("ablations", "false-sharing", "out-of-core")


def _run_extension(name: str) -> str:
    if name == "false-sharing":
        from repro.smp import run_false_sharing_experiment

        before, after = run_false_sharing_experiment()
        return (
            "False sharing (Section 2.2 extension)\n"
            f"  {before.label:32s} cycles={before.cycles:12.0f} "
            f"coherence misses={before.coherence_misses}\n"
            f"  {after.label:32s} cycles={after.cycles:12.0f} "
            f"coherence misses={after.coherence_misses}\n"
            f"  speedup: {before.cycles / after.cycles:.2f}x"
        )
    from repro.vm import run_out_of_core_experiment

    scattered, linearized = run_out_of_core_experiment()
    return (
        "Out-of-core linearization (Section 2.2 extension)\n"
        f"  {scattered.label:11s} cycles={scattered.cycles:14.0f} "
        f"page faults={scattered.page_faults}\n"
        f"  {linearized.label:11s} cycles={linearized.cycles:14.0f} "
        f"page faults={linearized.page_faults}\n"
        f"  speedup: {scattered.cycles / linearized.cycles:.1f}x"
    )


def _extension_manifest(name: str, scale: float) -> dict:
    """Run manifest for the SMP / out-of-core extensions.

    These experiments use their own purpose-built machines rather than
    the uniprocessor registry, so the aggregate metric tree is empty and
    each cell carries the experiment's headline numbers directly.
    """
    from repro.obs import build_manifest, cell

    if name == "false-sharing":
        from repro.smp import run_false_sharing_experiment

        before, after = run_false_sharing_experiment()
        cells = [
            cell(
                result.label,
                values={
                    "cycles": result.cycles,
                    "coherence_misses": result.coherence_misses,
                },
            )
            for result in (before, after)
        ]
        summary = {"speedup": before.cycles / after.cycles}
    else:
        from repro.vm import run_out_of_core_experiment

        scattered, linearized = run_out_of_core_experiment()
        cells = [
            cell(
                result.label,
                values={
                    "cycles": result.cycles,
                    "page_faults": result.page_faults,
                },
            )
            for result in (scattered, linearized)
        ]
        summary = {"speedup": scattered.cycles / linearized.cycles}
    return build_manifest(
        name,
        run={"scale": scale, "jobs": 1, "cache": False, "trace_dir": None},
        seeds={},
        metrics={},
        cells=cells,
        summary=summary,
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the tables and figures of Luk & Mowry (ISCA 1999).",
    )
    parser.add_argument(
        "artifacts",
        nargs="*",
        metavar="artifact",
        help=f"artifacts to regenerate (default: all of {' '.join(_ALL)})",
    )
    parser.add_argument(
        "--scale", type=float, default=1.0,
        help="workload scale factor (default 1.0; smaller is faster)",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-run progress lines"
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="shard simulations across N worker processes (default 1)",
    )
    parser.add_argument(
        "--trace-dir", default=DEFAULT_TRACE_DIR, metavar="DIR",
        help="on-disk trace/result cache root "
             f"(default {DEFAULT_TRACE_DIR})",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="ignore the on-disk cache entirely (capture-once-replay-many "
             "still applies within this invocation)",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="run under cProfile and dump the hottest functions "
             "(by cumulative time) to stderr when done",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format: rendered tables (text) or one JSON object "
             "mapping artifact name to its run manifest (json)",
    )
    args = parser.parse_args(argv)
    artifacts = args.artifacts or list(_ALL)
    unknown = [name for name in artifacts if name not in _ALL]
    if unknown:
        parser.error(f"unknown artifact(s) {unknown}; choose from {list(_ALL)}")

    profiler = None
    if args.profile:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()

    runner = ExperimentRunner(
        scale=args.scale,
        verbose=not args.quiet,
        jobs=args.jobs,
        trace_dir=args.trace_dir,
        use_cache=not args.no_cache,
    )
    runner.prime(specs_for_artifacts(artifacts, args.scale))
    modules = {
        "table1": table1,
        "figure5": figure5,
        "figure6": figure6,
        "figure7": figure7,
        "figure10": figure10,
    }
    emit_json = args.format == "json"
    manifests: dict[str, dict] = {}
    started = time.time()
    for artifact in artifacts:
        if not emit_json:
            print(f"=== {artifact} ===")
        if artifact in modules:
            with runner.span(artifact):
                result = modules[artifact].run(runner, scale=args.scale)
            if emit_json:
                manifests[artifact] = modules[artifact].manifest(result, runner)
            else:
                print(result.render())
        elif artifact == "ablations":
            obs = Registry()
            scale = min(args.scale, 0.5)
            results = ablations.run_all(scale=scale, obs=obs)
            if emit_json:
                manifests[artifact] = ablations.manifest(results, scale, obs)
            else:
                for ablation in results:
                    print(ablation.render())
                    print()
        elif emit_json:
            manifests[artifact] = _extension_manifest(artifact, args.scale)
        else:
            print(_run_extension(artifact))
        if not emit_json:
            print()
    if emit_json:
        json.dump(manifests, sys.stdout, indent=2)
        print()
        print(f"done in {time.time() - started:.0f}s", file=sys.stderr)
    else:
        print(f"done in {time.time() - started:.0f}s")
    if profiler is not None:
        import pstats

        profiler.disable()
        stats = pstats.Stats(profiler, stream=sys.stderr)
        stats.sort_stats("cumulative").print_stats(40)
    return 0


if __name__ == "__main__":
    sys.exit(main())
