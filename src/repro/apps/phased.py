"""Phase-changing variants of ``mst`` and ``health``.

Static layout optimization (the paper's one-shot linearization) bakes in
whatever traversal order existed when it ran.  These subclasses flip the
traversal order mid-run — a deterministic, seeded permutation of the hot
linked lists — so a once-optimized layout goes stale halfway through and
only an *adaptive* optimizer (``repro.adapt``) can recover the locality.

The flip is **position-keyed**, never address-keyed: it walks the list,
shuffles positions with a dedicated :class:`DeterministicRNG`, and
relinks ``next`` pointers through the machine's timed operations.  The
logical operation sequence therefore depends only on list *contents*
(identical across variants and across adaptive/non-adaptive runs, since
relocation never changes logical order), which keeps checksums equal
across every variant — an invariant the app-level tests pin.

When an adaptive engine is present, both apps register their hot
structures as candidate layout actions: re-linearization of the flipped
lists (the recovery lever), plus hot-object copying and coloring-aware
placement so the epsilon-greedy policy has a real layout search space.
"""

from __future__ import annotations

from repro.apps.base import Variant, register
from repro.apps.health import PATIENT, VILLAGE, Health, _SimState
from repro.apps.mst import MST, VERTEX
from repro.core.machine import NULL, Machine
from repro.runtime.rng import DeterministicRNG

#: Seed whitener for the flip RNG streams (distinct from the build RNG).
_FLIP_SALT = 0x9E3779B97F4A7C15


def permute_list(
    machine: Machine, head_handle: int, next_offset: int, rng: DeterministicRNG
) -> int:
    """Relink a singly linked list into a seeded random position order.

    Walks via timed loads, Fisher-Yates shuffles the *positions*, then
    rewrites the head and every ``next`` pointer via timed stores.  RNG
    consumption depends only on the node count, so the permutation is
    identical across layout variants.  Returns the node count.
    """
    nodes: list[int] = []
    node = machine.load(head_handle)
    while node != NULL:
        nodes.append(node)
        node = machine.load(node + next_offset)
    n = len(nodes)
    if n < 2:
        return n
    order = list(range(n))
    for i in range(n - 1, 0, -1):
        j = rng.randint(i + 1)
        order[i], order[j] = order[j], order[i]
    machine.store(head_handle, nodes[order[0]])
    for pos in range(n - 1):
        machine.store(nodes[order[pos]] + next_offset, nodes[order[pos + 1]])
    machine.store(nodes[order[-1]] + next_offset, NULL)
    return n


@register
class MSTPhase(MST):
    """``mst`` with a mid-solve traversal-order flip."""

    name = "mst_phase"
    description = "mst with a mid-solve vertex-list order flip (phase change)"
    optimization = "list linearization; goes stale at the phase boundary"

    #: Fraction of the blue-rule iterations after which the flip fires.
    #: Early enough that most of the solve runs on the flipped order --
    #: the regime where a mid-run re-linearization can pay for itself.
    PHASE_AT = 0.25

    def flip_iteration(self, count: int) -> int:
        """The (deterministic) solve iteration at which the flip fires."""
        return max(1, int((count - 1) * self.PHASE_AT))

    def execute(self, machine: Machine, variant: Variant) -> tuple[int, dict]:
        self._flipped = False
        self._phase_record: dict = {}
        checksum, extras = super().execute(machine, variant)
        extras["phase"] = dict(self._phase_record)
        return checksum, extras

    def _before_solve(
        self, machine: Machine, variant: Variant, head_handle: int, count: int
    ) -> None:
        if machine.adapt is None:
            return
        engine = machine.adapt
        # Priority order: re-linearizing the vertex list is the lever
        # that directly repairs the flip; copy/recolor of the adjacency
        # arrays are alternative candidates for the bandit to explore.
        engine.register_list(
            "vertices", head_handle, VERTEX.offset("next"), VERTEX.size
        )
        objects: list[tuple[int, int]] = []
        slots: list[int] = []
        node = machine.load(head_handle)
        while node != NULL:
            objects.append(
                (VERTEX.read(machine, node, "adj"), self.BUCKETS_PER_VERTEX * 8)
            )
            # The vertex's ``adj`` field is the principal pointer into
            # the bucket array; repairing it after a copy/recolor keeps
            # those actions profitable instead of chase-bound.
            slots.append(node + VERTEX.offset("adj"))
            node = VERTEX.read(machine, node, "next")
        engine.register_objects("adjacency", objects, slots=slots)
        engine.register_recolor("adjacency", objects, slots=slots)

    def _phase_hook(
        self, machine: Machine, head_handle: int, count: int, iteration: int
    ) -> None:
        if self._flipped or iteration != self.flip_iteration(count):
            return
        self._flipped = True
        rng = DeterministicRNG((self.seed * 2654435761) ^ _FLIP_SALT)
        moved = permute_list(machine, head_handle, VERTEX.offset("next"), rng)
        self._phase_record = {
            "iteration": iteration,
            "vertices_permuted": moved,
        }


@register
class HealthPhase(Health):
    """``health`` with a mid-simulation patient-list order flip."""

    name = "health_phase"
    description = "health with a mid-run patient-list order flip (phase change)"
    optimization = "periodic list linearization; disrupted at the phase boundary"

    #: Fraction of the simulation steps after which the flip fires.
    PHASE_AT = 0.5

    def flip_step(self, steps: int) -> int:
        """The (deterministic) simulation step at which the flip fires."""
        return max(1, int(steps * self.PHASE_AT))

    def execute(self, machine: Machine, variant: Variant) -> tuple[int, dict]:
        self._flipped = False
        self._phase_record: dict = {}
        checksum, extras = super().execute(machine, variant)
        extras["phase"] = dict(self._phase_record)
        return checksum, extras

    def _before_steps(
        self, machine: Machine, state: _SimState, root: int
    ) -> None:
        if machine.adapt is None:
            return
        engine = machine.adapt
        handles: list[int] = []
        for village, _is_leaf in state.villages:
            handles.append(state.list_handle(village, "waiting"))
            handles.append(state.list_handle(village, "inside"))
        engine.register_lists(
            "patients", handles, PATIENT.offset("next"), PATIENT.size
        )
        objects = [(village, VILLAGE.size) for village, _is_leaf in state.villages]
        engine.register_objects("villages", objects)
        engine.register_recolor("villages", objects)

    def _phase_hook(
        self, machine: Machine, state: _SimState, step: int, steps: int
    ) -> None:
        if self._flipped or step != self.flip_step(steps):
            return
        self._flipped = True
        rng = DeterministicRNG((self.seed * 2654435761) ^ _FLIP_SALT)
        moved = 0
        for village, _is_leaf in state.villages:
            for which in ("waiting", "inside"):
                moved += permute_list(
                    machine,
                    state.list_handle(village, which),
                    PATIENT.offset("next"),
                    rng,
                )
        self._phase_record = {"step": step, "patients_permuted": moved}


__all__ = ["MSTPhase", "HealthPhase", "permute_list"]
