"""Radiosity: iterative light-transport over patch interaction lists.

A radiosity solver stores, for every surface patch, a linked *interaction
list*: the other patches it exchanges energy with, each with a form
factor.  Every iteration walks every patch's interaction list to gather
energy; as the solution refines, patches subdivide and new interactions
are spliced in, churning the lists.

Interactions are created interleaved across patches (each subdivision
touches several patches), so the lists scatter -- and keep scattering as
the run proceeds, which is why the paper invokes **list linearization
periodically** for this application rather than once.

All arithmetic is 16.16 fixed point so checksums are exact and identical
across variants.
"""

from __future__ import annotations

from repro.apps.base import Application, Variant, register
from repro.core.machine import NULL, Machine
from repro.opts.linearize import ListLinearizer
from repro.runtime.records import RecordLayout
from repro.runtime.rng import DeterministicRNG

PATCH = RecordLayout(
    "patch", [("energy", 8), ("unshot", 8), ("inter", 8), ("area", 8)]
)

INTERACTION = RecordLayout(
    "interaction", [("dst", 8), ("ff", 8), ("next", 8)]
)

#: Form factors are 16.16 fixed point; energies stay well inside 64 bits.
_FIX = 16


@register
class Radiosity(Application):
    """A radiosity gather loop on the simulated machine."""

    name = "radiosity"
    description = "iterative energy gather over per-patch interaction lists"
    optimization = "list linearization (periodic, per interaction list)"

    PATCHES = 96
    INITIAL_INTERACTIONS = 40   # per patch
    STEPS = 14
    SUBDIVIDE_PROBABILITY = 0.30  # per patch per step: splice new interactions
    SUBDIVIDE_FANOUT = 4
    LINEARIZE_THRESHOLD = 10
    WORK_PER_INTERACTION = 18
    PREFETCH_BLOCK = 2

    def execute(self, machine: Machine, variant: Variant) -> tuple[int, dict]:
        rng = DeterministicRNG(self.seed)
        patches = self._build_patches(machine, rng)

        linearizer = None
        if variant.optimized:
            pool = machine.create_pool(8 << 20, "radiosity")
            linearizer = ListLinearizer(
                machine,
                pool,
                INTERACTION.offset("next"),
                INTERACTION.size,
                threshold=self._scaled(self.LINEARIZE_THRESHOLD, minimum=3),
            )

        steps = self._scaled(self.STEPS)
        for _ in range(steps):
            self._gather_step(machine, patches, variant)
            self._subdivide(machine, rng, patches, linearizer)

        checksum = 0
        for patch in patches:
            checksum = (checksum * 31 + PATCH.read(machine, patch, "energy")) % (1 << 61)
        extras = {
            "linearizations": linearizer.linearizations if linearizer else 0,
        }
        return checksum, extras

    # ------------------------------------------------------------------
    def _build_patches(self, machine: Machine, rng: DeterministicRNG) -> list[int]:
        count = self._scaled(self.PATCHES, minimum=4)
        patches = []
        for index in range(count):
            patch = PATCH.alloc(machine)
            PATCH.write(machine, patch, "energy", 0)
            PATCH.write(machine, patch, "unshot", (index + 1) << _FIX)
            PATCH.write(machine, patch, "inter", NULL)
            PATCH.write(machine, patch, "area", 1 << _FIX)
            patches.append(patch)
        # Interactions arrive interleaved across patches: scatter.
        total = count * self._scaled(self.INITIAL_INTERACTIONS, minimum=4)
        for _ in range(total):
            self._add_interaction(machine, rng, patches,
                                  patches[rng.randint(count)], linearizer=None)
        return patches

    def _add_interaction(
        self,
        machine: Machine,
        rng: DeterministicRNG,
        patches: list[int],
        patch: int,
        linearizer: ListLinearizer | None,
    ) -> None:
        node = INTERACTION.alloc(machine)
        INTERACTION.write(machine, node, "dst", patches[rng.randint(len(patches))])
        INTERACTION.write(machine, node, "ff", 1 + rng.randint(1 << (_FIX - 4)))
        handle = patch + PATCH.offset("inter")
        INTERACTION.write(machine, node, "next", machine.load(handle))
        machine.store(handle, node)
        if linearizer is not None:
            linearizer.note_op(handle)

    # ------------------------------------------------------------------
    def _gather_step(self, machine: Machine, patches: list[int], variant: Variant) -> None:
        """One gather iteration: every patch integrates over its list."""
        m = machine
        line = m.config.hierarchy.line_size
        prefetching = variant.prefetching
        for patch in patches:
            gathered = 0
            node = m.load(patch + PATCH.offset("inter"))
            while node != NULL:
                m.execute(self.WORK_PER_INTERACTION)
                dst = INTERACTION.read(m, node, "dst")
                ff = INTERACTION.read(m, node, "ff")
                gathered += (PATCH.read(m, dst, "unshot") * ff) >> _FIX
                next_node = INTERACTION.read(m, node, "next")
                if prefetching:
                    if variant.optimized:
                        m.prefetch(node + line, self.PREFETCH_BLOCK)
                    elif next_node != NULL:
                        m.prefetch(next_node, 1)
                node = next_node
            energy = PATCH.read(m, patch, "energy")
            PATCH.write(m, patch, "energy", (energy + gathered) % (1 << 61))
            # Half the gathered energy becomes this patch's new unshot.
            PATCH.write(m, patch, "unshot", gathered >> 1)

    def _subdivide(
        self,
        machine: Machine,
        rng: DeterministicRNG,
        patches: list[int],
        linearizer: ListLinearizer | None,
    ) -> None:
        """Refinement: some patches gain a burst of new interactions."""
        for patch in patches:
            if rng.chance(self.SUBDIVIDE_PROBABILITY):
                for _ in range(self.SUBDIVIDE_FANOUT):
                    self._add_interaction(machine, rng, patches, patch, linearizer)
