"""Compress: LZW compression (SPEC'95 129.compress lineage).

The hot data structures are two parallel arrays indexed by the same hash:
``htab`` (8-byte entries holding the combined ``(char, code)`` key) and
``codetab`` (2-byte entries holding the dictionary code).  Every input
character hashes into ``htab``; on a key match the corresponding
``codetab`` entry is read, and on an empty slot both are written.
Collisions run a secondary displacement probe over ``htab`` alone.

The paper's optimization merges the two arrays into a single interleaved
table ``T[i] = (htab[i], codetab[i])`` (see :mod:`repro.opts.merging` for
the relocation-granularity details).  Compress is the paper's *negative
result*: the interleaved stride halves how many entries fit per cache
line, which hurts the (frequent) probes that touch ``htab`` alone -- so
the optimized layout **loses at 32 B and 64 B lines and only wins at
128 B**, where a line is long enough to cover both halves comfortably.
Reproducing that crossover is the point of this application.
"""

from __future__ import annotations

from repro.apps.base import Application, Variant, register
from repro.core.machine import Machine
from repro.opts.merging import MergedTable, merge_tables
from repro.runtime.rng import DeterministicRNG


@register
class Compress(Application):
    """LZW dictionary compression on the simulated machine."""

    name = "compress"
    description = "LZW compression over parallel hash/code tables"
    optimization = "table merging: interleave htab and codetab (once)"

    HSIZE = 5003           # hash table entries (the real compress prime)
    INPUT_CHARS = 20000
    ALPHABET = 16          # distinct byte values (skewed): compressible input
    FIRST_CODE = 256
    WORK_PER_CHAR = 10
    WORK_PER_PROBE = 4
    STRAY_SAMPLES = 8
    HSHIFT = 4

    def execute(self, machine: Machine, variant: Variant) -> tuple[int, dict]:
        rng = DeterministicRNG(self.seed)
        hsize = self.HSIZE
        htab = machine.malloc(hsize * 8)
        codetab = machine.malloc(hsize * 2)

        merged: MergedTable | None = None
        if variant.optimized:
            pool = machine.create_pool(2 << 20, "compress")
            merged = merge_tables(machine, htab, 8, codetab, 2, hsize, pool)

        reader = _TableAccess(machine, htab, codetab, merged)
        checksum, emitted, probes = self._lzw(machine, rng, reader, variant)

        # A few stray reads through the *old* htab base: they forward when
        # the table has been merged.
        for sample in range(self.STRAY_SAMPLES):
            slot = (sample * 977) % hsize
            checksum = (checksum * 31 + machine.load(htab + slot * 8)) % (1 << 61)

        return checksum, {"codes_emitted": emitted, "probes": probes}

    # ------------------------------------------------------------------
    def _next_char(self, rng: DeterministicRNG) -> int:
        """Skewed byte distribution (compressible, zero-free)."""
        roll = rng.random()
        if roll < 0.5:
            return 1 + rng.randint(4)
        if roll < 0.85:
            return 5 + rng.randint(8)
        return 13 + rng.randint(self.ALPHABET - 12)

    def _lzw(
        self,
        machine: Machine,
        rng: DeterministicRNG,
        table: "_TableAccess",
        variant: Variant,
    ) -> tuple[int, int, int]:
        m = machine
        hsize = self.HSIZE
        hshift = self.HSHIFT
        chars = self._scaled(self.INPUT_CHARS)
        free_code = self.FIRST_CODE
        max_code = hsize - 1024  # cap occupancy so probe chains stay bounded
        checksum = 0
        emitted = 0
        probes = 0

        prefetching = variant.prefetching
        ent = self._next_char(rng)
        for _ in range(chars - 1):
            m.execute(self.WORK_PER_CHAR)
            c = self._next_char(rng)
            fcode = (c << 16) + ent
            index = ((c << hshift) ^ ent) % hsize
            disp = (hsize - index) if index else 1
            if prefetching:
                # The dependent codetab read (on a match) is the one load
                # whose address is known early; prefetch it alongside the
                # first htab probe.
                table.prefetch_code(index)
            matched = False
            while True:
                probes += 1
                m.execute(self.WORK_PER_PROBE)
                key = table.read_key(index)
                if key == fcode:
                    ent = table.read_code(index)
                    matched = True
                    break
                if key == 0:
                    break  # empty slot
                index -= disp
                if index < 0:
                    index += hsize
            if matched:
                continue
            # Emit the current prefix code and extend the dictionary.
            emitted += 1
            checksum = (checksum * 31 + ent) % (1 << 61)
            if free_code < max_code:
                table.write_code(index, free_code)
                table.write_key(index, fcode)
                free_code += 1
            ent = c
        checksum = (checksum * 31 + ent) % (1 << 61)
        return checksum, emitted, probes


class _TableAccess:
    """Indirection over split vs merged table layout.

    The optimized program's own references go through the merged table
    (the application can update them -- they all live in this module);
    only stray pointers kept from before the merge still hit the old
    arrays and get forwarded.
    """

    def __init__(
        self,
        machine: Machine,
        htab: int,
        codetab: int,
        merged: MergedTable | None,
    ) -> None:
        self.machine = machine
        self.htab = htab
        self.codetab = codetab
        self.merged = merged

    def read_key(self, index: int) -> int:
        if self.merged is not None:
            return self.machine.load(self.merged.a_address(index))
        return self.machine.load(self.htab + index * 8)

    def write_key(self, index: int, value: int) -> None:
        if self.merged is not None:
            self.machine.store(self.merged.a_address(index), value)
        else:
            self.machine.store(self.htab + index * 8, value)

    def read_code(self, index: int) -> int:
        if self.merged is not None:
            return self.machine.load(self.merged.b_address(index), 2)
        return self.machine.load(self.codetab + index * 2, 2)

    def write_code(self, index: int, value: int) -> None:
        if self.merged is not None:
            self.machine.store(self.merged.b_address(index), value, 2)
        else:
            self.machine.store(self.codetab + index * 2, value, 2)

    def prefetch_code(self, index: int) -> None:
        if self.merged is not None:
            self.machine.prefetch(self.merged.b_address(index))
        else:
            self.machine.prefetch(self.codetab + index * 2)
