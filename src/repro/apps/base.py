"""Common scaffolding for the eight Table 1 applications.

Every application is a transcription of the paper's benchmark onto the
simulated machine, runnable in the variants the evaluation compares:

========  ==========================================================
Variant   Meaning (Figures 5, 7, 10)
========  ==========================================================
``N``     Original program, no locality optimization, no prefetching.
``L``     With the layout optimization memory forwarding enables.
``NP``    Original program plus software prefetching.
``LP``    Layout optimization plus software prefetching.
``PERF``  Perfect forwarding (SMV only): relocation with all stray
          pointers magically updated -- the unachievable bound of
          Figure 10.
========  ==========================================================

Each run returns an :class:`AppResult` whose ``checksum`` must be
identical across variants of the same application at the same scale:
that equality is the end-to-end proof that data relocation under memory
forwarding preserved program semantics.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from enum import Enum
from typing import Any

from repro.core.machine import Machine, MachineConfig, MachineObserver
from repro.core.stats import MachineStats


class Variant(Enum):
    """Which combination of optimizations a run uses."""

    N = "N"        # no optimization
    L = "L"        # layout optimization (via memory forwarding)
    NP = "NP"      # prefetching only
    LP = "LP"      # layout optimization + prefetching
    PERF = "Perf"  # layout optimization with perfect forwarding

    @property
    def optimized(self) -> bool:
        return self in (Variant.L, Variant.LP, Variant.PERF)

    @property
    def prefetching(self) -> bool:
        return self in (Variant.NP, Variant.LP)


@dataclass
class AppResult:
    """Outcome of one application run."""

    app: str
    variant: Variant
    checksum: int
    stats: MachineStats
    extras: dict[str, Any] = field(default_factory=dict)
    #: Windowed time-series payload (``Timeline.to_payload``) when the
    #: run was configured with a non-zero ``timeline_interval``.
    timeline: dict[str, Any] | None = None

    @property
    def cycles(self) -> float:
        return self.stats.cycles


class Application(ABC):
    """One of the paper's benchmark applications.

    Subclasses define ``name``, ``description``, ``optimization`` (the
    Table 1 columns) and implement :meth:`execute`.

    Parameters
    ----------
    scale:
        Workload scale factor; 1.0 is the default benchmark size
        (scaled down from the paper per DESIGN.md), smaller values give
        fast unit-test workloads.
    seed:
        Workload randomness seed.  The same seed must produce the same
        checksum in every variant.
    """

    name: str = "app"
    description: str = ""
    optimization: str = ""
    #: True if the *optimized* variants' reference stream depends on the
    #: cache line size (the app reads
    #: ``machine.config.hierarchy.line_size`` to parameterise its layout
    #: optimization, as BH's subtree clustering does).
    line_size_sensitive: bool = False

    @classmethod
    def stream_depends_on_line_size(cls, variant: Variant) -> bool:
        """Whether this app's stream at ``variant`` varies with line size.

        Prefetching variants always do (every app's block prefetches step
        by one line); optimized variants do only for apps that declare
        :attr:`line_size_sensitive`.  Line-size-invariant streams are
        captured once and replayed at every line size; the rest need one
        trace per line size.
        """
        return variant.prefetching or (cls.line_size_sensitive and variant.optimized)

    def __init__(self, scale: float = 1.0, seed: int = 1) -> None:
        if scale <= 0:
            raise ValueError(f"scale must be positive, got {scale}")
        self.scale = scale
        self.seed = seed

    # ------------------------------------------------------------------
    def run(
        self,
        variant: Variant = Variant.N,
        config: MachineConfig | None = None,
        observer: "MachineObserver | None" = None,
        on_window=None,
    ) -> AppResult:
        """Execute the application on a fresh machine; returns the result.

        ``observer`` (if given) is installed on the machine before the
        workload starts, so it sees the complete event stream -- this is
        how ``repro.trace`` captures reference traces.  ``on_window``
        (if given, and if ``config`` samples a timeline) streams the
        sampler's per-window deltas live; it is ignored for untimed
        configs, so the default hot path is untouched.
        """
        supported = self.variants()
        if variant not in supported:
            raise ValueError(
                f"{self.name} does not support variant {variant.value}; "
                f"supported: {[v.value for v in supported]}"
            )
        machine = Machine(config or MachineConfig())
        machine.observer = observer
        if on_window is not None and machine.timeline is not None:
            # Chain (never clobber): the adaptive engine may already be
            # listening on the same timeline.
            machine.timeline.add_on_window(on_window)
        checksum, extras = self.execute(machine, variant)
        timeline = None
        if machine.timeline is not None:
            machine.timeline.finish()
            timeline = machine.timeline.to_payload()
        if machine.adapt is not None:
            # Merged after finish() so the payload includes any window
            # closed by the trailing flush; rides extras so it persists
            # in captured traces and survives replay byte-for-byte.
            extras = {**extras, "adapt": machine.adapt.to_payload()}
        return AppResult(
            app=self.name,
            variant=variant,
            checksum=checksum,
            stats=machine.stats(),
            extras=extras,
            timeline=timeline,
        )

    def variants(self) -> tuple[Variant, ...]:
        """Variants this application supports (PERF is SMV-specific)."""
        return (Variant.N, Variant.L, Variant.NP, Variant.LP)

    @abstractmethod
    def execute(self, machine: Machine, variant: Variant) -> tuple[int, dict]:
        """Run the workload; returns ``(checksum, extras)``."""

    # ------------------------------------------------------------------
    def _scaled(self, value: int, minimum: int = 1) -> int:
        """Scale a workload parameter, keeping it at least ``minimum``."""
        return max(minimum, int(round(value * self.scale)))


#: Registry of all Table 1 applications, filled by repro.apps.__init__.
APPLICATIONS: dict[str, type[Application]] = {}


def register(cls: type[Application]) -> type[Application]:
    """Class decorator adding an application to the registry."""
    APPLICATIONS[cls.name] = cls
    return cls


def get_application(name: str, scale: float = 1.0, seed: int = 1) -> Application:
    """Instantiate a registered application by its Table 1 name."""
    try:
        cls = APPLICATIONS[name]
    except KeyError:
        raise ValueError(
            f"unknown application {name!r}; available: {sorted(APPLICATIONS)}"
        ) from None
    return cls(scale=scale, seed=seed)
