"""VIS: verification tool built on a generic list library (Section 5.3).

The real VIS is a 150k-line verification system whose data structures
flow through one generic linked-list library; the paper's optimization is
*entirely localized in that library*: every list header carries an
operation counter, and a list is linearized whenever its counter passes a
threshold (50 in the paper).

This transcription drives the same library (:mod:`repro.runtime.listlib`)
with a VIS-like operation mix: many lists, random insertions and
deletions (the churn that scatters nodes and bumps the counters), and
frequent full traversals (where the layout pays off).  The danger the
paper describes -- library functions returning pointers to list elements
that outlive a linearization -- is exercised directly: the workload keeps
a table of "cursor" pointers into lists and dereferences them after
linearizations may have moved the nodes; memory forwarding keeps those
dereferences correct.
"""

from __future__ import annotations

from repro.apps.base import Application, Variant, register
from repro.core.machine import NULL, Machine
from repro.runtime.listlib import ListLib
from repro.runtime.rng import DeterministicRNG


@register
class VIS(Application):
    """A VIS-like list-library workload on the simulated machine."""

    name = "vis"
    description = "generic list library under a verification-style op mix"
    optimization = "list linearization (counter threshold 50, in-library)"

    LISTS = 48
    INITIAL_NODES = 56       # per list
    OPERATIONS = 2600
    TRAVERSE_PROBABILITY = 0.55
    INSERT_PROBABILITY = 0.25  # remainder are deletions
    CURSORS = 64
    CURSOR_DEREF_PROBABILITY = 0.05
    WORK_PER_NODE = 20
    PREFETCH_BLOCK = 2

    def execute(self, machine: Machine, variant: Variant) -> tuple[int, dict]:
        rng = DeterministicRNG(self.seed)
        pool = None
        if variant.optimized:
            pool = machine.create_pool(8 << 20, "vis")
        # The paper's threshold of 50 is tied to the full-size workload;
        # scale it so reduced test workloads still trigger linearization.
        lib = ListLib(machine, pool=pool,
                      threshold=self._scaled(50, minimum=5))
        lists = [lib.new_list() for _ in range(self.LISTS)]

        # Interleaved initial population: every list starts scattered.
        total_initial = self.LISTS * self._scaled(self.INITIAL_NODES)
        next_value = 0
        for _ in range(total_initial):
            header = lists[rng.randint(self.LISTS)]
            lib.push_front(header, next_value)
            next_value += 1

        # Library clients keep raw pointers to elements (the unsafe-in-C
        # pattern memory forwarding legalises).  Cursors point only into
        # the first few lists, which the op mix never deletes from, so a
        # cursor is stale-but-live (relocated), never dangling (freed).
        stable = max(1, self.LISTS // 8)
        cursors: list[int] = []
        for _ in range(self.CURSORS):
            header = lists[rng.randint(stable)]
            node = machine.load(lib.head_handle(header))
            if node != NULL:
                cursors.append(node)

        checksum = 0
        operations = self._scaled(self.OPERATIONS)
        for _ in range(operations):
            index = rng.randint(self.LISTS)
            header = lists[index]
            roll = rng.random()
            if roll < self.TRAVERSE_PROBABILITY:
                checksum += self._traverse(machine, lib, header, variant)
            elif roll < self.TRAVERSE_PROBABILITY + self.INSERT_PROBABILITY:
                position = rng.randint(8)
                lib.insert_at(header, position, next_value)
                next_value += 1
            else:
                length = lib.length(header)
                if length and index >= stable:
                    removed = lib.remove_at(header, rng.randint(min(length, 8)))
                    if removed is not None:
                        checksum += removed & 0xFF
            if cursors and rng.chance(self.CURSOR_DEREF_PROBABILITY):
                # A stray pointer dereference: forwarded if the node moved.
                cursor = cursors[rng.randint(len(cursors))]
                checksum += lib.node_layout.read(machine, cursor, "value") & 0xFF

        extras = {
            "linearizations": lib.linearizations,
            "final_nodes": sum(lib.length(header) for header in lists),
        }
        return checksum, extras

    # ------------------------------------------------------------------
    def _traverse(
        self, machine: Machine, lib: ListLib, header: int, variant: Variant
    ) -> int:
        """Full traversal with per-node work and optional prefetching."""
        m = machine
        line = m.config.hierarchy.line_size
        prefetching = variant.prefetching
        next_offset = lib.next_offset
        total = 0
        node = m.load(lib.head_handle(header))
        while node != NULL:
            m.execute(self.WORK_PER_NODE)
            total += lib.node_layout.read(m, node, "value")
            next_node = m.load(node + next_offset)
            if prefetching:
                if variant.optimized:
                    m.prefetch(node + line, self.PREFETCH_BLOCK)
                elif next_node != NULL:
                    m.prefetch(next_node, 1)
            node = next_node
        return total & 0xFFFFFFFF
