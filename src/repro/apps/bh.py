"""BH: Barnes-Hut hierarchical N-body force calculation (Olden suite).

Bodies are inserted into a space-partitioning tree (a quadtree here; the
paper's octree differs only in fan-out).  The tree is built in body
insertion order -- effectively random with respect to space -- but the
force phase traverses it in a data-dependent order, so consecutive
visits jump across the heap.

The paper's optimization is **subtree clustering** (Figure 9): after the
tree is built, internal (cell) nodes are relocated so each cache line
holds the balanced top of a subtree.  Cells are ~88 B here (the paper's
were 78 B), so, as the paper notes, really meaningful clustering needs
256 B lines -- but packing cells contiguously already helps at smaller
line sizes.  Leaf bodies stay put (in Olden's BH they are accessed via a
separate linked list).

All coordinates and masses are integers (fixed point), keeping the
physics deterministic and the checksums variant-independent.
"""

from __future__ import annotations

from repro.apps.base import Application, Variant, register
from repro.core.machine import NULL, Machine
from repro.opts.clustering import cluster_subtrees
from repro.runtime.records import RecordLayout
from repro.runtime.rng import DeterministicRNG

#: Internal tree node ("cell"): bounding square plus four children.
#: 72 bytes -- close to the paper's 78-byte BH cells, so three nodes fit
#: in a 256 B line (the size the paper says meaningful clustering needs).
CELL = RecordLayout(
    "cell",
    [
        ("type", 4),   # 0 = cell (shared offset with BODY.type)
        ("cx", 4), ("cy", 4),        # square centre
        ("half", 4),                 # half side length
        ("mass", 8),
        ("x", 8), ("y", 8),          # centre of mass
        ("c0", 8), ("c1", 8), ("c2", 8), ("c3", 8),
    ],
)

BODY = RecordLayout(
    "body", [("type", 4), ("pad", 4), ("mass", 8), ("x", 8), ("y", 8), ("next", 8)]
)

_CHILDREN = ("c0", "c1", "c2", "c3")
_CHILD_OFFSETS = [CELL.offset(name) for name in _CHILDREN]

#: World is the square [0, 2**20) x [0, 2**20) (fixed-point units).
#: Coordinates stay non-negative: simulated memory words are unsigned.
_WORLD_SIZE = 1 << 20
_WORLD_HALF = _WORLD_SIZE >> 1

#: Opening criterion: approximate when (2*half)^2 < THETA_INV2 * dist2 is
#: false, i.e. recurse while the cell looks big.  THETA_INV2 = (1/theta)^2
#: with theta ~= 0.7.
_THETA_INV2 = 2


@register
class BH(Application):
    """The Olden ``bh`` benchmark on the simulated machine."""

    name = "bh"
    description = "Barnes-Hut N-body force calculation over a quadtree"
    optimization = "subtree clustering of internal tree nodes (once per build)"
    # Clustering granularity and prefetch distance follow the line size,
    # so BH's reference stream must be captured per line size.
    line_size_sensitive = True

    BODIES = 800
    FORCE_STEPS = 6
    SAMPLE_BODIES = 160    # bodies receiving forces per step
    WORK_PER_VISIT = 16
    PREFETCH_BLOCK = 2

    def execute(self, machine: Machine, variant: Variant) -> tuple[int, dict]:
        rng = DeterministicRNG(self.seed)
        count = self._scaled(self.BODIES, minimum=16)
        bodies = self._make_bodies(machine, rng, count)

        root_slot = machine.malloc(8)
        machine.store(root_slot, self._make_cell(machine, _WORLD_HALF, _WORLD_HALF, _WORLD_HALF))
        for body in bodies:
            self._insert(machine, machine.load(root_slot), body)
        self._summarize(machine, machine.load(root_slot))

        clustered = 0
        if variant.optimized:
            pool = machine.create_pool(8 << 20, "bh")
            # Below 256 B lines a cell (~88 B) fills a line by itself, so
            # clustering degenerates to contiguous packing in traversal
            # order -- exactly the paper's remark that BH needs 256 B lines
            # for *meaningful* clustering.
            line = machine.config.hierarchy.line_size
            result = cluster_subtrees(
                machine,
                root_slot,
                _CHILD_OFFSETS,
                CELL.size,
                pool,
                line,
                include=lambda mm, node: CELL.read(mm, node, "type") == 0,
            )
            clustered = result.nodes_moved

        checksum = 0
        steps = self._scaled(self.FORCE_STEPS)
        sample = min(len(bodies), self.SAMPLE_BODIES)
        for _ in range(steps):
            for body in bodies[:sample]:
                force = self._force_on(machine, variant, machine.load(root_slot), body)
                checksum = (checksum + force) % (1 << 61)
        return checksum, {"cells_clustered": clustered, "bodies": count}

    # ------------------------------------------------------------------
    # Tree construction
    # ------------------------------------------------------------------
    def _make_bodies(self, machine: Machine, rng: DeterministicRNG, count: int) -> list[int]:
        bodies = []
        for _ in range(count):
            body = BODY.alloc(machine)
            BODY.write(machine, body, "type", 1)
            BODY.write(machine, body, "mass", 1 + rng.randint(1 << 10))
            BODY.write(machine, body, "x", rng.randint(_WORLD_SIZE))
            BODY.write(machine, body, "y", rng.randint(_WORLD_SIZE))
            BODY.write(machine, body, "next", NULL)
            bodies.append(body)
        return bodies

    def _make_cell(self, machine: Machine, cx: int, cy: int, half: int) -> int:
        cell = CELL.alloc(machine)
        CELL.write(machine, cell, "type", 0)
        CELL.write(machine, cell, "cx", cx)
        CELL.write(machine, cell, "cy", cy)
        CELL.write(machine, cell, "half", half)
        return cell

    def _quadrant(self, machine: Machine, cell: int, x: int, y: int) -> int:
        machine.execute(4)
        cx = CELL.read(machine, cell, "cx")
        cy = CELL.read(machine, cell, "cy")
        return (1 if x >= cx else 0) | (2 if y >= cy else 0)

    def _child_center(self, machine: Machine, cell: int, quadrant: int) -> tuple[int, int, int]:
        cx = CELL.read(machine, cell, "cx")
        cy = CELL.read(machine, cell, "cy")
        half = CELL.read(machine, cell, "half") >> 1
        return (
            cx + (half if quadrant & 1 else -half),
            cy + (half if quadrant & 2 else -half),
            half,
        )

    def _insert(self, machine: Machine, cell: int, body: int) -> None:
        """Standard BH insertion: split leaves on collision."""
        m = machine
        x = BODY.read(m, body, "x")
        y = BODY.read(m, body, "y")
        while True:
            quadrant = self._quadrant(m, cell, x, y)
            slot = cell + _CHILD_OFFSETS[quadrant]
            child = m.load(slot)
            if child == NULL:
                m.store(slot, body)
                return
            if CELL.read(m, child, "type") == 1:
                # Occupied by a body: split into a sub-cell, reinsert both.
                ccx, ccy, chalf = self._child_center(m, cell, quadrant)
                if chalf == 0:
                    # Degenerate co-location: chain would not terminate;
                    # drop the lighter body into the same slot's list spot.
                    m.store(slot, body)
                    return
                sub = self._make_cell(m, ccx, ccy, chalf)
                m.store(slot, sub)
                self._insert(m, sub, child)
                cell = sub
                continue
            cell = child

    def _summarize(self, machine: Machine, node: int) -> tuple[int, int, int]:
        """Bottom-up pass computing each cell's mass and centre of mass."""
        m = machine
        if CELL.read(m, node, "type") == 1:
            return (
                BODY.read(m, node, "mass"),
                BODY.read(m, node, "x"),
                BODY.read(m, node, "y"),
            )
        total = 0
        wx = 0
        wy = 0
        for offset in _CHILD_OFFSETS:
            child = m.load(node + offset)
            if child != NULL:
                mass, x, y = self._summarize(m, child)
                total += mass
                wx += mass * x
                wy += mass * y
        if total:
            CELL.write(m, node, "mass", total)
            CELL.write(m, node, "x", wx // total)
            CELL.write(m, node, "y", wy // total)
        return total, (wx // total if total else 0), (wy // total if total else 0)

    # ------------------------------------------------------------------
    # Force phase (the measured traversal)
    # ------------------------------------------------------------------
    def _force_on(self, machine: Machine, variant: Variant, root: int, body: int) -> int:
        m = machine
        line = m.config.hierarchy.line_size
        prefetching = variant.prefetching
        bx = BODY.read(m, body, "x")
        by = BODY.read(m, body, "y")
        force = 0
        stack = [root]
        while stack:
            node = stack.pop()
            m.execute(self.WORK_PER_VISIT)
            if prefetching:
                if variant.optimized:
                    m.prefetch(node + line, self.PREFETCH_BLOCK)
            if node == body:
                continue
            if CELL.read(m, node, "type") == 1:
                mass = BODY.read(m, node, "mass")
                dx = BODY.read(m, node, "x") - bx
                dy = BODY.read(m, node, "y") - by
                dist2 = dx * dx + dy * dy + 1
                force += (mass << 40) // dist2
                continue
            mass = CELL.read(m, node, "mass")
            if mass == 0:
                continue
            dx = CELL.read(m, node, "x") - bx
            dy = CELL.read(m, node, "y") - by
            dist2 = dx * dx + dy * dy + 1
            size = CELL.read(m, node, "half") << 1
            if size * size < dist2 // _THETA_INV2:
                # Far enough: treat the cell as a point mass.
                force += (mass << 40) // dist2
                continue
            for offset in _CHILD_OFFSETS:
                child = m.load(node + offset)
                if child != NULL:
                    if prefetching and not variant.optimized:
                        m.prefetch(child, 1)
                    stack.append(child)
        return force % (1 << 61)
