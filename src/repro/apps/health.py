"""Health: hierarchical health-care simulation (Olden suite).

The benchmark models a hierarchy of villages (a 4-ary tree).  Each
village runs a clinic with two patient lists: ``waiting`` (patients
queued for treatment) and ``inside`` (patients being treated).  Every
time step the whole tree is traversed; at each village, patients are
admitted, treated, discharged, and referred up the hierarchy, and new
patients arrive at the leaves.

Patient nodes are allocated as patients arrive, interleaved across all
villages, so each village's lists end up scattered through the heap --
the classic pointer-chasing workload.  The paper's optimization is
**list linearization** of the patient lists, invoked periodically via
the per-list operation counter (Section 5.3's policy).

Prefetching (Figure 7): the list walks issue software prefetches -- one
node ahead in the unoptimized layout (all the pointer chase allows) and
block prefetches of upcoming lines once lists are linearized
(data-linearization prefetching).
"""

from __future__ import annotations

from repro.apps.base import Application, Variant, register
from repro.core.machine import NULL, Machine
from repro.opts.linearize import ListLinearizer
from repro.runtime.records import RecordLayout
from repro.runtime.rng import DeterministicRNG

VILLAGE = RecordLayout(
    "village",
    [
        ("id", 8),
        ("child0", 8),
        ("child1", 8),
        ("child2", 8),
        ("child3", 8),
        ("waiting", 8),
        ("inside", 8),
        ("treated", 8),
    ],
)

PATIENT = RecordLayout(
    "patient", [("id", 8), ("remaining", 8), ("hops", 8), ("next", 8)]
)

_CHILD_FIELDS = ("child0", "child1", "child2", "child3")


@register
class Health(Application):
    """The Olden ``health`` benchmark on the simulated machine."""

    name = "health"
    description = "hierarchical health-care simulation over a village tree"
    optimization = "list linearization (periodic, per patient list)"

    #: Base workload parameters at scale 1.0 (scaled down from the paper's
    #: input per DESIGN.md; the miss regime, not the absolute size, is what
    #: must match).
    TREE_DEPTH = 3          # 4-ary: 21 villages
    STEPS = 32
    INITIAL_PATIENTS = 60   # per village
    TREATMENT_TIME = 10
    ADMIT_PROBABILITY = 0.9
    ARRIVAL_PROBABILITY = 0.9  # per leaf village per step
    REFER_PROBABILITY = 0.02   # waiting patient referred to parent
    LINEARIZE_THRESHOLD = 45
    PREFETCH_BLOCK = 2
    #: Instructions of per-patient computation (the C code's arithmetic,
    #: branching, and call overhead around each list element).
    WORK_PER_PATIENT = 30

    def execute(self, machine: Machine, variant: Variant) -> tuple[int, dict]:
        rng = DeterministicRNG(self.seed)
        steps = self._scaled(self.STEPS)
        initial = self._scaled(self.INITIAL_PATIENTS)

        linearizer = None
        if variant.optimized:
            pool = machine.create_pool(4 << 20, "health")
            linearizer = ListLinearizer(
                machine,
                pool,
                PATIENT.offset("next"),
                PATIENT.size,
                threshold=self._scaled(self.LINEARIZE_THRESHOLD, minimum=5),
            )
        state = _SimState(machine, rng, variant, linearizer, self.PREFETCH_BLOCK)

        root = self._build_tree(machine, self.TREE_DEPTH, state)
        # Patients arrive at random villages over time, so consecutive
        # heap allocations belong to unrelated lists and every village's
        # list starts scattered -- the layout the paper's allocator churn
        # produces.
        total_initial = initial * len(state.villages)
        for _ in range(total_initial):
            village, _is_leaf = state.villages[rng.randint(len(state.villages))]
            state.new_patient(village, "waiting")

        self._before_steps(machine, state, root)
        for step in range(steps):
            self._phase_hook(machine, state, step, steps)
            self._step_village(machine, state, root, parent=NULL)

        checksum = (
            state.discharged_ids * 1_000_003
            + state.total_hops * 101
            + state.population
        )
        extras = {
            "discharged": state.discharged,
            "population": state.population,
            "linearizations": linearizer.linearizations if linearizer else 0,
        }
        return checksum, extras

    # ------------------------------------------------------------------
    def _before_steps(
        self, machine: Machine, state: "_SimState", root: int
    ) -> None:
        """Subclass hook between setup and the simulation loop."""

    def _phase_hook(
        self, machine: Machine, state: "_SimState", step: int, steps: int
    ) -> None:
        """Subclass hook at the top of each simulation step."""

    def _build_tree(self, machine: Machine, depth: int, state: "_SimState") -> int:
        village = VILLAGE.alloc(machine)
        VILLAGE.write(machine, village, "id", state.next_village_id())
        VILLAGE.write(machine, village, "waiting", NULL)
        VILLAGE.write(machine, village, "inside", NULL)
        is_leaf = depth <= 1
        for field in _CHILD_FIELDS:
            child = NULL if is_leaf else self._build_tree(machine, depth - 1, state)
            VILLAGE.write(machine, village, field, child)
        state.villages.append((village, is_leaf))
        return village

    def _step_village(self, machine: Machine, state: "_SimState", village: int, parent: int) -> None:
        """One simulation step at ``village`` and, recursively, below it."""
        for field in _CHILD_FIELDS:
            child = VILLAGE.read(machine, village, field)
            if child != NULL:
                self._step_village(machine, state, child, village)
        state.treat_inside(village)
        state.process_waiting(village, parent)
        if VILLAGE.read(machine, village, "child0") == NULL:
            if state.rng.chance(self.ARRIVAL_PROBABILITY):
                state.new_patient(village, "waiting")


class _SimState:
    """Mutable simulation state shared by the per-step routines."""

    def __init__(
        self,
        machine: Machine,
        rng: DeterministicRNG,
        variant: Variant,
        linearizer: ListLinearizer | None,
        prefetch_block: int,
    ) -> None:
        self.machine = machine
        self.rng = rng
        self.variant = variant
        self.linearizer = linearizer
        self.prefetch_block = prefetch_block
        self.villages: list[tuple[int, bool]] = []
        self._village_id = 0
        self._patient_id = 0
        self.discharged = 0
        self.discharged_ids = 0
        self.total_hops = 0
        self.population = 0

    # -- ids ------------------------------------------------------------
    def next_village_id(self) -> int:
        self._village_id += 1
        return self._village_id

    # -- list plumbing ---------------------------------------------------
    def list_handle(self, village: int, which: str) -> int:
        return village + VILLAGE.offset(which)

    def note_op(self, village: int, which: str) -> None:
        if self.linearizer is not None:
            self.linearizer.note_op(self.list_handle(village, which))

    def push(self, village: int, which: str, patient: int) -> None:
        m = self.machine
        handle = self.list_handle(village, which)
        PATIENT.write(m, patient, "next", m.load(handle))
        m.store(handle, patient)
        self.note_op(village, which)

    def new_patient(self, village: int, which: str) -> None:
        m = self.machine
        self._patient_id += 1
        patient = PATIENT.alloc(m)
        PATIENT.write(m, patient, "id", self._patient_id)
        PATIENT.write(m, patient, "remaining", Health.TREATMENT_TIME)
        PATIENT.write(m, patient, "hops", 0)
        self.push(village, which, patient)
        self.population += 1

    def _prefetch(self, node: int, next_node: int) -> None:
        """Prefetch upcoming nodes during a list walk (Figure 7).

        ``next_node`` is the already-loaded successor pointer, so the
        unoptimized variant can prefetch it without extra loads -- one
        node ahead is all the pointer chase allows.  Linearized lists are
        contiguous, so the optimized variant block-prefetches the lines
        beyond the current node instead.
        """
        m = self.machine
        if self.variant.optimized:
            line = m.config.hierarchy.line_size
            m.prefetch(node + line, self.prefetch_block)
        elif next_node != NULL:
            m.prefetch(next_node, 1)

    # -- per-village work --------------------------------------------------
    def treat_inside(self, village: int) -> None:
        """Advance treatment; discharge (and free) finished patients."""
        m = self.machine
        slot = self.list_handle(village, "inside")
        node = m.load(slot)
        prefetching = self.variant.prefetching
        while node != NULL:
            m.execute(Health.WORK_PER_PATIENT)
            remaining = PATIENT.read(m, node, "remaining") - 1
            next_node = PATIENT.read(m, node, "next")
            if prefetching:
                self._prefetch(node, next_node)
            if remaining <= 0:
                self.discharged += 1
                self.discharged_ids += PATIENT.read(m, node, "id")
                self.total_hops += PATIENT.read(m, node, "hops")
                self.population -= 1
                m.store(slot, next_node)
                m.free(node)
                self.note_op(village, "inside")
            else:
                PATIENT.write(m, node, "remaining", remaining)
                slot = node + PATIENT.offset("next")
            node = next_node

    def process_waiting(self, village: int, parent: int) -> None:
        """Walk the waiting list: age, refer upward, admit the head."""
        m = self.machine
        rng = self.rng
        slot = self.list_handle(village, "waiting")
        node = m.load(slot)
        prefetching = self.variant.prefetching
        while node != NULL:
            m.execute(Health.WORK_PER_PATIENT)
            PATIENT.write(m, node, "hops", PATIENT.read(m, node, "hops") + 1)
            next_node = PATIENT.read(m, node, "next")
            if prefetching:
                self._prefetch(node, next_node)
            if parent != NULL and rng.chance(Health.REFER_PROBABILITY):
                # Refer this patient up the hierarchy.
                m.store(slot, next_node)
                self.note_op(village, "waiting")
                self.push(parent, "waiting", node)
            else:
                slot = node + PATIENT.offset("next")
            node = next_node
        # Admit the head of the waiting queue, if any.
        handle = self.list_handle(village, "waiting")
        head = m.load(handle)
        if head != NULL and rng.chance(Health.ADMIT_PROBABILITY):
            m.store(handle, PATIENT.read(m, head, "next"))
            self.note_op(village, "waiting")
            PATIENT.write(m, head, "remaining", Health.TREATMENT_TIME)
            self.push(village, "inside", head)
