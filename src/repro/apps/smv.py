"""SMV: BDD-based symbolic model checking (Section 5.4).

SMV's working set is a forest of BDD nodes reachable two ways: through
the unique-table bucket chains, and through ``low``/``high`` *tree
pointers* stored inside other nodes.  The paper linearizes the bucket
chains (more misses occur there than in tree accesses) -- but the tree
pointers cannot be updated, so after a linearization **every tree-pointer
dereference is forwarded**.  SMV is the one application where the safety
net fires constantly, and Figure 10 measures exactly that cost:

* ``N``    -- no relocation at all;
* ``L``    -- chains linearized periodically, tree accesses forwarded;
* ``Perf`` -- *perfect forwarding*: the same relocation, but every stale
  pointer is magically updated for free.  Unachievable; an upper bound.

The workload builds random CNF-style formulas bottom-up with ``apply``
(unique-table and computed-cache heavy), then walks the result BDDs
(``satcount``/``count_nodes``, tree-pointer heavy).  Checksums are the
satisfying-assignment counts, which relocation must not change.
"""

from __future__ import annotations

from repro.apps.base import Application, Variant, register
from repro.bdd.bdd import BDD
from repro.core.machine import Machine
from repro.runtime.rng import DeterministicRNG


@register
class SMV(Application):
    """A BDD model-checking workload on the simulated machine."""

    name = "smv"
    description = "BDD construction and traversal (symbolic model checking)"
    optimization = "list linearization of unique-table bucket chains"

    VARS = 18
    BUCKETS = 256
    CACHE_SLOTS = 2048
    GROUPS = 7               # independent functions kept live
    CLAUSES_PER_GROUP = 10
    LITERALS_PER_CLAUSE = 3
    TRAVERSALS_PER_GROUP = 2
    #: Linearize the unique table after this many clauses (L/Perf only).
    LINEARIZE_EVERY = 40
    WORK_PER_CLAUSE = 40

    def variants(self) -> tuple[Variant, ...]:
        return (Variant.N, Variant.L, Variant.PERF)

    def execute(self, machine: Machine, variant: Variant) -> tuple[int, dict]:
        rng = DeterministicRNG(self.seed)
        bdd = BDD(machine, self.VARS, self.BUCKETS, self.CACHE_SLOTS)
        pool = None
        if variant.optimized:
            pool = machine.create_pool(8 << 20, "smv")

        groups = self._scaled(self.GROUPS, minimum=1)
        linearize_every = self._scaled(self.LINEARIZE_EVERY, minimum=4)
        clauses_built = 0
        linearizations = 0
        checksum = 0
        roots: list[int] = []

        for _ in range(groups):
            conjunction = bdd.one
            for _ in range(self.CLAUSES_PER_GROUP):
                machine.execute(self.WORK_PER_CLAUSE)
                # XOR clauses keep the BDD from collapsing, giving the
                # model-checker-sized node population SMV is known for.
                clause = bdd.zero
                for _ in range(self.LITERALS_PER_CLAUSE):
                    var = rng.randint(self.VARS)
                    literal = bdd.var(var) if rng.chance(0.5) else bdd.nvar(var)
                    clause = bdd.apply_xor(clause, literal)
                if rng.chance(0.6):
                    conjunction = bdd.apply_and(conjunction, clause)
                else:
                    conjunction = bdd.apply_xor(conjunction, clause)
                clauses_built += 1
                if pool is not None and clauses_built % linearize_every == 0:
                    bdd.linearize_unique_table(pool)
                    linearizations += 1
                    if variant is Variant.PERF:
                        bdd.fixup_tree_pointers()
                        # Perfect forwarding extends to the program's own
                        # live roots: nothing ever dereferences stale.
                        conjunction = bdd._raw_final(conjunction)
                        roots = [bdd._raw_final(root) for root in roots]
            roots.append(conjunction)
            # Analysis phase: tree-pointer-heavy traversals over all live
            # roots (this is where forwarding bites in scheme L).
            for _ in range(self.TRAVERSALS_PER_GROUP):
                for root in roots:
                    checksum = (checksum * 31 + bdd.satcount(root)) % (1 << 61)

        extras = {
            "bdd_nodes": bdd.node_count,
            "linearizations": linearizations,
            "cache_hits": bdd.cache_hits,
        }
        return checksum, extras
