"""MST: minimum spanning tree over a sparse graph (Olden suite).

Olden's ``mst`` keeps the graph's vertices on a linked list; each vertex
owns a chained hash table mapping neighbours to edge weights.  Prim's
algorithm ("blue rule") repeatedly scans the remaining vertex list, and
for each vertex probes its adjacency hash table for the distance to the
vertex most recently added to the tree.

Vertices and adjacency nodes are allocated interleaved while the graph is
built, so the vertex list and every hash chain are scattered.  The list
structure never changes after construction, so the paper's optimization --
**list linearization** -- is invoked exactly once: the vertex list and
every vertex's chains are packed after the graph is built, and the whole
solve phase enjoys the layout.

Prefetching: the scan over the vertex list prefetches one vertex ahead
(unoptimized) or block-prefetches upcoming lines (linearized).
"""

from __future__ import annotations

from repro.apps.base import Application, Variant, register
from repro.core.machine import NULL, Machine
from repro.core.relocate import list_linearize
from repro.runtime.records import RecordLayout
from repro.runtime.rng import DeterministicRNG

VERTEX = RecordLayout(
    "vertex",
    [("id", 8), ("mindist", 8), ("intree", 8), ("adj", 8), ("next", 8)],
)

#: Adjacency hash-chain node: neighbour id, weight, chain link.
EDGE = RecordLayout("edge", [("neighbor", 8), ("weight", 8), ("next", 8)])

_MAX_DIST = (1 << 62)


@register
class MST(Application):
    """The Olden ``mst`` benchmark on the simulated machine."""

    name = "mst"
    description = "Prim's MST over linked vertex list with per-vertex hash chains"
    optimization = "list linearization (once, after graph construction)"

    VERTICES = 192
    DEGREE = 6             # edges per vertex (directed entries both ways)
    BUCKETS_PER_VERTEX = 4
    PREFETCH_BLOCK = 2
    WORK_PER_VERTEX = 12   # loop overhead in the blue-rule scan
    WORK_PER_PROBE = 6     # hash + compare work per chain node

    def execute(self, machine: Machine, variant: Variant) -> tuple[int, dict]:
        rng = DeterministicRNG(self.seed)
        count = self._scaled(self.VERTICES, minimum=8)
        vertices, head_handle = self._build_graph(machine, rng, count)

        linearized = 0
        if variant.optimized:
            pool = machine.create_pool(4 << 20, "mst")
            # Invoked once: the structure is static after construction.
            _, moved = list_linearize(
                machine, head_handle, VERTEX.offset("next"), VERTEX.size, pool
            )
            linearized += moved
            # Each vertex's bucket array and adjacency chains are packed
            # right next to the relocated vertices, in list order.
            from repro.core.relocate import relocate

            node = machine.load(head_handle)
            while node != NULL:
                old_adj = VERTEX.read(machine, node, "adj")
                new_adj = pool.allocate(self.BUCKETS_PER_VERTEX * 8)
                relocate(machine, old_adj, new_adj, self.BUCKETS_PER_VERTEX)
                VERTEX.write(machine, node, "adj", new_adj)
                for bucket in range(self.BUCKETS_PER_VERTEX):
                    handle = new_adj + bucket * 8
                    _, moved = list_linearize(
                        machine, handle, EDGE.offset("next"), EDGE.size, pool
                    )
                    linearized += moved
                node = VERTEX.read(machine, node, "next")

        self._before_solve(machine, variant, head_handle, count)
        weight = self._prim(machine, variant, head_handle, count)
        checksum = weight * 31 + count
        return checksum, {"mst_weight": weight, "nodes_linearized": linearized}

    # ------------------------------------------------------------------
    def _before_solve(
        self, machine: Machine, variant: Variant, head_handle: int, count: int
    ) -> None:
        """Subclass hook between graph construction and the solve phase."""

    def _phase_hook(
        self, machine: Machine, head_handle: int, count: int, iteration: int
    ) -> None:
        """Subclass hook at the top of each blue-rule iteration."""

    # ------------------------------------------------------------------
    def _bucket_handle(self, machine: Machine, vertex: int, bucket: int) -> int:
        """Adjacency buckets live in an array hanging off the vertex."""
        base = VERTEX.read(machine, vertex, "adj")
        return base + bucket * 8

    def _bucket_of(self, neighbor_id: int) -> int:
        return (neighbor_id * 2654435761) % self.BUCKETS_PER_VERTEX

    def _build_graph(
        self, machine: Machine, rng: DeterministicRNG, count: int
    ) -> tuple[list[int], int]:
        """Random connected graph; returns (vertex addresses, head handle)."""
        head_handle = machine.malloc(8)
        vertices: list[int] = []
        # Vertices first (the list is built back to front).
        for vid in range(count - 1, -1, -1):
            vertex = VERTEX.alloc(machine)
            VERTEX.write(machine, vertex, "id", vid)
            VERTEX.write(machine, vertex, "mindist", _MAX_DIST)
            VERTEX.write(machine, vertex, "intree", 0)
            VERTEX.write(machine, vertex, "adj", machine.malloc(self.BUCKETS_PER_VERTEX * 8))
            VERTEX.write(machine, vertex, "next", machine.load(head_handle))
            machine.store(head_handle, vertex)
            vertices.append(vertex)
        vertices.reverse()  # vertices[i] has id i

        def add_edge(u: int, v: int, weight: int) -> None:
            for src, dst in ((u, v), (v, u)):
                edge = EDGE.alloc(machine)
                EDGE.write(machine, edge, "neighbor", dst)
                EDGE.write(machine, edge, "weight", weight)
                handle = self._bucket_handle(machine, vertices[src], self._bucket_of(dst))
                EDGE.write(machine, edge, "next", machine.load(handle))
                machine.store(handle, edge)

        # A random spanning chain guarantees connectivity, then extra
        # random edges up to the target degree.  Edge insertion order is
        # random, scattering every vertex's chains across the heap.
        for vid in range(1, count):
            add_edge(vid, rng.randint(vid), 1 + rng.randint(1 << 16))
        extra = count * (self.DEGREE - 2) // 2
        for _ in range(extra):
            u = rng.randint(count)
            v = rng.randint(count)
            if u != v:
                add_edge(u, v, 1 + rng.randint(1 << 16))
        return vertices, head_handle

    # ------------------------------------------------------------------
    def _hash_lookup(self, machine: Machine, vertex: int, neighbor_id: int) -> int | None:
        """Probe a vertex's adjacency table for the edge to ``neighbor_id``."""
        machine.execute(self.WORK_PER_PROBE)
        handle = self._bucket_handle(machine, vertex, self._bucket_of(neighbor_id))
        edge = machine.load(handle)
        while edge != NULL:
            machine.execute(2)
            if EDGE.read(machine, edge, "neighbor") == neighbor_id:
                return EDGE.read(machine, edge, "weight")
            edge = EDGE.read(machine, edge, "next")
        return None

    def _prim(
        self, machine: Machine, variant: Variant, head_handle: int, count: int
    ) -> int:
        """Blue-rule MST: repeated scans of the remaining vertex list."""
        m = machine
        line = m.config.hierarchy.line_size
        prefetching = variant.prefetching
        # Start from the list head's vertex.
        start = m.load(head_handle)
        VERTEX.write(m, start, "intree", 1)
        last_added_id = VERTEX.read(m, start, "id")
        total_weight = 0
        for iteration in range(count - 1):
            self._phase_hook(m, head_handle, count, iteration)
            best_vertex = NULL
            best_dist = _MAX_DIST
            vertex = m.load(head_handle)
            while vertex != NULL:
                m.execute(self.WORK_PER_VERTEX)
                next_vertex = VERTEX.read(m, vertex, "next")
                if prefetching:
                    if variant.optimized:
                        m.prefetch(vertex + line, self.PREFETCH_BLOCK)
                    elif next_vertex != NULL:
                        m.prefetch(next_vertex, 1)
                if VERTEX.read(m, vertex, "intree") == 0:
                    dist = self._hash_lookup(m, vertex, last_added_id)
                    if dist is not None:
                        mindist = VERTEX.read(m, vertex, "mindist")
                        if dist < mindist:
                            VERTEX.write(m, vertex, "mindist", dist)
                            mindist = dist
                    else:
                        mindist = VERTEX.read(m, vertex, "mindist")
                    if mindist < best_dist:
                        best_dist = mindist
                        best_vertex = vertex
                vertex = next_vertex
            if best_vertex == NULL:
                break  # disconnected (cannot happen: spanning chain)
            VERTEX.write(m, best_vertex, "intree", 1)
            VERTEX.write(m, best_vertex, "mindist", _MAX_DIST)
            last_added_id = VERTEX.read(m, best_vertex, "id")
            total_weight += best_dist
        return total_weight
