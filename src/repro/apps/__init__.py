"""The eight applications of Table 1, each in unoptimized and optimized form.

Importing this package registers every application in
:data:`repro.apps.base.APPLICATIONS`; use
:func:`repro.apps.get_application` to instantiate one by name.
"""

from repro.apps.base import (
    APPLICATIONS,
    Application,
    AppResult,
    Variant,
    get_application,
)
from repro.apps.bh import BH
from repro.apps.compress import Compress
from repro.apps.eqntott import Eqntott
from repro.apps.health import Health
from repro.apps.mst import MST
from repro.apps.phased import HealthPhase, MSTPhase
from repro.apps.radiosity import Radiosity
from repro.apps.smv import SMV
from repro.apps.vis import VIS

#: The seven applications of Figures 5-7 (SMV is evaluated separately in
#: Figure 10, as in the paper).
FIGURE5_APPS = ("health", "mst", "radiosity", "vis", "eqntott", "bh", "compress")

#: Phase-changing inputs for the adaptive-relocation experiment
#: (``python -m repro adapt``); deliberately *not* in FIGURE5_APPS so the
#: paper-figure manifests are untouched.
PHASE_APPS = ("mst_phase", "health_phase")

__all__ = [
    "APPLICATIONS",
    "Application",
    "AppResult",
    "BH",
    "Compress",
    "Eqntott",
    "FIGURE5_APPS",
    "Health",
    "HealthPhase",
    "MST",
    "MSTPhase",
    "PHASE_APPS",
    "Radiosity",
    "SMV",
    "VIS",
    "Variant",
    "get_application",
]
