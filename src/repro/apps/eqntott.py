"""Eqntott: boolean-equation to truth-table conversion (SPEC'92).

The hot structure (Figure 8(a)) is a hash table whose entries point to
``PTERM`` records; each record in turn points to a separately allocated
array of short integers (the term's literals).  The dominant routine,
``cmppt``, compares terms pairwise -- dereferencing two records and
walking both short arrays -- over and over while sorting.

Records and arrays are allocated at different moments of parsing, so the
three memory regions a comparison touches are scattered.  The paper's
optimization (Figure 8(b)), applied **once** right after the table is
built: relocate each record and its array into a single chunk, and lay
the chunks out contiguously in increasing hash-index order -- exactly
what :func:`repro.opts.packing.pack_pointer_table` does.

Stray pointers kept from before the packing (eqnott passes ``PTERM*``
around freely) are exercised and resolved by forwarding.
"""

from __future__ import annotations

from repro.apps.base import Application, Variant, register
from repro.core.machine import NULL, Machine
from repro.opts.packing import pack_pointer_table
from repro.runtime.records import RecordLayout
from repro.runtime.rng import DeterministicRNG

PTERM = RecordLayout("pterm", [("ptand", 8), ("nvars", 8), ("id", 8)])


@register
class Eqntott(Application):
    """The eqntott ``cmppt`` workload on the simulated machine."""

    name = "eqntott"
    description = "pairwise PTERM comparisons over a hash table of records"
    optimization = "record+array packing in hash order (once, after build)"

    TABLE_ENTRIES = 512
    TERMS = 400
    VARS = 16              # shorts per term array
    SWEEPS = 14
    WORK_PER_COMPARE = 20
    WORK_PER_VAR = 2
    PREFETCH_BLOCK = 2
    STRAY_SAMPLES = 16

    def execute(self, machine: Machine, variant: Variant) -> tuple[int, dict]:
        rng = DeterministicRNG(self.seed)
        terms = self._scaled(self.TERMS, minimum=8)
        table = machine.malloc(self.TABLE_ENTRIES * 8)
        occupied = self._build_terms(machine, rng, table, terms)

        # Keep a few raw PTERM pointers from before any relocation, as the
        # real program's spread-out references would.
        strays = [
            machine.load(table + slot * 8)
            for slot in occupied[:: max(1, len(occupied) // self.STRAY_SAMPLES)]
        ]

        if variant.optimized:
            pool = machine.create_pool(4 << 20, "eqntott")
            pack_pointer_table(
                machine,
                table,
                self.TABLE_ENTRIES,
                PTERM,
                "ptand",
                lambda mm, record: self.VARS * 2,
                pool,
            )

        checksum = 0
        sweeps = self._scaled(self.SWEEPS)
        for _ in range(sweeps):
            checksum = (checksum + self._cmppt_sweep(machine, variant, table, occupied)) % (1 << 61)

        # Dereference the stray pointers: forwarded in the optimized runs.
        for stray in strays:
            checksum = (checksum * 31 + PTERM.read(machine, stray, "id")) % (1 << 61)

        return checksum, {"terms": terms, "occupied_slots": len(occupied)}

    # ------------------------------------------------------------------
    def _build_terms(
        self, machine: Machine, rng: DeterministicRNG, table: int, terms: int
    ) -> list[int]:
        """Create PTERMs in scattered order; returns occupied slot indices."""
        slots = list(range(self.TABLE_ENTRIES))
        rng.shuffle(slots)
        chosen = sorted(slots[:terms])
        # Pass 1: records, in random order (parse order != hash order).
        order = chosen[:]
        rng.shuffle(order)
        records: dict[int, int] = {}
        for slot in order:
            record = PTERM.alloc(machine)
            PTERM.write(machine, record, "nvars", self.VARS)
            PTERM.write(machine, record, "id", slot)
            machine.store(table + slot * 8, record)
            records[slot] = record
        # Pass 2: literal arrays, in a different random order.
        rng.shuffle(order)
        for slot in order:
            array = machine.malloc(self.VARS * 2)
            for position in range(self.VARS):
                machine.store(array + position * 2, rng.randint(3), 2)
            PTERM.write(machine, records[slot], "ptand", array)
        return chosen

    # ------------------------------------------------------------------
    def _cmppt_sweep(
        self, machine: Machine, variant: Variant, table: int, occupied: list[int]
    ) -> int:
        """Compare each term against its successor in hash order."""
        m = machine
        line = m.config.hierarchy.line_size
        prefetching = variant.prefetching
        result = 0
        previous_record = NULL
        previous_key = 0
        for position, slot in enumerate(occupied):
            record = m.load(table + slot * 8)
            if prefetching:
                if variant.optimized:
                    m.prefetch(record + line, self.PREFETCH_BLOCK)
                elif position + 1 < len(occupied):
                    # The next record's address is one (cheap, contiguous)
                    # table load away -- prefetch the record it names.
                    next_record = m.load(table + occupied[position + 1] * 8)
                    m.prefetch(next_record, 1)
            m.execute(self.WORK_PER_COMPARE)
            key = self._term_key(m, record)
            if previous_record != NULL:
                result += 1 if key < previous_key else 0
            previous_record = record
            previous_key = key
        return result

    def _term_key(self, machine: Machine, record: int) -> int:
        """Walk the record's literal array (the body of ``cmppt``)."""
        array = PTERM.read(machine, record, "ptand")
        key = 0
        for position in range(self.VARS):
            machine.execute(self.WORK_PER_VAR)
            key = key * 3 + machine.load(array + position * 2, 2)
        return key
