"""Unit tests for the forwarding engine (chain walking, cycles, stats)."""

import pytest

from repro.core.errors import ForwardingCycleError
from repro.core.forwarding import ForwardingEngine
from repro.core.memory import TaggedMemory


@pytest.fixture
def mem():
    return TaggedMemory(64 * 1024)


@pytest.fixture
def engine(mem):
    return ForwardingEngine(mem, hop_limit=8)


def forward(mem, old, new):
    """Make the word at ``old`` forward to ``new``."""
    mem.write_word_tagged(old, new, 1)


class TestResolve:
    def test_unforwarded_address_is_its_own_final(self, engine):
        final, hops = engine.resolve(0x100)
        assert final == 0x100
        assert hops == 0

    def test_single_hop(self, mem, engine):
        forward(mem, 0x100, 0x800)
        final, hops = engine.resolve(0x100)
        assert final == 0x800
        assert hops == 1

    def test_chain_of_hops(self, mem, engine):
        forward(mem, 0x100, 0x200)
        forward(mem, 0x200, 0x300)
        forward(mem, 0x300, 0x400)
        final, hops = engine.resolve(0x100)
        assert final == 0x400
        assert hops == 3

    def test_byte_offset_preserved_across_hops(self, mem, engine):
        """Figure 1: a 32-bit load at old+4 forwards to new+4."""
        forward(mem, 0x100, 0x800)
        final, hops = engine.resolve(0x104)
        assert final == 0x804
        assert hops == 1

    def test_mid_chain_entry_resolves_to_same_final(self, mem, engine):
        forward(mem, 0x100, 0x200)
        forward(mem, 0x200, 0x300)
        assert engine.resolve(0x200)[0] == 0x300
        assert engine.resolve(0x100)[0] == 0x300

    def test_hop_callback_sees_each_old_word(self, mem, engine):
        forward(mem, 0x100, 0x200)
        forward(mem, 0x200, 0x300)
        touched = []
        engine.resolve(0x104, touched.append)
        assert touched == [0x100, 0x200]

    def test_no_callback_on_fast_path(self, mem, engine):
        touched = []
        engine.resolve(0x100, touched.append)
        assert touched == []


class TestCycleHandling:
    def test_self_cycle_detected(self, mem, engine):
        forward(mem, 0x100, 0x100)
        with pytest.raises(ForwardingCycleError):
            engine.resolve(0x100)
        assert engine.stats.cycles_detected == 1

    def test_two_node_cycle_detected(self, mem, engine):
        forward(mem, 0x100, 0x200)
        forward(mem, 0x200, 0x100)
        with pytest.raises(ForwardingCycleError):
            engine.resolve(0x100)

    def test_long_acyclic_chain_is_false_alarm(self, mem, engine):
        """A chain longer than the hop limit must resolve, not abort."""
        base = 0x1000
        links = 20  # hop limit is 8
        for index in range(links):
            forward(mem, base + index * 8, base + (index + 1) * 8)
        final, hops = engine.resolve(base)
        assert final == base + links * 8
        assert hops == links
        assert engine.stats.cycle_check_invocations >= 1
        assert engine.stats.cycles_detected == 0

    def test_cycle_beyond_hop_limit_detected(self, mem, engine):
        base = 0x1000
        for index in range(30):
            forward(mem, base + index * 8, base + (index + 1) * 8)
        forward(mem, base + 30 * 8, base)  # close the loop
        with pytest.raises(ForwardingCycleError):
            engine.resolve(base)

    def test_hop_limit_validation(self, mem):
        with pytest.raises(ValueError):
            ForwardingEngine(mem, hop_limit=0)


class TestChain:
    def test_chain_lists_all_words(self, mem, engine):
        forward(mem, 0x100, 0x200)
        forward(mem, 0x200, 0x300)
        assert engine.chain(0x100) == [0x100, 0x200, 0x300]

    def test_chain_of_unforwarded_word(self, engine):
        assert engine.chain(0x500) == [0x500]

    def test_chain_ignores_byte_offset(self, mem, engine):
        forward(mem, 0x100, 0x200)
        assert engine.chain(0x104) == [0x100, 0x200]

    def test_chain_raises_on_cycle(self, mem, engine):
        forward(mem, 0x100, 0x200)
        forward(mem, 0x200, 0x100)
        with pytest.raises(ForwardingCycleError):
            engine.chain(0x100)


class TestStats:
    def test_references_counted(self, mem, engine):
        engine.resolve(0x100)
        engine.resolve(0x108)
        forward(mem, 0x200, 0x300)
        engine.resolve(0x200)
        stats = engine.stats
        assert stats.references == 3
        assert stats.forwarded_references == 1
        assert stats.total_hops == 1

    def test_hop_histogram(self, mem, engine):
        forward(mem, 0x100, 0x200)
        forward(mem, 0x300, 0x400)
        forward(mem, 0x400, 0x500)
        engine.resolve(0x100)
        engine.resolve(0x300)
        assert engine.stats.hop_histogram == {1: 1, 2: 1}

    def test_merge(self, mem, engine):
        from repro.core.forwarding import ForwardingStats

        a = ForwardingStats()
        a.record(2)
        b = ForwardingStats()
        b.record(2)
        b.record(0)
        a.merge(b)
        assert a.references == 3
        assert a.forwarded_references == 2
        assert a.hop_histogram == {2: 2}

    def test_chain_length_bound_to_registry(self, mem, engine):
        from repro.obs import Registry

        registry = Registry()
        engine.stats.register_metrics(registry, "fwd")
        forward(mem, 0x100, 0x200)
        forward(mem, 0x200, 0x300)
        engine.resolve(0x100)
        assert registry.snapshot().get("fwd.chain_length") == {2: 1}


class TestEvents:
    def test_walks_emitted_with_hop_count(self, mem, engine):
        from repro.obs import EventLog

        engine.events = EventLog(capacity=8)
        forward(mem, 0x100, 0x200)
        forward(mem, 0x200, 0x300)
        engine.resolve(0x104)
        engine.resolve(0x500)  # unforwarded: no event
        payload = engine.events.to_payload()
        assert payload["counts"] == {"fwd.walk": 1}
        record = payload["records"][0]
        assert record["args"] == {"initial": 0x104, "final": 0x304, "hops": 2}
