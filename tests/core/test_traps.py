"""Tests for user-level forwarding traps: profiler and pointer fixup."""

import pytest

from repro import (
    ChainedTrapHandler,
    ForwardingProfiler,
    Machine,
    PointerFixupTrap,
    relocate,
)


@pytest.fixture
def m():
    return Machine()


def relocated_object(m):
    old = m.malloc(16)
    new = m.create_pool(4096).allocate(16)
    m.store(old, 5)
    relocate(m, old, new, 2)
    return old, new


class TestForwardingProfiler:
    def test_records_events_and_hops(self, m):
        old, _ = relocated_object(m)
        profiler = ForwardingProfiler()
        m.set_trap_handler(profiler)
        m.load(old)
        m.load(old + 8)
        m.store(old, 9)
        profile = profiler.profile
        assert profile.events == 3
        assert profile.total_hops == 3
        assert profile.write_events == 1

    def test_regions_bucketize_initial_addresses(self, m):
        old, _ = relocated_object(m)
        profiler = ForwardingProfiler(granularity=4096)
        m.set_trap_handler(profiler)
        m.load(old)
        ((region, count),) = profiler.profile.top_regions(1)
        assert region == old >> 12
        assert count == 1

    def test_granularity_validation(self):
        with pytest.raises(ValueError):
            ForwardingProfiler(granularity=1000)

    def test_silent_without_forwarding(self, m):
        profiler = ForwardingProfiler()
        m.set_trap_handler(profiler)
        addr = m.malloc(8)
        m.store(addr, 1)
        m.load(addr)
        assert profiler.profile.events == 0


class TestPointerFixupTrap:
    def test_fixup_eliminates_future_forwarding(self, m):
        """The paper's on-the-fly optimization: update the stray pointer at
        first trap so later dereferences go straight to the new home."""
        old, new = relocated_object(m)
        # The application's stray pointer lives in simulated memory.
        pointer_cell = m.malloc(8)
        m.store(pointer_cell, old)

        def fixup(machine, event):
            if machine.load(pointer_cell) == event.initial_address:
                machine.store(pointer_cell, event.final_address)
                return True
            return False

        trap = PointerFixupTrap(fixup)
        m.set_trap_handler(trap)

        # First dereference: forwarded, then fixed.
        assert m.load(m.load(pointer_cell)) == 5
        assert trap.invocations == 1
        assert trap.fixes == 1

        forwarded_before = m.stats().loads.forwarded
        # Second dereference: pointer now points at the new location.
        assert m.load(m.load(pointer_cell)) == 5
        assert m.stats().loads.forwarded == forwarded_before

    def test_unsuccessful_fixup_counted(self, m):
        old, _ = relocated_object(m)
        trap = PointerFixupTrap(lambda machine, event: False)
        m.set_trap_handler(trap)
        m.load(old)
        assert trap.invocations == 1
        assert trap.fixes == 0


class TestChainedTrapHandler:
    def test_both_handlers_run(self, m):
        old, new = relocated_object(m)
        profiler = ForwardingProfiler()
        seen = []
        chained = ChainedTrapHandler(profiler, lambda mm, e: seen.append(e.hops))
        m.set_trap_handler(chained)
        m.load(old)
        assert profiler.profile.events == 1
        assert seen == [1]


class TestTrapCost:
    def test_trap_handler_adds_cycles(self, m):
        old, _ = relocated_object(m)
        # Baseline: forwarded load without a handler.
        m.load(old)
        baseline = m.cycles
        machine2 = Machine()
        old2, _ = relocated_object(machine2)
        machine2.set_trap_handler(lambda mm, e: None)
        machine2.load(old2)
        assert machine2.cycles > baseline * 0.99  # handler path not cheaper
