"""Integration tests for the Machine facade."""

import pytest

from repro import (
    Machine,
    MachineConfig,
    DoubleFreeError,
    ForwardingEvent,
)
from repro.cache.hierarchy import HierarchyConfig
from repro.core.relocate import relocate


@pytest.fixture
def m():
    return Machine()


class TestLoadsAndStores:
    def test_store_load_roundtrip(self, m):
        addr = m.malloc(16)
        m.store(addr, 12345)
        assert m.load(addr) == 12345

    @pytest.mark.parametrize("size", [1, 2, 4, 8])
    def test_subword_sizes(self, m, size):
        addr = m.malloc(16)
        value = (1 << (8 * size)) - 1
        m.store(addr, value, size)
        assert m.load(addr, size) == value

    def test_references_advance_time(self, m):
        addr = m.malloc(16)
        before = m.cycles
        m.load(addr)
        assert m.cycles > before

    def test_cold_load_is_a_miss(self, m):
        addr = m.malloc(4096)
        m.load(addr + 1024)  # beyond the line malloc's clearing touched? (clearing is untimed)
        stats = m.stats()
        assert stats.load_misses >= 1

    def test_reference_counts(self, m):
        addr = m.malloc(16)
        m.store(addr, 1)
        m.load(addr)
        m.load(addr)
        stats = m.stats()
        assert stats.loads.count == 2
        assert stats.stores.count == 1


class TestForwardedReferences:
    def setup_chain(self, m):
        src = m.malloc(16)
        tgt = m.create_pool(4096).allocate(16)
        m.store(src, 777)
        m.store(src + 8, 888)
        relocate(m, src, tgt, 2)
        return src, tgt

    def test_load_via_old_address(self, m):
        src, tgt = self.setup_chain(m)
        assert m.load(src) == 777
        assert m.load(src + 8) == 888

    def test_store_via_old_address_lands_at_new(self, m):
        src, tgt = self.setup_chain(m)
        m.store(src, 111)
        assert m.load(tgt) == 111

    def test_forwarded_counts(self, m):
        src, tgt = self.setup_chain(m)
        m.load(src)
        m.load(tgt)
        stats = m.stats()
        assert stats.loads.forwarded == 1
        assert stats.forwarding_hops >= 1

    def test_forwarding_charges_extra_latency(self, m):
        src, tgt = self.setup_chain(m)
        # Warm both locations so the comparison is about forwarding alone.
        m.load(tgt)
        m.load(src)
        before = m.cycles
        m.load(tgt)
        direct = m.cycles - before
        before = m.cycles
        m.load(src)
        forwarded = m.cycles - before
        assert forwarded > direct

    def test_trap_handler_invoked(self, m):
        src, tgt = self.setup_chain(m)
        events: list[ForwardingEvent] = []
        m.set_trap_handler(lambda machine, event: events.append(event))
        m.load(src + 8)
        assert len(events) == 1
        assert events[0].initial_address == src + 8
        assert events[0].final_address == tgt + 8
        assert events[0].hops == 1
        assert not events[0].is_write

    def test_trap_handler_cleared(self, m):
        src, _ = self.setup_chain(m)
        events = []
        m.set_trap_handler(lambda machine, event: events.append(event))
        m.set_trap_handler(None)
        m.load(src)
        assert events == []


class TestIsaExtensions:
    def test_read_fbit(self, m):
        addr = m.malloc(16)
        assert m.read_fbit(addr) == 0
        m.unforwarded_write(addr, 0x2000, 1)
        assert m.read_fbit(addr) == 1

    def test_unforwarded_read_sees_forwarding_address(self, m):
        """Figure 1(b): normal read is forwarded, unforwarded read is not."""
        src = m.malloc(16)
        tgt = m.create_pool(4096).allocate(16)
        m.store(src, 5)
        relocate(m, src, tgt, 1)
        assert m.load(src) == 5            # forwarded to the data
        assert m.unforwarded_read(src) == tgt  # the raw forwarding address

    def test_unforwarded_write_is_atomic(self, m):
        addr = m.malloc(16)
        m.unforwarded_write(addr, 42, 0)
        assert m.load(addr) == 42
        assert m.read_fbit(addr) == 0


class TestHeap:
    def test_free_releases_block(self, m):
        addr = m.malloc(32)
        m.free(addr)
        assert not m.heap.owns(addr)

    def test_free_follows_forwarding_chain(self, m):
        """Section 3.3: freeing an object frees its relocated copies too."""
        a = m.malloc(16)
        b = m.malloc(16)
        relocate(m, a, b, 2)
        m.free(a)
        assert not m.heap.owns(a)
        assert not m.heap.owns(b)

    def test_free_by_any_chain_address(self, m):
        a = m.malloc(16)
        b = m.malloc(16)
        relocate(m, a, b, 2)
        m.free(b)  # freeing via the new address still works
        assert not m.heap.owns(b)

    def test_double_free_detected(self, m):
        addr = m.malloc(16)
        m.free(addr)
        with pytest.raises(DoubleFreeError):
            m.free(addr)

    def test_malloc_costs_instructions(self, m):
        before = m.stats().instructions
        m.malloc(1024)
        assert m.stats().instructions > before


class TestPools:
    def test_pools_are_disjoint(self, m):
        a = m.create_pool(4096, "a")
        b = m.create_pool(4096, "b")
        assert a.limit <= b.base or b.limit <= a.base

    def test_pool_space_reported_in_stats(self, m):
        pool = m.create_pool(4096)
        pool.allocate(128)
        assert m.stats().relocation.pool_bytes == 128

    def test_pool_region_exhaustion(self):
        config = MachineConfig(pool_region_size=4096)
        machine = Machine(config)
        machine.create_pool(4096)
        from repro.core.errors import MemoryAccessError
        with pytest.raises(MemoryAccessError):
            machine.create_pool(4096)


class TestConfig:
    def test_with_line_size(self):
        config = MachineConfig(hierarchy=HierarchyConfig(line_size=32))
        wider = config.with_line_size(128)
        assert wider.hierarchy.line_size == 128
        assert config.hierarchy.line_size == 32  # original untouched

    def test_speculation_can_be_disabled(self):
        machine = Machine(MachineConfig(speculation_window=0))
        assert machine.speculator is None
        addr = machine.malloc(16)
        machine.store(addr, 1)
        assert machine.load(addr) == 1


class TestSpeculationIntegration:
    def test_forwarded_collision_flushes(self, m):
        src = m.malloc(16)
        tgt = m.create_pool(4096).allocate(16)
        m.store(src, 9)
        relocate(m, src, tgt, 1)
        m.store(src, 10)   # store via old address (forwarded)
        m.load(tgt)        # load via new address: initials differ, finals match
        assert m.stats().misspeculations >= 1

    def test_normal_code_never_misspeculates(self, m):
        addr = m.malloc(64)
        for index in range(8):
            m.store(addr + index * 8, index)
        for index in range(8):
            m.load(addr + index * 8)
        assert m.stats().misspeculations == 0
