"""Tests for safe (final-address) pointer comparison."""

import pytest

from repro import Machine, NULL, final_address, ptr_eq, ptr_ne, relocate


@pytest.fixture
def m():
    return Machine()


@pytest.fixture
def moved(m):
    """An object relocated from ``old`` to ``new``."""
    old = m.malloc(16)
    new = m.create_pool(4096).allocate(16)
    m.store(old, 1)
    relocate(m, old, new, 2)
    return old, new


class TestFinalAddress:
    def test_null_resolves_to_null(self, m):
        assert final_address(m, NULL) == NULL

    def test_unforwarded_pointer_unchanged(self, m):
        addr = m.malloc(8)
        assert final_address(m, addr) == addr

    def test_forwarded_pointer_resolves(self, m, moved):
        old, new = moved
        assert final_address(m, old) == new

    def test_offset_preserved(self, m, moved):
        old, new = moved
        assert final_address(m, old + 4) == new + 4

    def test_uses_isa_extensions_not_forwarded_loads(self, m, moved):
        """The software sequence must not itself trigger forwarding traps."""
        old, _ = moved
        before = m.stats().loads.forwarded
        final_address(m, old)
        assert m.stats().loads.forwarded == before


class TestPtrEq:
    def test_identical_pointers(self, m):
        addr = m.malloc(8)
        assert ptr_eq(m, addr, addr)

    def test_distinct_objects(self, m):
        a = m.malloc(8)
        b = m.malloc(8)
        assert not ptr_eq(m, a, b)
        assert ptr_ne(m, a, b)

    def test_old_and_new_address_compare_equal(self, m, moved):
        """Section 2.1: two distinct initial addresses may name the same
        object; comparison must use final addresses."""
        old, new = moved
        assert old != new  # raw comparison would be wrong...
        assert ptr_eq(m, old, new)  # ...the safe comparison is right.

    def test_both_pointers_stale(self, m):
        """Two stale pointers into the same relocated object still match."""
        old = m.malloc(16)
        mid = m.malloc(16)
        new = m.create_pool(4096).allocate(16)
        relocate(m, old, mid, 2)
        relocate(m, old, new, 2)
        assert ptr_eq(m, old, mid)
        assert ptr_eq(m, mid, new)

    def test_comparison_has_instruction_cost(self, m, moved):
        old, new = moved
        before = m.stats().instructions
        ptr_eq(m, old, new)
        assert m.stats().instructions > before

    def test_null_comparisons(self, m, moved):
        old, _ = moved
        assert ptr_eq(m, NULL, NULL)
        assert not ptr_eq(m, old, NULL)
