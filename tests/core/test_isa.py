"""Fidelity tests for the Figure 3 ISA extensions."""

import pytest

from repro import ISAExtensions, Machine, relocate


@pytest.fixture
def m():
    return Machine()


@pytest.fixture
def isa(m):
    return ISAExtensions(m)


class TestFigure3Semantics:
    """Check the exact example of Section 3.1 / Figure 1(b):

    after relocation, a normal Read of a forwarded word returns the data
    at its new location, while an Unforwarded_Read of the same word
    returns the forwarding address itself.
    """

    def test_read_vs_unforwarded_read(self, m, isa):
        src = m.malloc(16)
        tgt = m.create_pool(4096).allocate(16)
        isa.Write(src + 8, 0)  # the word at offset 8 holds value 0
        relocate(m, src, tgt, 2)
        assert isa.Read(src + 8) == 0              # forwarded to the value
        assert isa.Unforwarded_Read(src + 8) == tgt + 8  # the raw pointer

    def test_read_fbit_distinguishes_data_from_pointer(self, m, isa):
        addr = m.malloc(16)
        assert isa.Read_FBit(addr) == 0
        isa.Unforwarded_Write(addr, 0x9000, 1)
        assert isa.Read_FBit(addr) == 1

    def test_unforwarded_write_atomicity(self, m, isa):
        addr = m.malloc(8)
        isa.Unforwarded_Write(addr, 1234, 0)
        assert isa.Read(addr) == 1234
        assert isa.Read_FBit(addr) == 0

    def test_relocate_expressible_in_isa_only(self, m, isa):
        """Figure 4(a)'s Relocate() uses only the three new instructions
        plus ordinary reads/writes; re-implement it here by hand."""
        src = m.malloc(16)
        tgt = m.create_pool(4096).allocate(16)
        isa.Write(src, 42)
        isa.Write(src + 8, 43)
        for index in range(2):
            old = src + 8 * index
            while isa.Read_FBit(old):
                old = isa.Unforwarded_Read(old)
            value = isa.Unforwarded_Read(old)
            isa.Unforwarded_Write(tgt + 8 * index, value, 0)
            isa.Unforwarded_Write(old, tgt + 8 * index, 1)
        assert isa.Read(src) == 42
        assert isa.Read(src + 8) == 43
        assert isa.Unforwarded_Read(src) == tgt


class TestCosts:
    def test_each_extension_is_one_instruction(self, m, isa):
        addr = m.malloc(8)
        base = m.stats().instructions
        isa.Read_FBit(addr)
        assert m.stats().instructions == base + 1
        isa.Unforwarded_Read(addr)
        assert m.stats().instructions == base + 2
        isa.Unforwarded_Write(addr, 0, 0)
        assert m.stats().instructions == base + 3

    def test_extensions_do_not_follow_chains(self, m, isa):
        src = m.malloc(8)
        tgt = m.create_pool(4096).allocate(8)
        relocate(m, src, tgt, 1)
        before = m.stats().forwarding_hops
        isa.Read_FBit(src)
        isa.Unforwarded_Read(src)
        assert m.stats().forwarding_hops == before
