"""Additional Machine-facade edge cases and timing-visible behaviours."""

import pytest

from repro import Machine, MachineConfig, relocate
from repro.cache.hierarchy import HierarchyConfig


@pytest.fixture
def m():
    return Machine()


class TestPrefetchPath:
    def test_prefetch_warms_the_cache(self, m):
        addr = m.malloc(256)
        m.prefetch(addr, lines=2)
        m.execute(2000)  # let the fills complete
        before = m.stats().load_misses
        m.load(addr)
        m.load(addr + m.config.hierarchy.line_size)
        assert m.stats().load_misses == before

    def test_prefetch_costs_one_instruction(self, m):
        addr = m.malloc(64)
        before = m.stats().instructions
        m.prefetch(addr, lines=8)
        assert m.stats().instructions == before + 1

    def test_prefetch_never_stalls(self, m):
        addr = m.malloc(1 << 12)
        m.execute(4)
        before = m.cycles
        m.prefetch(addr + 2048, lines=4)
        # Only the issue slot is charged, never the fill latency.
        assert m.cycles - before < 2.0

    def test_prefetch_block_clamped(self, m):
        addr = m.malloc(1 << 12)
        m.prefetch(addr, lines=999)
        assert (
            m.prefetcher.stats.lines_requested
            == m.config.max_prefetch_block
        )


class TestMallocEdges:
    def test_malloc_custom_alignment(self, m):
        addr = m.malloc(64, align=256)
        assert addr % 256 == 0

    def test_free_interior_pointer_rejected(self, m):
        addr = m.malloc(64)
        from repro.core.errors import DoubleFreeError
        with pytest.raises(DoubleFreeError):
            m.free(addr + 8)

    def test_malloc_cost_scales_with_size(self, m):
        before = m.stats().instructions
        m.malloc(64)
        small = m.stats().instructions - before
        before = m.stats().instructions
        m.malloc(1 << 14)
        large = m.stats().instructions - before
        assert large > small


class TestForwardedTiming:
    def test_each_hop_adds_latency(self, m):
        """A two-hop chain costs more than a one-hop chain to dereference."""
        pool = m.create_pool(1 << 14)

        def chain_cost(generations):
            obj = m.malloc(8)
            m.store(obj, 1)
            for _ in range(generations):
                relocate(m, obj, pool.allocate(8), 1)
            # Warm everything, then time a dereference.
            m.load(obj)
            start = m.cycles
            m.load(obj)
            return m.cycles - start

        assert chain_cost(2) > chain_cost(1) > chain_cost(0)

    def test_forwarded_store_latency_tracked(self, m):
        obj = m.malloc(8)
        relocate(m, obj, m.create_pool(4096).allocate(8), 1)
        m.store(obj, 9)
        stats = m.stats()
        assert stats.stores.forwarded == 1
        assert stats.stores.forwarding_cycles > 0

    def test_hop_limit_respected_through_machine(self):
        machine = Machine(MachineConfig(hop_limit=2))
        pool = machine.create_pool(1 << 14)
        obj = machine.malloc(8)
        machine.store(obj, 3)
        for _ in range(5):  # five generations > limit of 2
            relocate(machine, obj, pool.allocate(8), 1)
        assert machine.load(obj) == 3  # false alarms resolved, not fatal
        assert machine.forwarding.stats.cycle_check_invocations >= 1


class TestStatsSnapshot:
    def test_snapshot_is_decoupled_from_live_state(self, m):
        addr = m.malloc(8)
        m.store(addr, 1)
        snap = m.stats()
        loads_at_snap = snap.loads.count
        m.load(addr)
        assert snap.loads.count == loads_at_snap
        assert m.stats().loads.count == loads_at_snap + 1

    def test_to_dict_complete(self, m):
        addr = m.malloc(8)
        m.store(addr, 1)
        data = m.stats().to_dict()
        for key in ("cycles", "busy_slots", "l1_l2_bytes", "forwarding_hops",
                    "misspeculations", "relocations", "heap_high_water"):
            assert key in data

    def test_pool_bytes_aggregate_across_pools(self, m):
        a = m.create_pool(4096, "a")
        b = m.create_pool(4096, "b")
        a.allocate(128)
        b.allocate(64)
        assert m.stats().relocation.pool_bytes == 192


class TestGeometryConfig:
    def test_line_size_changes_take_effect(self):
        machine = Machine(MachineConfig(hierarchy=HierarchyConfig(line_size=256)))
        assert machine.hierarchy.l1.line_size == 256
        # L2 line never shrinks below L1's.
        assert machine.hierarchy.l2.line_size == 256

    def test_default_l2_line_is_128(self):
        machine = Machine()
        assert machine.hierarchy.l2.line_size == 128
        assert machine.hierarchy.l1.line_size == 32
