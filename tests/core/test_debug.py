"""Tests for the memory-dump helpers."""

import pytest

from repro import Machine, relocate
from repro.core.debug import dump_chain, dump_region, region_summary


@pytest.fixture
def m():
    return Machine()


class TestDumpRegion:
    def test_data_words_rendered(self, m):
        addr = m.malloc(16)
        m.store(addr, 5)
        m.store(addr + 8, 0xBEEF)
        text = dump_region(m.memory, addr, 2, title="demo")
        assert "demo" in text
        lines = text.splitlines()
        assert lines[-2].strip().endswith("5")
        assert "0xbeef" in lines[-1]

    def test_forwarding_stub_rendered_as_arrow(self, m):
        src = m.malloc(8)
        tgt = m.create_pool(4096).allocate(8)
        relocate(m, src, tgt, 1)
        text = dump_region(m.memory, src, 1)
        assert f"-> {tgt:#x}" in text
        assert "   1  " in text  # fbit column

    def test_alignment_validated(self, m):
        with pytest.raises(ValueError):
            dump_region(m.memory, 0x1004, 1)


class TestDumpChain:
    def test_single_word(self, m):
        addr = m.malloc(8)
        assert dump_chain(m.memory, addr) == f"{addr:#x}"

    def test_two_generation_chain(self, m):
        obj = m.malloc(8)
        pool = m.create_pool(4096)
        mid = pool.allocate(8)
        new = pool.allocate(8)
        relocate(m, obj, mid, 1)
        relocate(m, obj, new, 1)
        assert dump_chain(m.memory, obj) == f"{obj:#x} -> {mid:#x} -> {new:#x}"


class TestRegionSummary:
    def test_counts_partition(self, m):
        base = m.malloc(32)
        tgt = m.create_pool(4096).allocate(16)
        relocate(m, base, tgt, 2)  # forward the first two words only
        summary = region_summary(m.memory, base, 4)
        assert summary == {"words": 4, "forwarding": 2, "data": 2}
