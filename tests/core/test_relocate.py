"""Tests for relocate()/list_linearize(), including paper-figure fidelity."""

import pytest

from repro import Machine, NULL, list_linearize, relocate


@pytest.fixture
def m():
    return Machine()


class TestFigure1:
    """Reproduce the exact memory states of Figure 1 of the paper.

    Five 32-bit elements at (decimal) addresses 0800-0816 are relocated to
    5800-5816.  Because relocation is word-granular, the 32-bit subword at
    0820 (value 5) moves along with the element at 0816.
    """

    def setup_figure(self, m):
        src = 800
        tgt = 5800
        # The figure uses decimal addresses; both are word aligned.
        values = [3, 47, 0, 12, 5]
        for index, value in enumerate(values):
            m.memory.write_data(src + 4 * index, value, 4)
        return src, tgt, values

    def test_before_state(self, m):
        src, _, values = self.setup_figure(m)
        for index, value in enumerate(values):
            assert m.memory.read_data(src + 4 * index, 4) == value
        for word in range(3):
            assert m.memory.read_fbit(src + 8 * word) == 0

    def test_after_state(self, m):
        src, tgt, values = self.setup_figure(m)
        relocate(m, src, tgt, 3)  # 5 elements + the co-resident subword = 3 words
        # Old words hold forwarding addresses with bits set.
        assert m.memory.read_word(src) == tgt
        assert m.memory.read_word(src + 8) == tgt + 8
        assert m.memory.read_word(src + 16) == tgt + 16
        for word in range(3):
            assert m.memory.read_fbit(src + 8 * word) == 1
        # New locations hold the data with clear bits.
        for index, value in enumerate(values):
            assert m.memory.read_data(tgt + 4 * index, 4) == value
            assert m.memory.read_fbit((tgt + 4 * index) & ~7) == 0

    def test_forwarded_32bit_load(self, m):
        """The paper's example: a 32-bit load of 0804 returns 47 via 5804."""
        src, tgt, _ = self.setup_figure(m)
        relocate(m, src, tgt, 3)
        assert m.load(src + 4, 4) == 47


class TestRelocate:
    def test_validates_alignment(self, m):
        with pytest.raises(ValueError):
            relocate(m, 0x1004, 0x2000, 1)
        with pytest.raises(ValueError):
            relocate(m, 0x1000, 0x2004, 1)

    def test_validates_word_count(self, m):
        with pytest.raises(ValueError):
            relocate(m, 0x1000, 0x2000, 0)

    def test_chain_appending_on_double_relocation(self, m):
        """Relocating twice appends to the chain: old -> mid -> new."""
        a = m.malloc(8)
        b = m.malloc(8)
        c = m.malloc(8)
        m.store(a, 42)
        relocate(m, a, b, 1)
        relocate(m, a, c, 1)  # src is the *original* address again
        # a forwards to b, b forwards to c.
        assert m.memory.read_word(a) == b
        assert m.memory.read_word(b) == c
        assert m.load(a) == 42
        assert m.load(b) == 42
        assert m.load(c) == 42

    def test_relocation_stats(self, m):
        a = m.malloc(32)
        b = m.malloc(32)
        relocate(m, a, b, 4)
        stats = m.stats().relocation
        assert stats.relocations == 1
        assert stats.words_relocated == 4


def build_list(m, values, node_bytes=16, next_offset=8):
    """Build a simulated singly linked list; returns the head handle."""
    head_handle = m.malloc(8)
    slot = head_handle
    for value in values:
        node = m.malloc(node_bytes)
        m.store(node, value)
        m.store(slot, node)
        slot = node + next_offset
    m.store(slot, NULL)
    return head_handle


def read_list(m, head_handle, next_offset=8):
    out = []
    node = m.load(head_handle)
    while node != NULL:
        out.append(m.load(node))
        node = m.load(node + next_offset)
    return out


class TestListLinearize:
    def test_values_preserved(self, m):
        values = list(range(20))
        head_handle = build_list(m, values)
        pool = m.create_pool(1 << 14)
        list_linearize(m, head_handle, 8, 16, pool)
        assert read_list(m, head_handle) == values

    def test_nodes_become_contiguous(self, m):
        head_handle = build_list(m, [1, 2, 3, 4])
        pool = m.create_pool(1 << 14)
        new_head, count = list_linearize(m, head_handle, 8, 16, pool)
        assert count == 4
        node = m.load(head_handle)
        addresses = []
        while node != NULL:
            addresses.append(node)
            node = m.load(node + 8)
        assert addresses == [new_head + 16 * i for i in range(4)]

    def test_head_updated_to_new_location(self, m):
        """Figure 2(b): the head must point into the pool afterwards."""
        head_handle = build_list(m, [7, 8, 9])
        old_head = m.load(head_handle)
        pool = m.create_pool(1 << 14)
        new_head, _ = list_linearize(m, head_handle, 8, 16, pool)
        assert m.load(head_handle) == new_head
        assert new_head != old_head
        assert pool.contains(new_head)

    def test_stray_pointer_still_works(self, m):
        """The safety net: a pre-linearization pointer into the middle of
        the list still reads the right value via forwarding."""
        head_handle = build_list(m, [10, 20, 30, 40])
        # Grab a stray pointer to the third node before linearization.
        node = m.load(head_handle)
        node = m.load(node + 8)
        stray = m.load(node + 8)
        pool = m.create_pool(1 << 14)
        list_linearize(m, head_handle, 8, 16, pool)
        assert m.load(stray) == 30  # forwarded
        assert m.stats().loads.forwarded >= 1

    def test_empty_list(self, m):
        head_handle = m.malloc(8)
        m.store(head_handle, NULL)
        pool = m.create_pool(1 << 14)
        new_head, count = list_linearize(m, head_handle, 8, 16, pool)
        assert count == 0
        assert m.load(head_handle) == NULL

    def test_repeated_linearization(self, m):
        """Periodic invocation (as in VIS) keeps working and stays correct."""
        values = list(range(8))
        head_handle = build_list(m, values)
        pool = m.create_pool(1 << 16)
        for _ in range(3):
            list_linearize(m, head_handle, 8, 16, pool)
        assert read_list(m, head_handle) == values

    def test_traversal_after_linearize_needs_no_forwarding(self, m):
        head_handle = build_list(m, list(range(10)))
        pool = m.create_pool(1 << 14)
        list_linearize(m, head_handle, 8, 16, pool)
        before = m.stats().loads.forwarded
        read_list(m, head_handle)
        assert m.stats().loads.forwarded == before

    def test_parameter_validation(self, m):
        head_handle = build_list(m, [1])
        pool = m.create_pool(1 << 14)
        with pytest.raises(ValueError):
            list_linearize(m, head_handle, 8, 12, pool)  # bad node size
        with pytest.raises(ValueError):
            list_linearize(m, head_handle, 4, 16, pool)  # bad offset align
        with pytest.raises(ValueError):
            list_linearize(m, head_handle, 16, 16, pool)  # offset out of node

    def test_linearized_spatial_locality_reduces_misses(self, m):
        """Fewer cache misses when re-traversing a linearized list --
        the core claim of Section 2.2's packing discussion."""
        # Build two identical scattered lists (interleaved with junk
        # allocations so nodes land on distinct lines).
        def scattered_list(count):
            head_handle = m.malloc(8)
            slot = head_handle
            for value in range(count):
                node = m.malloc(16)
                m.malloc(112)  # spacer: push nodes onto separate lines
                m.store(node, value)
                m.store(slot, node)
                slot = node + 8
            m.store(slot, NULL)
            return head_handle

        plain = scattered_list(200)
        optimized = scattered_list(200)
        pool = m.create_pool(1 << 16)
        list_linearize(m, optimized, 8, 16, pool)

        def misses_for(head_handle):
            before = m.stats().load_misses
            read_list(m, head_handle)
            return m.stats().load_misses - before

        # Traverse each twice; the second pass shows the steady state.
        misses_for(plain)
        plain_misses = misses_for(plain)
        misses_for(optimized)
        optimized_misses = misses_for(optimized)
        assert optimized_misses < plain_misses / 2
