"""Unit tests for the tagged-memory storage layer."""

import pytest

from repro.core.errors import AlignmentError, MemoryAccessError
from repro.core.memory import TaggedMemory


@pytest.fixture
def mem():
    return TaggedMemory(4096)


class TestConstruction:
    def test_size_rounds_up_to_words(self):
        mem = TaggedMemory(13)
        assert mem.size == 16
        assert mem.word_count == 2

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ValueError):
            TaggedMemory(0)

    def test_tag_overhead_is_one_bit_per_word(self):
        mem = TaggedMemory(1 << 20)
        # 1 bit per 64 bits: the paper's 1.5% overhead.
        overhead = mem.tag_overhead_bits() / (mem.size * 8)
        assert overhead == pytest.approx(1 / 64)

    def test_initial_state_zeroed(self, mem):
        assert mem.read_word(0) == 0
        assert mem.read_fbit(0) == 0
        assert mem.forwarded_word_count() == 0


class TestWordAccess:
    def test_write_read_roundtrip(self, mem):
        mem.write_word(64, 0xDEADBEEF)
        assert mem.read_word(64) == 0xDEADBEEF

    def test_write_masks_to_64_bits(self, mem):
        mem.write_word(0, 1 << 70 | 5)
        assert mem.read_word(0) == 5

    def test_unaligned_word_access_rejected(self, mem):
        with pytest.raises(AlignmentError):
            mem.read_word(4)
        with pytest.raises(AlignmentError):
            mem.write_word(12, 1)

    def test_out_of_range_rejected(self, mem):
        with pytest.raises(MemoryAccessError):
            mem.read_word(mem.size)
        with pytest.raises(MemoryAccessError):
            mem.read_word(-8)

    def test_plain_write_preserves_fbit(self, mem):
        mem.write_word_tagged(8, 100, 1)
        mem.write_word(8, 200)
        assert mem.read_fbit(8) == 1
        assert mem.read_word(8) == 200


class TestTaggedWrite:
    def test_sets_word_and_bit_atomically(self, mem):
        mem.write_word_tagged(16, 0x5800, 1)
        assert mem.read_word(16) == 0x5800
        assert mem.read_fbit(16) == 1

    def test_clears_bit(self, mem):
        mem.write_word_tagged(16, 1, 1)
        mem.write_word_tagged(16, 2, 0)
        assert mem.read_fbit(16) == 0

    def test_truthy_fbit_normalised(self, mem):
        mem.write_word_tagged(16, 1, 7)
        assert mem.read_fbit(16) == 1

    def test_forwarded_word_count_tracks_bits(self, mem):
        mem.write_word_tagged(0, 8, 1)
        mem.write_word_tagged(8, 16, 1)
        assert mem.forwarded_word_count() == 2
        mem.write_word_tagged(0, 0, 0)
        assert mem.forwarded_word_count() == 1


class TestSubWordAccess:
    @pytest.mark.parametrize("size", [1, 2, 4, 8])
    def test_roundtrip_each_size(self, mem, size):
        value = (1 << (size * 8)) - 3
        mem.write_data(size, value, size)  # offset == size keeps alignment
        assert mem.read_data(size, size) == value & ((1 << (size * 8)) - 1)

    def test_little_endian_packing(self, mem):
        mem.write_word(0, 0x0807060504030201)
        assert mem.read_data(0, 1) == 0x01
        assert mem.read_data(1, 1) == 0x02
        assert mem.read_data(0, 2) == 0x0201
        assert mem.read_data(4, 4) == 0x08070605

    def test_subword_write_preserves_neighbours(self, mem):
        mem.write_word(0, 0xFFFFFFFFFFFFFFFF)
        mem.write_data(2, 0, 2)
        assert mem.read_word(0) == 0xFFFFFFFF0000FFFF

    def test_unaligned_subword_rejected(self, mem):
        with pytest.raises(AlignmentError):
            mem.read_data(1, 2)
        with pytest.raises(AlignmentError):
            mem.write_data(2, 0, 4)

    def test_unsupported_size_rejected(self, mem):
        with pytest.raises(ValueError):
            mem.read_data(0, 3)


class TestClearRegion:
    def test_clears_words_and_bits(self, mem):
        mem.write_word_tagged(32, 99, 1)
        mem.write_word_tagged(40, 98, 1)
        mem.clear_region(32, 16)
        assert mem.read_word(32) == 0
        assert mem.read_fbit(32) == 0
        assert mem.read_fbit(40) == 0

    def test_does_not_touch_outside(self, mem):
        mem.write_word_tagged(24, 7, 1)
        mem.write_word_tagged(48, 9, 1)
        mem.clear_region(32, 16)
        assert mem.read_word(24) == 7
        assert mem.read_fbit(48) == 1

    def test_requires_word_alignment(self, mem):
        with pytest.raises(AlignmentError):
            mem.clear_region(4, 8)
        with pytest.raises(AlignmentError):
            mem.clear_region(8, 12)

    def test_range_checked(self, mem):
        with pytest.raises(MemoryAccessError):
            mem.clear_region(mem.size - 8, 16)
