"""Unit tests for the simulated heap allocator."""

import pytest

from repro.core.errors import AllocationError, DoubleFreeError
from repro.core.memory import TaggedMemory
from repro.mem.allocator import SIZE_GRANULE, HeapAllocator


@pytest.fixture
def mem():
    return TaggedMemory(1 << 16)


@pytest.fixture
def heap(mem):
    return HeapAllocator(mem, base=0x1000, size=0x8000)


class TestAllocate:
    def test_returns_word_aligned_addresses(self, heap):
        for size in (1, 7, 8, 17, 100):
            assert heap.allocate(size) % 8 == 0

    def test_blocks_do_not_overlap(self, heap):
        a = heap.allocate(24)
        b = heap.allocate(24)
        assert abs(a - b) >= 24

    def test_custom_alignment(self, heap):
        addr = heap.allocate(64, align=64)
        assert addr % 64 == 0

    def test_rejects_bad_alignment(self, heap):
        with pytest.raises(ValueError):
            heap.allocate(8, align=4)
        with pytest.raises(ValueError):
            heap.allocate(8, align=24)

    def test_rejects_nonpositive_size(self, heap):
        with pytest.raises(ValueError):
            heap.allocate(0)

    def test_exhaustion_raises(self, mem):
        heap = HeapAllocator(mem, base=0x1000, size=64)
        heap.allocate(48)
        with pytest.raises(AllocationError):
            heap.allocate(48)

    def test_base_must_be_positive_aligned(self, mem):
        with pytest.raises(ValueError):
            HeapAllocator(mem, base=0, size=64)
        with pytest.raises(ValueError):
            HeapAllocator(mem, base=12, size=64)


class TestRecycling:
    def test_freed_block_reused_lifo(self, heap):
        a = heap.allocate(32)
        b = heap.allocate(32)
        heap.release(a)
        heap.release(b)
        assert heap.allocate(32) == b
        assert heap.allocate(32) == a
        assert heap.stats.recycled == 2

    def test_different_size_classes_do_not_mix(self, heap):
        a = heap.allocate(16)
        heap.release(a)
        b = heap.allocate(64)
        assert b != a

    def test_recycled_block_is_cleared(self, heap, mem):
        """A recycled block must come back with clear forwarding bits --
        it may have been the source of a relocation before being freed."""
        a = heap.allocate(16)
        mem.write_word_tagged(a, 0xBEEF, 1)
        heap.release(a)
        b = heap.allocate(16)
        assert b == a
        assert mem.read_fbit(b) == 0
        assert mem.read_word(b) == 0

    def test_fresh_block_is_zeroed(self, heap, mem):
        addr = heap.allocate(32)
        for offset in range(0, 32, 8):
            assert mem.read_word(addr + offset) == 0


class TestRelease:
    def test_double_free_raises(self, heap):
        addr = heap.allocate(16)
        heap.release(addr)
        with pytest.raises(DoubleFreeError):
            heap.release(addr)

    def test_free_of_unallocated_raises(self, heap):
        with pytest.raises(DoubleFreeError):
            heap.release(0x2000)

    def test_release_returns_rounded_size(self, heap):
        addr = heap.allocate(17)
        assert heap.release(addr) == 2 * SIZE_GRANULE


class TestBookkeeping:
    def test_owns(self, heap):
        addr = heap.allocate(16)
        assert heap.owns(addr)
        assert not heap.owns(addr + 8)
        heap.release(addr)
        assert not heap.owns(addr)

    def test_block_size(self, heap):
        addr = heap.allocate(30)
        assert heap.block_size(addr) == 32
        assert heap.block_size(addr + 8) is None

    def test_stats(self, heap):
        a = heap.allocate(16)
        heap.allocate(16)
        heap.release(a)
        stats = heap.stats
        assert stats.allocations == 2
        assert stats.frees == 1
        assert stats.live_bytes == 16
        assert stats.high_water >= 32

    def test_live_blocks(self, heap):
        a = heap.allocate(8)
        heap.allocate(8)
        heap.release(a)
        assert heap.live_blocks() == 1
