"""Unit tests for relocation pools."""

import pytest

from repro.core.errors import AllocationError
from repro.mem.pool import RelocationPool


class TestAllocation:
    def test_consecutive_allocations_are_adjacent(self):
        """The whole point of a pool: contiguity creates spatial locality."""
        pool = RelocationPool(0x1000, 1024)
        a = pool.allocate(32)
        b = pool.allocate(32)
        c = pool.allocate(32)
        assert b == a + 32
        assert c == b + 32

    def test_sizes_rounded_to_words(self):
        pool = RelocationPool(0x1000, 1024)
        a = pool.allocate(12)
        b = pool.allocate(8)
        assert b == a + 16

    def test_alignment(self):
        pool = RelocationPool(0x1000, 1024)
        pool.allocate(8)
        addr = pool.allocate(8, align=64)
        assert addr % 64 == 0

    def test_exhaustion(self):
        pool = RelocationPool(0x1000, 64)
        pool.allocate(64)
        with pytest.raises(AllocationError):
            pool.allocate(8)

    def test_bad_parameters(self):
        with pytest.raises(ValueError):
            RelocationPool(0, 64)
        with pytest.raises(ValueError):
            RelocationPool(0x1004, 64)
        with pytest.raises(ValueError):
            RelocationPool(0x1000, 0)
        pool = RelocationPool(0x1000, 64)
        with pytest.raises(ValueError):
            pool.allocate(0)
        with pytest.raises(ValueError):
            pool.allocate(8, align=4)


class TestAccounting:
    def test_used_bytes_is_space_overhead(self):
        pool = RelocationPool(0x1000, 1024)
        pool.allocate(40)
        pool.allocate(24)
        assert pool.used_bytes == 64
        assert pool.high_water == 64
        assert pool.remaining_bytes == 1024 - 64

    def test_contains(self):
        pool = RelocationPool(0x1000, 64)
        assert pool.contains(0x1000)
        assert pool.contains(0x103F)
        assert not pool.contains(0x1040)
        assert not pool.contains(0xFFF)

    def test_allocation_count(self):
        pool = RelocationPool(0x1000, 1024)
        for _ in range(5):
            pool.allocate(16)
        assert pool.allocations == 5
