"""Tests for forwarding-backed heap compaction."""

import pytest

from repro import Machine
from repro.mem.compact import HeapCompactor
from repro.runtime.rng import DeterministicRNG


@pytest.fixture
def m():
    return Machine()


def fragment_heap(m, blocks=40, seed=3):
    """Alloc/free churn leaving a Swiss-cheese heap; returns survivors."""
    rng = DeterministicRNG(seed)
    live = {}
    for index in range(blocks):
        address = m.malloc(16 + 16 * rng.randint(4))
        m.store(address, 1000 + index)
        live[index] = address
    # Free more than half the blocks, scattered.
    for index in list(live):
        if rng.chance(0.6):
            m.free(live.pop(index))
    return live


class TestCompaction:
    def test_values_preserved_through_old_and_new_addresses(self, m):
        live = fragment_heap(m)
        compactor = HeapCompactor(m)
        pool = m.create_pool(1 << 16)
        result = compactor.compact(pool)
        assert result.blocks_moved == len(live)
        for index, old in live.items():
            assert m.load(old) == 1000 + index  # forwarded

    def test_blocks_become_contiguous(self, m):
        live = fragment_heap(m)
        compactor = HeapCompactor(m)
        pool = m.create_pool(1 << 16)
        before = compactor.fragmentation()
        result = compactor.compact(pool)
        assert before > 0.2  # churn left real holes
        # New region is perfectly packed: bytes moved == span used.
        assert pool.used_bytes == result.bytes_moved

    def test_address_order_preserved(self, m):
        live = fragment_heap(m)
        compactor = HeapCompactor(m)
        ordered_old = sorted(live.values())
        pool = m.create_pool(1 << 16)
        compactor.compact(pool)
        from repro.core.pointer_ops import final_address
        finals = [final_address(m, address) for address in ordered_old]
        assert finals == sorted(finals)

    def test_root_update_pass(self, m):
        live = fragment_heap(m)
        # The application's pointer slots, one per surviving block.
        slots = []
        for address in live.values():
            slot = m.malloc(8)
            m.store(slot, address)
            slots.append(slot)
        compactor = HeapCompactor(m)
        pool = m.create_pool(1 << 16)
        result = compactor.compact(pool, roots=slots)
        assert result.roots_updated == len(slots)
        # The slots themselves are heap blocks, so compaction moved them
        # too; find their final homes, whose contents were fixed up.
        from repro.core.pointer_ops import final_address
        final_slots = [final_address(m, slot) for slot in slots]
        hops_before = m.stats().forwarding_hops
        for slot in final_slots:
            m.load(m.load(slot))
        assert m.stats().forwarding_hops == hops_before

    def test_null_and_already_final_roots_tolerated(self, m):
        slot_null = m.malloc(8)
        block = m.malloc(16)
        slot = m.malloc(8)
        m.store(slot, block)
        compactor = HeapCompactor(m)
        pool = m.create_pool(1 << 14)
        result = compactor.compact(pool, roots=[slot_null, slot, slot])
        # Second visit to the same slot finds it already final.
        assert result.roots_updated == 1

    def test_empty_heap(self, m):
        # Free nothing was allocated: compacting an empty registry works.
        machine = Machine()
        compactor = HeapCompactor(machine)
        pool = machine.create_pool(1 << 12)
        result = compactor.compact(pool)
        assert result.blocks_moved == 0
        assert compactor.fragmentation() == 0.0

    def test_compaction_improves_sweep_locality(self):
        """The payoff: a full sweep over live blocks misses far less.

        Small (16 B) blocks at 64 B lines: packed, four blocks share a
        line; fragmented, most blocks sit alone on theirs.
        """
        from repro import MachineConfig
        m = Machine(MachineConfig().with_line_size(64))
        rng = DeterministicRNG(9)
        live = {}
        spacers = []
        for index in range(240):
            address = m.malloc(16)
            spacers.append(m.malloc(48))
            m.store(address, 1000 + index)
            live[index] = address
        # The spacers die (and stay dead: the holes), plus some blocks.
        for spacer in spacers:
            m.free(spacer)
        for index in list(live):
            if rng.chance(0.3):
                m.free(live.pop(index))
        addresses = sorted(live.values())

        def sweep_misses(addrs):
            before = m.stats().l1_load_misses_full
            for address in addrs:
                m.load(address)
            return m.stats().l1_load_misses_full - before

        # Flush with a big scan over pool memory (never itself
        # relocated), then measure.
        flusher = m.create_pool(1 << 16, "flusher").allocate((1 << 16) - 64)
        for index in range(0, 1 << 16, 32):
            m.load(flusher + index)
        scattered = sweep_misses(addresses)

        compactor = HeapCompactor(m)
        pool = m.create_pool(1 << 18)
        compactor.compact(pool)
        from repro.core.pointer_ops import final_address
        new_addresses = [final_address(m, a) for a in addresses]
        for index in range(0, 1 << 16, 32):
            m.load(flusher + index)
        packed = sweep_misses(new_addresses)
        assert packed < scattered / 2
