"""Tests for the paging layer and the out-of-core experiment."""

import pytest

from repro import Machine
from repro.vm import (
    PagedMachine,
    Pager,
    PagerConfig,
    run_out_of_core_experiment,
)


class TestPager:
    def test_first_touch_faults(self):
        pager = Pager(PagerConfig(resident_pages=4))
        assert pager.access(0x1000) > 0
        assert pager.access(0x1800) == 0  # same page
        assert pager.stats.faults == 1
        assert pager.stats.accesses == 2

    def test_lru_eviction(self):
        pager = Pager(PagerConfig(resident_pages=2))
        pager.access(0x0000)
        pager.access(0x1000)
        pager.access(0x0000)      # refresh page 0
        pager.access(0x2000)      # evicts page 1 (LRU)
        assert pager.is_resident(0x0000)
        assert not pager.is_resident(0x1000)
        assert pager.stats.evictions == 1

    def test_resident_count_bounded(self):
        pager = Pager(PagerConfig(resident_pages=3))
        for page in range(10):
            pager.access(page * 4096)
        assert pager.resident_count() == 3

    def test_fault_rate(self):
        pager = Pager(PagerConfig(resident_pages=4))
        for _ in range(3):
            pager.access(0x1000)
        assert pager.stats.fault_rate == pytest.approx(1 / 3)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            Pager(PagerConfig(page_size=3000))
        with pytest.raises(ValueError):
            Pager(PagerConfig(resident_pages=0))


class TestPagedMachine:
    def test_fault_latency_charged_to_machine(self):
        machine = Machine()
        pager = Pager(PagerConfig(resident_pages=2, fault_cycles=10_000))
        paged = PagedMachine(machine, pager)
        addr = machine.malloc(8)
        before = machine.cycles
        paged.store(addr, 7)
        assert machine.cycles - before >= 10_000
        assert paged.load(addr) == 7

    def test_forwarded_access_charged_at_final_page(self):
        """A stale pointer's fault happens on the *new* page -- the
        pager, like the cache, sees final addresses."""
        from repro import relocate
        machine = Machine()
        pager = Pager(PagerConfig(resident_pages=4))
        paged = PagedMachine(machine, pager)
        obj = machine.malloc(16)
        pool = machine.create_pool(1 << 16)
        target = pool.allocate(16)
        machine.store(obj, 5)
        relocate(machine, obj, target, 2)
        paged.load(obj)
        assert pager.is_resident(target)


class TestOutOfCoreExperiment:
    @pytest.fixture(scope="class")
    def outcome(self):
        return run_out_of_core_experiment(
            nodes=120, span_pages=32, resident_pages=4, traversals=2
        )

    def test_checksums_match(self, outcome):
        scattered, linearized = outcome
        assert scattered.checksum == linearized.checksum

    def test_linearization_slashes_page_faults(self, outcome):
        scattered, linearized = outcome
        assert linearized.page_faults < scattered.page_faults / 10

    def test_linearization_slashes_cycles(self, outcome):
        scattered, linearized = outcome
        assert linearized.cycles < scattered.cycles / 10

    def test_scattered_faults_scale_with_traversals(self):
        one = run_out_of_core_experiment(
            nodes=80, span_pages=32, resident_pages=4, traversals=1
        )[0]
        three = run_out_of_core_experiment(
            nodes=80, span_pages=32, resident_pages=4, traversals=3
        )[0]
        assert three.page_faults > 2 * one.page_faults
