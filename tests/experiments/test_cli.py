"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestCLI:
    def test_single_artifact(self, capsys):
        assert main(["table1", "--scale", "0.1", "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "health" in out

    def test_extension_artifact(self, capsys):
        assert main(["out-of-core", "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "page faults" in out
        assert "speedup" in out

    def test_unknown_artifact_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["figure99"])
        assert "unknown artifact" in capsys.readouterr().err

    def test_multiple_artifacts_share_runner(self, capsys):
        assert main(["figure10", "table1", "--scale", "0.1", "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "Figure 10(a)" in out
        assert "Table 1" in out


class TestPointerCompareAblation:
    def test_safe_comparison_costs_more_per_op(self):
        from repro.experiments.ablations import pointer_compare_overhead

        result = pointer_compare_overhead(comparisons=500)
        raw = float(result.rows[0][1])
        safe = float(result.rows[1][1])
        # Per-comparison cost is higher -- the paper's point is that the
        # *program-level* overhead is small because the compiler only
        # rewrites comparisons that may involve relocated objects.
        assert safe > raw
        assert "+" in result.rows[1][2]
