"""Tests for the ``python -m repro`` command-line interface."""

import json

import pytest

from repro.__main__ import main


class TestCLI:
    def test_single_artifact(self, capsys):
        assert main(["table1", "--scale", "0.1", "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "health" in out

    def test_extension_artifact(self, capsys):
        assert main(["out-of-core", "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "page faults" in out
        assert "speedup" in out

    def test_unknown_artifact_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["figure99"])
        assert "unknown artifact" in capsys.readouterr().err

    def test_multiple_artifacts_share_runner(self, capsys):
        assert main(["figure10", "table1", "--scale", "0.1", "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "Figure 10(a)" in out
        assert "Table 1" in out


class TestTimelineCLI:
    @pytest.fixture(scope="class")
    def sampled_manifest_path(self, tmp_path_factory):
        """One figure10 manifest produced with sampling on, saved to disk."""
        from repro.experiments import ExperimentRunner, figure10

        runner = ExperimentRunner(scale=0.1, timeline_interval=1000)
        result = figure10.run(runner, scale=0.1)
        manifest = figure10.manifest(result, runner)
        path = tmp_path_factory.mktemp("timeline") / "figure10.json"
        path.write_text(json.dumps(manifest))
        return path

    def test_flags_produce_timeline_section(self, capsys):
        assert main([
            "figure10", "--scale", "0.1", "--quiet", "--format", "json",
            "--timeline", "--sample-interval", "1000",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        cells = payload["figure10"]["timeline"]["cells"]
        assert cells, "sampled run must emit timeline cells"
        for cell in cells.values():
            assert cell["sample_interval"] == 1000
            assert cell["window_count"] >= 1

    def test_timeline_section_absent_by_default(self, capsys):
        assert main([
            "figure10", "--scale", "0.1", "--quiet", "--format", "json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "timeline" not in payload["figure10"]

    def test_diff_self_is_clean(self, capsys, sampled_manifest_path):
        path = str(sampled_manifest_path)
        assert main(["timeline", "diff", path, path]) == 0
        assert "no per-window regressions" in capsys.readouterr().out

    def test_diff_flags_regression_nonzero(self, capsys, sampled_manifest_path, tmp_path):
        manifest = json.loads(sampled_manifest_path.read_text())
        for cell in manifest["timeline"]["cells"].values():
            cell["windows"]["miss_rate"] = [
                value * 2 + 0.01 for value in cell["windows"]["miss_rate"]
            ]
        worse = tmp_path / "worse.json"
        worse.write_text(json.dumps(manifest))
        assert main(["timeline", "diff", str(sampled_manifest_path), str(worse)]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_export_chrome_trace(self, sampled_manifest_path, tmp_path):
        out = tmp_path / "trace.json"
        assert main([
            "timeline", "export", str(sampled_manifest_path), "--out", str(out),
        ]) == 0
        trace = json.loads(out.read_text())
        assert trace["traceEvents"], "trace must not be empty"
        phases = {event["ph"] for event in trace["traceEvents"]}
        assert "C" in phases and "M" in phases

    def test_export_csv_cell(self, capsys, sampled_manifest_path):
        manifest = json.loads(sampled_manifest_path.read_text())
        cell_id = next(iter(manifest["timeline"]["cells"]))
        assert main([
            "timeline", "export", str(sampled_manifest_path), "--csv", cell_id,
        ]) == 0
        out = capsys.readouterr().out
        assert out.startswith("window,refs,cycles")

    def test_export_unknown_cell_rejected(self, capsys, sampled_manifest_path):
        with pytest.raises(SystemExit):
            main([
                "timeline", "export", str(sampled_manifest_path),
                "--csv", "nope/0B/X",
            ])
        assert "no timeline cell" in capsys.readouterr().err

    def test_bad_sample_interval_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["figure10", "--timeline", "--sample-interval", "0"])
        assert "--sample-interval" in capsys.readouterr().err


class TestPointerCompareAblation:
    def test_safe_comparison_costs_more_per_op(self):
        from repro.experiments.ablations import pointer_compare_overhead

        result = pointer_compare_overhead(comparisons=500)
        raw = float(result.rows[0][1])
        safe = float(result.rows[1][1])
        # Per-comparison cost is higher -- the paper's point is that the
        # *program-level* overhead is small because the compiler only
        # rewrites comparisons that may involve relocated objects.
        assert safe > raw
        assert "+" in result.rows[1][2]


class TestCLIErrorPaths:
    """Every user-facing failure: one-line message, nonzero exit, no traceback."""

    def test_unknown_artifact_mentions_subcommands(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["blorp"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "unknown artifact" in err
        assert "serve" in err and "timeline" in err

    def test_scale_zero_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["table1", "--scale", "0"])
        assert excinfo.value.code == 2
        assert "--scale must be > 0" in capsys.readouterr().err

    def test_jobs_zero_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["table1", "--jobs", "0"])
        assert excinfo.value.code == 2
        assert "--jobs must be >= 1" in capsys.readouterr().err

    def test_sample_interval_requires_timeline(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["table1", "--sample-interval", "500"])
        assert excinfo.value.code == 2
        assert "--timeline" in capsys.readouterr().err

    def test_events_capacity_requires_events(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["table1", "--events-capacity", "16"])
        assert excinfo.value.code == 2
        assert "--events" in capsys.readouterr().err

    def test_timeline_diff_missing_file_is_one_line(self, capsys):
        assert main(["timeline", "diff", "/no/such/a.json", "/no/such/b.json"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error: cannot read manifest")
        assert "Traceback" not in err

    def test_timeline_export_corrupt_json_is_one_line(self, capsys, tmp_path):
        bad = tmp_path / "corrupt.json"
        bad.write_text("{not json")
        assert main(["timeline", "export", str(bad)]) == 2
        err = capsys.readouterr().err
        assert "not valid JSON" in err
        assert "Traceback" not in err

    def test_timeline_non_object_manifest_rejected(self, capsys, tmp_path):
        bad = tmp_path / "list.json"
        bad.write_text("[1, 2, 3]")
        assert main(["timeline", "export", str(bad)]) == 2
        assert "not a manifest" in capsys.readouterr().err

    def test_serve_bad_flags_exit_nonzero(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["serve", "--workers", "-1"])
        assert excinfo.value.code == 2
        assert "--workers must be >= 0" in capsys.readouterr().err

    def test_serve_bench_bad_scale_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["serve.bench", "--scale", "0"])
        assert excinfo.value.code == 2
        assert "--scale must be > 0" in capsys.readouterr().err

    def test_unknown_mechanism_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["misspath", "--mechanism", "teleporter"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "unknown --mechanism" in err
        assert "victim_cache" in err

    def test_irrelevant_knob_rejected(self, capsys):
        # --vc-entries without a mechanism that has a victim cache.
        with pytest.raises(SystemExit) as excinfo:
            main(["misspath", "--vc-entries", "16"])
        assert excinfo.value.code == 2
        assert "--vc-entries only makes sense" in capsys.readouterr().err

    def test_knob_mechanism_mismatch_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main([
                "misspath", "--mechanism", "victim_cache",
                "--sb-depth", "8",
            ])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "--sb-depth only makes sense" in err
        assert "stream_buffers" in err

    def test_knob_below_one_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main([
                "misspath", "--mechanism", "stream_buffers",
                "--sb-depth", "0",
            ])
        assert excinfo.value.code == 2
        assert "--sb-depth must be >= 1" in capsys.readouterr().err

    def test_unknown_adapt_policy_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["adapt", "--adapt-policy", "oracle"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "unknown --adapt-policy" in err
        assert "hysteresis" in err

    def test_adapt_policy_requires_adapt_artifact(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["table1", "--adapt-policy", "hysteresis"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "--adapt-policy only makes sense" in err

    def test_heatmap_region_power_of_two_enforced(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["adapt", "--heatmap-region", "3000"])
        assert excinfo.value.code == 2
        assert "power of two" in capsys.readouterr().err

    def test_heatmap_region_requires_timeline_or_adapt(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["table1", "--scale", "0.1", "--heatmap-region", "4096"])
        assert excinfo.value.code == 2
        assert "--heatmap-region only makes sense" in capsys.readouterr().err
