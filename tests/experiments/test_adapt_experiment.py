"""Structural tests for the adaptive-relocation matrix (reduced scale).

One mst_phase slice at a decision-firing scale: the static arms anchor
the normalization, the adaptive arm fires at least one audited
decision, checksums agree across arms, and the manifest validates with
the ``adapt.*`` counter subtree.  The full-scale win numbers live in
the benchmark suite (``benchmarks/bench_adapt.py``).
"""

import pytest

from repro.adapt import experiment as adapt_experiment
from repro.adapt.experiment import STATIC_NEVER, STATIC_ONCE
from repro.experiments import ExperimentRunner
from repro.obs import validate_manifest

#: Small enough for CI, large enough that hysteresis fires one decision.
SCALE = 0.4
APPS = ("mst_phase",)
POLICIES = ("hysteresis",)


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(scale=SCALE)


@pytest.fixture(scope="module")
def result(runner):
    return adapt_experiment.run(runner, apps=APPS, policies=POLICIES)


class TestMatrix:
    def test_arms_complete(self, result):
        arms = {cell.arm for cell in result.cells}
        assert arms == {STATIC_NEVER, STATIC_ONCE, "hysteresis"}

    def test_static_once_is_the_baseline(self, result):
        assert result.cell("mst_phase", STATIC_ONCE).normalized_cycles == 1.0
        assert result.cell("mst_phase", STATIC_NEVER).normalized_cycles > 1.0

    def test_checksums_equal_across_arms(self, result):
        assert result.checksums_equal

    def test_adaptive_arm_fires_audited_decisions(self, result):
        cell = result.cell("mst_phase", "hysteresis")
        assert cell.adaptive
        assert cell.decisions >= 1
        assert cell.cost_cycles > 0
        payload = cell.payload
        assert len(payload["decisions"]) == cell.decisions
        assert len(payload["ledger"]) == cell.decisions

    def test_static_arms_carry_no_engine(self, result):
        for arm in (STATIC_NEVER, STATIC_ONCE):
            cell = result.cell("mst_phase", arm)
            assert not cell.adaptive
            assert cell.decisions == 0
            assert cell.payload == {}

    def test_missing_cell_raises(self, result):
        with pytest.raises(KeyError):
            result.cell("mst_phase", "oracle")

    def test_render(self, result):
        text = result.render()
        assert "Adaptive relocation" in text
        assert "checksums equal across arms: True" in text


class TestManifest:
    def test_manifest_validates_with_adapt_counters(self, result, runner):
        manifest = adapt_experiment.manifest(result, runner)
        validate_manifest(manifest)
        adapt_metrics = manifest["metrics"]["adapt"]
        hysteresis = result.cell("mst_phase", "hysteresis")
        assert adapt_metrics["decisions"] == hysteresis.decisions
        assert "windows" in adapt_metrics
        assert "skipped_relocation" in adapt_metrics
        summary = manifest["summary"]
        assert "normalized.mst_phase.hysteresis" in summary
        assert summary["checksums_equal"] == 1.0
        ids = {cell["id"] for cell in manifest["cells"]}
        assert "mst_phase/128B/hysteresis" in ids
        assert "mst_phase/128B/static-once" in ids


class TestSpecs:
    def test_specs_cover_policy_matrix(self):
        specs = adapt_experiment.specs(SCALE, policies=("hysteresis",))
        # Per app: N, L, and one adaptive L spec.
        from repro.apps import PHASE_APPS

        assert len(specs) == 3 * len(PHASE_APPS)
        adaptive = [spec for spec in specs if spec.adapt is not None]
        assert len(adaptive) == len(PHASE_APPS)
        assert all(spec.adapt.policy == "hysteresis" for spec in adaptive)

    def test_runner_artifact_hook(self):
        from repro.experiments.runner import specs_for_artifacts

        specs = specs_for_artifacts(["adapt"], SCALE, adapt_policy="threshold")
        assert any(
            spec.adapt is not None and spec.adapt.policy == "threshold"
            for spec in specs
        )

    def test_policy_matrix_narrows(self):
        from repro.adapt.config import POLICIES as ALL

        assert adapt_experiment.policy_matrix(None) == ALL
        assert adapt_experiment.policy_matrix("threshold") == ("threshold",)
