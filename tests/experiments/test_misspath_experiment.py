"""Structural tests for the miss-path mechanism matrix (reduced scale).

One health-only slice of the matrix: the driver runs, the normalized
columns anchor to the ``none`` rows, the victim cache absorbs misses
on the conflict-heavy L cells, and the manifest validates against the
/v2 schema.  Full-scale absorption numbers live in the benchmark suite.
"""

import pytest

from repro.apps.base import Variant
from repro.cache.misspath import MECHANISMS
from repro.experiments import ExperimentRunner, line_sizes_for, misspath
from repro.obs import validate_manifest

SCALE = 0.05
APPS = ("health",)
MATRIX = ("none", "victim_cache")


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(scale=SCALE)


@pytest.fixture(scope="module")
def result(runner):
    return misspath.run(runner, apps=APPS, mechanisms=MATRIX)


class TestMatrix:
    def test_cell_matrix_complete(self, result):
        per_mechanism = len(line_sizes_for("health")) * 2  # N and L
        assert len(result.cells) == len(MATRIX) * per_mechanism
        for mechanism in MATRIX:
            for line_size in line_sizes_for("health"):
                for variant in (Variant.N, Variant.L):
                    cell = result.cell(mechanism, "health", line_size, variant)
                    assert cell.mechanism == mechanism

    def test_baseline_rows_normalize_to_one(self, result):
        for cell in result.cells:
            if cell.mechanism == "none":
                assert cell.normalized_cycles == 1.0
                assert cell.normalized_fills == 1.0
                assert cell.absorbed == 0

    def test_victim_cache_absorbs_misses(self, result):
        absorbed = sum(
            cell.absorbed
            for cell in result.cells
            if cell.mechanism == "victim_cache"
        )
        assert absorbed > 0
        for cell in result.cells:
            assert 0.0 <= cell.absorption <= 1.0
            assert cell.absorbed <= cell.full_misses or cell.full_misses == 0

    def test_absorption_never_slows_the_run(self, result):
        # A stage hit replaces an L2 round trip: normalized time can
        # only move down (or stay flat when nothing was absorbed).
        for cell in result.cells:
            if cell.mechanism == "victim_cache":
                assert cell.normalized_cycles <= 1.0 + 1e-9
                assert cell.normalized_fills <= 1.0 + 1e-9

    def test_summary_covers_matrix(self, result):
        for mechanism in MATRIX:
            for case in ("N", "L"):
                assert (mechanism, case) in result.mean_absorption
                assert (mechanism, case) in result.mean_normalized_cycles

    def test_missing_cell_raises(self, result):
        with pytest.raises(KeyError):
            result.cell("miss_cache", "health", 32, Variant.N)

    def test_render(self, result):
        text = result.render()
        assert "Miss-path mechanisms" in text
        assert "Headline: conflict-miss absorption" in text
        assert "victim_cache" in text


class TestManifest:
    def test_manifest_validates_and_names_cells(self, runner, result):
        manifest = misspath.manifest(result, runner)
        validate_manifest(manifest)  # should not raise
        by_id = {cell["id"]: cell for cell in manifest["cells"]}
        assert "health/32B/L/victim_cache" in by_id
        cell = by_id["health/32B/L/victim_cache"]
        assert cell["labels"]["mechanism"] == "victim_cache"
        assert set(cell["values"]) >= {
            "absorption", "normalized_cycles", "full_misses"
        }
        summary = manifest["summary"]
        assert "absorption.victim_cache.L" in summary
        assert "normalized_cycles.victim_cache.L" in summary


class TestMechanismMatrix:
    def test_defaults_to_full_zoo(self):
        assert misspath.mechanism_matrix() == MECHANISMS

    def test_specific_request_narrows_to_pair(self):
        assert misspath.mechanism_matrix("stream_buffers") == (
            "none",
            "stream_buffers",
        )
