"""Structural tests for the experiment drivers (reduced scale).

These check that every table/figure driver runs, produces the right
matrix of cells, renders, and that the shared runner memoises.  The
paper-shape assertions at full scale live in the benchmark suite.
"""

import pytest

from repro.apps import FIGURE5_APPS
from repro.apps.base import Variant
from repro.experiments import (
    ExperimentRunner,
    line_sizes_for,
)
from repro.experiments import ablations, figure5, figure6, figure7, figure10, table1

SCALE = 0.15


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(scale=SCALE)


@pytest.fixture(scope="module")
def fig5(runner):
    return figure5.run(runner, scale=SCALE)


@pytest.fixture(scope="module")
def fig6(runner):
    return figure6.run(runner, scale=SCALE)


class TestRunner:
    def test_memoisation(self, runner):
        first = runner.run("health", Variant.N, 32)
        second = runner.run("health", Variant.N, 32)
        assert first is second

    def test_checksum_match_helper(self, runner):
        assert runner.checksum_match("health", [Variant.N, Variant.L], 32)


class TestTable1:
    def test_every_app_present(self, runner):
        result = table1.run(runner, scale=SCALE)
        assert sorted(row.app for row in result.rows) == sorted(
            list(FIGURE5_APPS) + ["smv"]
        )

    def test_optimized_runs_relocate(self, runner):
        result = table1.run(runner, scale=SCALE)
        for row in result.rows:
            assert row.words_relocated > 0, row.app
            assert row.space_overhead_bytes > 0, row.app

    def test_render(self, runner):
        text = table1.run(runner, scale=SCALE).render()
        assert "Table 1" in text
        assert "health" in text


class TestFigure5:
    def test_cell_matrix_complete(self, fig5):
        for app in FIGURE5_APPS:
            for line in line_sizes_for(app):
                for variant in (Variant.N, Variant.L):
                    cell = fig5.cell(app, line, variant)
                    assert cell.cycles > 0
                    assert cell.slots.total > 0

    def test_baseline_normalisation(self, fig5):
        for app in FIGURE5_APPS:
            first_line = line_sizes_for(app)[0]
            assert fig5.cell(app, first_line, Variant.N).normalized_total == 1.0

    def test_speedups_recorded(self, fig5):
        for app in FIGURE5_APPS:
            for line in line_sizes_for(app):
                assert (app, line) in fig5.speedups

    def test_render(self, fig5):
        text = fig5.render()
        assert "Figure 5" in text
        assert "LoadStall" in text

    def test_render_bars(self, fig5):
        text = fig5.render_bars(width=30)
        assert "busy='#'" in text
        # One bar per (app, line, variant) cell.
        assert text.count("|") == len(fig5.cells)

    def test_missing_cell_raises(self, fig5):
        with pytest.raises(KeyError):
            fig5.cell("health", 999, Variant.N)


class TestFigure6:
    def test_miss_cells_complete(self, fig6):
        for app in FIGURE5_APPS:
            for line in line_sizes_for(app):
                for variant in (Variant.N, Variant.L):
                    cell = fig6.miss_cell(app, line, variant)
                    assert cell.total == cell.full + cell.partial

    def test_bandwidth_cells_positive(self, fig6):
        for app in FIGURE5_APPS:
            cell = fig6.bandwidth_cell(app, line_sizes_for(app)[0], Variant.N)
            assert cell.l1_l2_bytes > 0
            assert cell.l2_mem_bytes > 0

    def test_miss_reduction_helper(self, fig6):
        value = fig6.miss_reduction("health", 32)
        assert -3.0 < value < 1.0

    def test_render(self, fig6):
        text = fig6.render()
        assert "Figure 6(a)" in text
        assert "Figure 6(b)" in text


class TestFigure7:
    def test_four_schemes_per_app(self, runner):
        result = figure7.run(runner, scale=SCALE)
        for app in FIGURE5_APPS:
            for variant in figure7.SCHEMES:
                assert result.cell(app, variant).cycles > 0

    def test_prefetch_schemes_prefetch(self, runner):
        result = figure7.run(runner, scale=SCALE)
        for app in FIGURE5_APPS:
            assert result.cell(app, Variant.NP).prefetch_instructions > 0
            assert result.cell(app, Variant.LP).prefetch_instructions > 0
            assert result.cell(app, Variant.N).prefetch_instructions == 0

    def test_render(self, runner):
        assert "Figure 7" in figure7.run(runner, scale=SCALE).render()


class TestFigure10:
    def test_three_schemes(self, runner):
        result = figure10.run(runner, scale=SCALE)
        assert [row.variant for row in result.rows] == [
            Variant.N, Variant.L, Variant.PERF,
        ]

    def test_forwarding_only_in_l(self, runner):
        result = figure10.run(runner, scale=SCALE)
        assert result.row(Variant.L).loads_forwarded_fraction > 0
        assert result.row(Variant.N).loads_forwarded_fraction == 0
        assert result.row(Variant.PERF).loads_forwarded_fraction == 0

    def test_render_panels(self, runner):
        text = figure10.run(runner, scale=SCALE).render()
        for panel in ("10(a)", "10(b)", "10(c)", "10(d)"):
            assert panel in text


class TestAblations:
    def test_hop_limit_sweep(self):
        result = ablations.hop_limit_sweep(scale=0.15, limits=(1, 16))
        assert len(result.rows) == 2

    def test_speculation_ablation(self):
        result = ablations.speculation_ablation(scale=0.15)
        on_rows = [row for row in result.rows if row[1] == "on"]
        off_rows = [row for row in result.rows if row[1] == "off"]
        assert all(row[3] > 0 for row in on_rows)   # loads checked
        assert all(row[3] == 0 for row in off_rows)

    def test_threshold_sweep(self):
        result = ablations.linearize_threshold_sweep(scale=0.15, thresholds=(10, 100))
        assert len(result.rows) == 2
        # A lower threshold must linearize at least as often.
        assert result.rows[0][2] >= result.rows[1][2]

    def test_prefetch_block_sweep(self):
        result = ablations.prefetch_block_sweep(scale=0.15, blocks=(1, 4))
        assert len(result.rows) == 2
        assert all(row[2] > 0 for row in result.rows)
