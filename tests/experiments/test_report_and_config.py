"""Unit tests for reporting helpers, stats containers, and configs."""

from repro.core.stats import MachineStats, ReferenceLatencyStats
from repro.cpu.timing import SlotBreakdown
from repro.experiments.config import (
    BH_LINE_SIZES,
    DEFAULT_LINE_SIZES,
    config_without_speculation,
    experiment_config,
    line_sizes_for,
)
from repro.experiments.report import (
    format_cell,
    normalize,
    percent,
    render_stacked_bar,
    render_table,
    speedup,
)


class TestReportHelpers:
    def test_format_cell_floats_and_ints(self):
        assert format_cell(1.23456) == "1.23"
        assert format_cell(42) == "42"
        assert format_cell("x") == "x"

    def test_render_table_alignment(self):
        text = render_table(["A", "Long header"], [(1, 2), (333, 4)], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "Long header" in lines[1]
        # All data rows are equally wide.
        assert len(lines[3]) == len(lines[4])

    def test_render_table_empty_rows(self):
        text = render_table(["A"], [])
        assert "A" in text

    def test_render_stacked_bar_width(self):
        bar = render_stacked_bar([("a", 1.0), ("b", 1.0)], total_width=10)
        assert len(bar) == 10
        assert bar.count("#") == 5

    def test_render_stacked_bar_scale_max(self):
        bar = render_stacked_bar([("a", 1.0)], total_width=10, scale_max=2.0)
        assert len(bar) == 5

    def test_render_stacked_bar_zero(self):
        assert render_stacked_bar([("a", 0.0)]) == ""

    def test_normalize_and_speedup(self):
        assert normalize(50.0, 100.0) == 0.5
        assert normalize(1.0, 0.0) == 0.0
        assert speedup(200.0, 100.0) == 2.0
        assert speedup(1.0, 0.0) == 0.0

    def test_percent(self):
        assert percent(0.512) == "+51.2%"
        assert percent(-0.133) == "-13.3%"


class TestStatsContainers:
    def test_reference_latency_averages(self):
        stats = ReferenceLatencyStats(
            count=10, forwarded=2, ordinary_cycles=50.0, forwarding_cycles=20.0
        )
        assert stats.avg_ordinary == 5.0
        assert stats.avg_forwarding == 2.0
        assert stats.avg_total == 7.0
        assert stats.forwarded_fraction == 0.2

    def test_reference_latency_empty(self):
        stats = ReferenceLatencyStats()
        assert stats.avg_total == 0.0
        assert stats.forwarded_fraction == 0.0

    def test_machine_stats_derived_metrics(self):
        stats = MachineStats(
            cycles=100.0,
            instructions=250,
            slots=SlotBreakdown(250.0, 100.0, 25.0, 25.0),
            l1_load_misses_full=3,
            l1_load_misses_partial=2,
            l1_l2_bytes=64,
            l2_mem_bytes=128,
        )
        assert stats.load_misses == 5
        assert stats.total_bandwidth_bytes == 192
        assert stats.ipc == 2.5

    def test_speedup_over(self):
        fast = MachineStats(cycles=100.0)
        slow = MachineStats(cycles=250.0)
        assert fast.speedup_over(slow) == 2.5

    def test_to_dict_roundtrips_key_fields(self):
        stats = MachineStats(cycles=7.0, instructions=3)
        data = stats.to_dict()
        assert data["cycles"] == 7.0
        assert data["instructions"] == 3
        assert "load_misses_full" in data
        assert "pool_bytes" in data


class TestExperimentConfig:
    def test_line_size_sets(self):
        assert line_sizes_for("bh") == BH_LINE_SIZES == (64, 128, 256)
        assert line_sizes_for("health") == DEFAULT_LINE_SIZES == (32, 64, 128)

    def test_experiment_config_sets_line_size(self):
        config = experiment_config(64)
        assert config.hierarchy.line_size == 64
        # L2 line stays fixed at its default.
        assert config.hierarchy.l2_line_size == 128

    def test_configs_are_independent(self):
        a = experiment_config(32)
        b = experiment_config(128)
        assert a.hierarchy.line_size == 32
        assert b.hierarchy.line_size == 128

    def test_speculation_disabled_config(self):
        config = config_without_speculation()
        assert config.speculation_window == 0
        # Everything else matches the canonical config.
        assert config.hierarchy.line_size == experiment_config().hierarchy.line_size
