"""Golden-output tests: exact rendered text for report helpers and Figure 7.

These pin the rendering layer byte-for-byte over fixed inputs, so any
formatting drift (alignment, rounding, column order) shows up as a
readable diff rather than a silent change in every artifact's output.
The inputs are synthetic: simulator-derived numbers live in the
structural tests, keeping these goldens stable across perf work.
"""

import textwrap

from repro.apps.base import Variant
from repro.experiments.figure7 import Figure7Cell, Figure7Result
from repro.experiments.report import render_stacked_bar, render_table


GOLDEN_TABLE = textwrap.dedent(
    """\
    Costs
    Item       Qty  Unit
    --------------------
       widget    3  0.25
    doohickey   12  1.50"""
)


GOLDEN_FIGURE7 = textwrap.dedent(
    """\
    Figure 7: prefetching x locality at 32B lines
    App     Scheme  Norm.time  Speedup  PF instr  PF fills
    ------------------------------------------------------
    health       N       1.00    1.00x         0         0
    health       L       0.80    1.25x         0         0
    health      NP       0.90    1.11x       120        80
    health      LP       0.64    1.56x       120       110"""
)


def test_render_table_golden():
    table = render_table(
        ["Item", "Qty", "Unit"],
        [("widget", 3, 0.25), ("doohickey", 12, 1.5)],
        title="Costs",
    )
    assert table == GOLDEN_TABLE


def test_render_stacked_bar_golden():
    bar = render_stacked_bar(
        [("busy", 2.0), ("load", 1.0), ("store", 1.0)], total_width=8
    )
    assert bar == "####==++"


def test_figure7_render_golden():
    result = Figure7Result(
        cells=[
            Figure7Cell("health", Variant.N, 1000.0, 1.0, 0, 0),
            Figure7Cell("health", Variant.L, 800.0, 0.8, 0, 0),
            Figure7Cell("health", Variant.NP, 900.0, 0.9, 120, 80),
            Figure7Cell("health", Variant.LP, 640.0, 0.64, 120, 110),
        ]
    )
    assert result.render() == GOLDEN_FIGURE7
