"""Manifest schema validation, including the committed JSON schema.

The acceptance bar for structured output: every experiment entry point
emits a manifest that validates against ``manifest_schema.json``.
"""

import pytest

from repro.experiments import ExperimentRunner
from repro.experiments import ablations, figure5, figure6, figure7, figure10, table1
from repro.obs import Registry
from repro.obs.manifest import (
    MANIFEST_SCHEMA,
    MANIFEST_SCHEMA_V1,
    MANIFEST_SCHEMA_V2,
    MANIFEST_VERSION,
    ManifestError,
    _validate_structurally,
    build_manifest,
    cell,
    load_schema,
    upgrade_manifest,
    validate_manifest,
)

SCALE = 0.05


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(scale=SCALE)


def _minimal_manifest(**overrides):
    manifest = build_manifest(
        "test",
        run={"scale": SCALE},
        seeds={"health": 1},
        metrics={"time": {"cycles": 10.0}},
        cells=[cell("a/b", labels={"app": "a"}, values={"cycles": 10.0})],
        trace_hashes={"k": "abc123"},
        validate=False,
    )
    manifest.update(overrides)
    return manifest


class TestSchema:
    def test_schema_loads_and_pins_version(self):
        schema = load_schema()
        assert schema["properties"]["manifest_version"]["const"] == MANIFEST_VERSION
        assert schema["properties"]["schema"]["const"] == MANIFEST_SCHEMA

    def test_build_manifest_validates_by_default(self):
        manifest = _minimal_manifest()
        validate_manifest(manifest)  # should not raise

    def test_rejects_unknown_version(self):
        with pytest.raises(ManifestError):
            _validate_structurally(
                _minimal_manifest(manifest_version=4, schema="repro.obs.manifest/v4")
            )
        with pytest.raises(ManifestError):
            validate_manifest(
                _minimal_manifest(manifest_version=4, schema="repro.obs.manifest/v4")
            )

    def test_rejects_version_schema_mismatch(self):
        with pytest.raises(ManifestError):
            _validate_structurally(_minimal_manifest(manifest_version=1))

    def test_rejects_missing_required_key(self):
        bad = _minimal_manifest()
        del bad["metrics"]
        with pytest.raises(ManifestError):
            _validate_structurally(bad)

    def test_rejects_non_hex_trace_hash(self):
        with pytest.raises(ManifestError):
            _validate_structurally(_minimal_manifest(trace_hashes={"k": "XYZ"}))

    def test_rejects_non_scalar_run_value(self):
        with pytest.raises(ManifestError):
            _validate_structurally(_minimal_manifest(run={"nested": {"a": 1}}))

    def test_rejects_malformed_metric_tree(self):
        with pytest.raises(ManifestError):
            _validate_structurally(_minimal_manifest(metrics={"time": "fast"}))

    def test_rejects_bad_cell_keys(self):
        bad = _minimal_manifest()
        bad["cells"] = [{"id": "x", "unexpected": 1}]
        with pytest.raises(ManifestError):
            _validate_structurally(bad)

    def test_rejects_bad_span_record(self):
        bad = _minimal_manifest()
        bad["spans"] = [{"name": "s", "wall_seconds": -1.0, "depth": 0, "metrics": {}}]
        with pytest.raises(ManifestError):
            _validate_structurally(bad)

    def test_jsonschema_and_fallback_agree_on_valid(self):
        manifest = _minimal_manifest()
        validate_manifest(manifest)
        _validate_structurally(manifest)


def _v1_manifest():
    """A hand-built v1 manifest, as written by the previous release."""
    manifest = _minimal_manifest(
        manifest_version=1, schema=MANIFEST_SCHEMA_V1
    )
    manifest.pop("timeline", None)
    manifest.pop("events", None)
    return manifest


class TestSchemaMigration:
    """Version 1 manifests stay valid after the /v2 bump."""

    def test_v1_still_validates(self):
        manifest = _v1_manifest()
        validate_manifest(manifest)
        _validate_structurally(manifest)

    def test_v1_rejects_v2_sections(self):
        bad = _v1_manifest()
        bad["timeline"] = {"cells": {}}
        with pytest.raises(ManifestError):
            _validate_structurally(bad)

    def test_v1_rejects_span_error_field(self):
        bad = _v1_manifest()
        bad["spans"] = [
            {"name": "s", "wall_seconds": 0.1, "depth": 0, "metrics": {},
             "error": "ValueError: boom"}
        ]
        with pytest.raises(ManifestError):
            _validate_structurally(bad)

    def test_upgrade_v1_restamps_to_current(self):
        upgraded = upgrade_manifest(_v1_manifest())
        assert upgraded["manifest_version"] == MANIFEST_VERSION
        assert upgraded["schema"] == MANIFEST_SCHEMA
        validate_manifest(upgraded)

    def test_upgrade_current_is_validated_copy(self):
        manifest = _minimal_manifest()
        upgraded = upgrade_manifest(manifest)
        assert upgraded == manifest
        assert upgraded is not manifest

    def test_upgrade_rejects_unknown_version(self):
        with pytest.raises(ManifestError):
            upgrade_manifest(_minimal_manifest(manifest_version=99))

    def test_v2_schema_file_pins_v2(self):
        schema = load_schema(2)
        assert schema["properties"]["manifest_version"]["const"] == 2
        v1 = load_schema(1)
        assert v1["properties"]["manifest_version"]["const"] == 1

    def test_load_schema_unknown_version(self):
        with pytest.raises(ManifestError):
            load_schema(99)

    def test_v2_span_error_accepted(self):
        manifest = _minimal_manifest()
        manifest["spans"] = [
            {"name": "s", "wall_seconds": 0.1, "depth": 0, "metrics": {},
             "error": "ValueError: boom"}
        ]
        validate_manifest(manifest)
        _validate_structurally(manifest)

    def test_v2_rejects_malformed_timeline_section(self):
        bad = _minimal_manifest()
        bad["timeline"] = {"cells": {"a/32B/L": {"sample_interval": 10}}}
        with pytest.raises(ManifestError):
            _validate_structurally(bad)

    def test_v2_rejects_ragged_window_series(self):
        windows = {
            name: [1.0]
            for name in (
                "refs", "cycles", "l1_misses", "miss_rate",
                "stall_slots", "chases", "mshr_occupancy",
            )
        }
        windows["refs"] = [1.0, 2.0]
        bad = _minimal_manifest()
        bad["timeline"] = {
            "cells": {
                "a/32B/L": {
                    "sample_interval": 10,
                    "window_count": 1,
                    "windows": windows,
                    "heatmap": {"region_bytes": 65536, "regions": {}},
                }
            }
        }
        with pytest.raises(ManifestError):
            _validate_structurally(bad)


def _v2_manifest():
    """A hand-built v2 manifest, as written by PRs 4-8."""
    return _minimal_manifest(manifest_version=2, schema=MANIFEST_SCHEMA_V2)


def _traced_span(**overrides):
    span = {
        "name": "serve.request",
        "wall_seconds": 0.5,
        "depth": 0,
        "metrics": {},
        "trace_id": "a1b2c3d4e5f60718",
        "span_id": "0abc1234",
        "parent_id": "feedc0de",
        "start": 1723100000.25,
    }
    span.update(overrides)
    return span


class TestV3Migration:
    """Version 2 manifests stay valid after the /v3 bump; v3 adds
    span identity fields (trace_id/span_id/parent_id/start)."""

    def test_v2_still_validates(self):
        manifest = _v2_manifest()
        validate_manifest(manifest)
        _validate_structurally(manifest)

    def test_v2_rejects_span_identity_fields(self):
        bad = _v2_manifest()
        bad["spans"] = [_traced_span()]
        with pytest.raises(ManifestError):
            _validate_structurally(bad)

    def test_upgrade_v2_restamps_to_current(self):
        upgraded = upgrade_manifest(_v2_manifest())
        assert upgraded["manifest_version"] == MANIFEST_VERSION
        assert upgraded["schema"] == MANIFEST_SCHEMA
        validate_manifest(upgraded)

    def test_v3_schema_file_pins_v3(self):
        schema = load_schema(3)
        assert schema["properties"]["manifest_version"]["const"] == 3
        assert schema["properties"]["schema"]["const"] == MANIFEST_SCHEMA

    def test_v3_span_identity_accepted(self):
        manifest = _minimal_manifest()
        manifest["spans"] = [_traced_span()]
        validate_manifest(manifest)
        _validate_structurally(manifest)

    def test_v3_identity_fields_are_optional(self):
        manifest = _minimal_manifest()
        manifest["spans"] = [
            {"name": "s", "wall_seconds": 0.1, "depth": 0, "metrics": {}}
        ]
        validate_manifest(manifest)
        _validate_structurally(manifest)

    @pytest.mark.parametrize(
        "field,value",
        [
            ("trace_id", "NOTHEX"),
            ("trace_id", ""),
            ("span_id", "UPPER123"),
            ("parent_id", 7),
            ("start", -1.0),
            ("start", "noon"),
        ],
    )
    def test_v3_rejects_malformed_identity(self, field, value):
        bad = _minimal_manifest()
        bad["spans"] = [_traced_span(**{field: value})]
        with pytest.raises(ManifestError):
            _validate_structurally(bad)
        with pytest.raises(ManifestError):
            validate_manifest(bad)


class TestEveryArtifactEmitsAValidManifest:
    """The acceptance criterion: all entry points produce valid manifests.

    ``build_manifest`` validates on construction, so each call below
    raising nothing IS the assertion; the explicit re-validation guards
    against an entry point bypassing validation.
    """

    @pytest.mark.parametrize("module", [table1, figure5, figure6, figure7, figure10])
    def test_paper_artifact(self, runner, module):
        result = module.run(runner, scale=SCALE)
        manifest = module.manifest(result, runner)
        validate_manifest(manifest)
        assert manifest["manifest_version"] == MANIFEST_VERSION
        assert manifest["cells"], "artifact manifest must carry cells"
        assert manifest["metrics"], "artifact manifest must carry metrics"
        assert manifest["run"]["scale"] == SCALE

    def test_ablations(self):
        obs = Registry()
        results = ablations.run_all(scale=SCALE, obs=obs)
        manifest = ablations.manifest(results, SCALE, obs)
        validate_manifest(manifest)
        ids = [entry["id"] for entry in manifest["cells"]]
        assert len(ids) == len(set(ids)), "ablation cell ids must be unique"
        span_names = {record["name"] for record in manifest["spans"]}
        assert "ablations.hop_limit" in span_names

    @pytest.mark.parametrize(
        "name,cells", [("false-sharing", 5), ("out-of-core", 2)]
    )
    def test_extension(self, name, cells):
        from repro.__main__ import _extension_manifest

        manifest = _extension_manifest(name, 1.0)
        validate_manifest(manifest)
        assert len(manifest["cells"]) == cells
        assert manifest["summary"]["speedup"] > 0

    def test_runner_manifest_reflects_simulation_work(self, runner):
        manifest = runner.manifest("probe")
        assert manifest["metrics"]["runs"]
        assert manifest["seeds"]
        assert manifest["trace_hashes"]
