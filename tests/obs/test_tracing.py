"""Unit tests for request-scoped tracing (repro.obs.tracing)."""

import pickle

import pytest

from repro.obs.registry import Registry
from repro.obs.span import SpanRecord
from repro.obs.tracing import (
    SPAN_ID_HEX,
    TRACE_ID_HEX,
    SpanContext,
    Tracer,
    new_id,
    span_tree,
)


class TestIds:
    def test_new_id_shape(self):
        trace_id = new_id(TRACE_ID_HEX)
        span_id = new_id()
        assert len(trace_id) == TRACE_ID_HEX
        assert len(span_id) == SPAN_ID_HEX
        assert set(trace_id) <= set("0123456789abcdef")

    def test_ids_do_not_touch_global_random(self):
        import random

        random.seed(7)
        expected = random.Random(7).random()
        new_id()
        new_id(TRACE_ID_HEX)
        assert random.random() == expected


class TestSpanContext:
    def test_wire_round_trip(self):
        ctx = SpanContext(trace_id="a" * 16, span_id="b" * 8)
        assert SpanContext.from_wire(ctx.to_wire()) == ctx
        assert SpanContext.from_wire(None) is None

    def test_picklable(self):
        ctx = SpanContext(trace_id="a" * 16, span_id="b" * 8)
        assert pickle.loads(pickle.dumps(ctx)) == ctx


class TestTracer:
    def test_span_nesting_builds_parent_chain(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        assert inner.depth == outer.depth + 1
        assert outer.trace_id == inner.trace_id == tracer.trace_id
        # Completion order: inner closes first.
        assert [r.name for r in tracer.records] == ["inner", "outer"]

    def test_span_records_error_and_reraises(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("bad")
        record = tracer.records[0]
        assert record.error == "ValueError: bad"
        assert record.wall_seconds >= 0

    def test_span_metric_attribution(self):
        registry = Registry()
        counter = registry.counter("work.done")
        tracer = Tracer()
        with tracer.span("work", registry):
            counter.inc(3)
        assert tracer.records[0].metrics == {"work.done": 3}

    def test_record_leaf_under_current_parent(self):
        tracer = Tracer()
        with tracer.span("parent") as parent:
            leaf = tracer.record("mark", 0.0, metrics={"joins": 2})
        assert leaf.parent_id == parent.span_id
        assert leaf.metrics == {"joins": 2}
        assert leaf.wall_seconds == 0.0

    def test_record_with_explicit_start(self):
        tracer = Tracer()
        leaf = tracer.record("wait", 1.5, start=123.25)
        assert leaf.start == 123.25
        assert leaf.to_dict()["start"] == 123.25

    def test_begin_end_cross_coroutine_discipline(self):
        tracer = Tracer()
        root = tracer.begin("request")
        with tracer.span("child") as child:
            pass
        tracer.end(root)
        assert child.parent_id == root.span_id
        assert root.wall_seconds > 0
        # Root closed the stack back to the trace root.
        assert tracer._stack == [(None, 0)]

    def test_end_with_error(self):
        tracer = Tracer()
        root = tracer.begin("request")
        tracer.end(root, error="JobTimeout: too slow")
        assert root.error == "JobTimeout: too slow"

    def test_end_unwinds_children_left_open(self):
        tracer = Tracer()
        root = tracer.begin("request")
        tracer.begin("leaked")  # never ended
        tracer.end(root)
        assert tracer._stack == [(None, 0)]

    def test_parent_context_joins_trace(self):
        parent = SpanContext(trace_id="c" * 16, span_id="d" * 8)
        tracer = Tracer(parent=parent)
        with tracer.span("worker.execute") as record:
            pass
        assert tracer.trace_id == parent.trace_id
        assert record.parent_id == parent.span_id

    def test_current_inside_span(self):
        tracer = Tracer()
        with tracer.span("exec") as record:
            ctx = tracer.current()
        assert ctx == SpanContext(tracer.trace_id, record.span_id)

    def test_current_with_no_open_span_mints_stable_root(self):
        tracer = Tracer()
        first = tracer.current()
        second = tracer.current()
        assert first == second
        assert first.trace_id == tracer.trace_id

    def test_absorb_rebases_depth(self):
        tracer = Tracer()
        tracer.absorb(
            [
                {"name": "worker.execute", "wall_seconds": 1.0, "depth": 0},
                {"name": "replay.run", "wall_seconds": 0.9, "depth": 1},
            ],
            depth_offset=2,
        )
        assert [r["depth"] for r in tracer.records] == [2, 3]
        tracer.absorb(None)  # no-op
        assert len(tracer.records) == 2

    def test_to_list_mixes_local_and_foreign(self):
        tracer = Tracer()
        with tracer.span("local"):
            pass
        tracer.absorb([{"name": "foreign", "wall_seconds": 0.1, "depth": 0}])
        out = tracer.to_list()
        assert [entry["name"] for entry in out] == ["local", "foreign"]
        assert all(isinstance(entry, dict) for entry in out)
        assert out[0]["trace_id"] == tracer.trace_id


class TestCrossProcessAssembly:
    def test_worker_spans_parent_under_service_span(self):
        service = Tracer()
        root = service.begin("serve.request")
        with service.span("serve.execute") as exec_rec:
            wire = service.current().to_wire()
            # --- what happens inside the worker process ---
            worker = Tracer(parent=SpanContext.from_wire(wire))
            with worker.span("worker.execute"):
                worker.record("replay.chunks", 0.2, metrics={"chunks": 4})
            shipped = worker.to_list()
        service.absorb(shipped, depth_offset=exec_rec.depth + 1)
        service.end(root)

        tree = span_tree(service.to_list())
        assert [node["name"] for node in tree] == ["serve.request"]
        request = tree[0]
        assert [c["name"] for c in request["children"]] == ["serve.execute"]
        execute = request["children"][0]
        assert [c["name"] for c in execute["children"]] == ["worker.execute"]
        leaf_names = [
            c["name"] for c in execute["children"][0]["children"]
        ]
        assert leaf_names == ["replay.chunks"]

    def test_span_tree_orphans_become_roots(self):
        roots = span_tree(
            [
                {"name": "a", "span_id": "1", "parent_id": None},
                {"name": "b", "span_id": "2", "parent_id": "1"},
                {"name": "orphan", "span_id": "3", "parent_id": "missing"},
            ]
        )
        assert [node["name"] for node in roots] == ["a", "orphan"]
        assert [c["name"] for c in roots[0]["children"]] == ["b"]


class TestSpanRecordIdentityFields:
    def test_to_dict_omits_unset_identity(self):
        record = SpanRecord(name="s", wall_seconds=0.1)
        out = record.to_dict()
        for field in ("trace_id", "span_id", "parent_id", "start"):
            assert field not in out

    def test_to_dict_rounds_start(self):
        record = SpanRecord(
            name="s", wall_seconds=0.1, start=1723100000.123456789
        )
        assert record.to_dict()["start"] == 1723100000.123457
