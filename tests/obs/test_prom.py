"""Prometheus text exposition: rendering, parsing, round trips."""

import math

import pytest

from repro.obs.prom import (
    PrometheusParseError,
    metric_name,
    parse_prometheus,
    render_prometheus,
    samples_by_name,
)
from repro.obs.registry import GAUGE, Registry


def _registry() -> Registry:
    registry = Registry()
    registry.counter("serve.jobs.completed").inc(7)
    registry.gauge("serve.queue.depth").set(3)
    hist = registry.histogram("serve.latency.cached_ms")
    for value, count in ((1, 50), (5, 40), (120, 10)):
        hist.observe(value, count)
    return registry


class TestMetricNames:
    def test_dotted_to_underscored_with_namespace(self):
        assert (
            metric_name("serve.jobs.completed")
            == "repro_serve_jobs_completed"
        )

    def test_hostile_characters_sanitized(self):
        name = metric_name("a.b-c.d e")
        assert name == "repro_a_b_c_d_e"

    def test_leading_digit_guard(self):
        assert metric_name("9lives", namespace="").startswith("_")


class TestRender:
    def test_counter_and_gauge_lines(self):
        text = render_prometheus(_registry().snapshot())
        assert "# TYPE repro_serve_jobs_completed counter" in text
        assert "repro_serve_jobs_completed 7" in text
        assert "# TYPE repro_serve_queue_depth gauge" in text
        assert "repro_serve_queue_depth 3" in text
        assert text.endswith("\n")

    def test_histogram_renders_as_summary(self):
        text = render_prometheus(_registry().snapshot())
        assert "# TYPE repro_serve_latency_cached_ms summary" in text
        assert 'quantile="0.5"' in text
        assert "repro_serve_latency_cached_ms_count 100" in text
        # sum = 1*50 + 5*40 + 120*10
        assert "repro_serve_latency_cached_ms_sum 1450" in text

    def test_constant_labels_stamped_everywhere(self):
        text = render_prometheus(
            _registry().snapshot(), labels={"instance": "serve-0"}
        )
        parsed = parse_prometheus(text)
        assert all(
            labels.get("instance") == "serve-0"
            for _, labels, _ in parsed["samples"]
        )

    def test_bound_metrics_render(self):
        registry = Registry()
        registry.bind("sched.depth", lambda: 11, GAUGE)
        text = render_prometheus(registry.snapshot())
        assert "repro_sched_depth 11" in text


class TestRoundTrip:
    def test_render_parse_round_trip(self):
        registry = _registry()
        text = render_prometheus(registry.snapshot())
        parsed = parse_prometheus(text)
        assert parsed["types"]["repro_serve_jobs_completed"] == "counter"
        assert parsed["types"]["repro_serve_queue_depth"] == "gauge"
        assert parsed["types"]["repro_serve_latency_cached_ms"] == "summary"
        grouped = samples_by_name(parsed)
        assert grouped["repro_serve_jobs_completed"][0][1] == 7.0
        assert grouped["repro_serve_queue_depth"][0][1] == 3.0
        count = grouped["repro_serve_latency_cached_ms_count"][0][1]
        assert count == 100.0
        quantiles = {
            labels["quantile"]: value
            for labels, value in grouped["repro_serve_latency_cached_ms"]
        }
        # rank 50 of 100 lands inside the first bucket (cumulative 50)
        assert quantiles["0.5"] == 1.0
        assert quantiles["0.99"] == 120.0

    def test_empty_histogram_quantiles_are_nan(self):
        registry = Registry()
        registry.histogram("serve.latency.captured_ms")
        text = render_prometheus(registry.snapshot())
        parsed = parse_prometheus(text)
        values = [
            value
            for name, labels, value in parsed["samples"]
            if name == "repro_serve_latency_captured_ms"
        ]
        assert values and all(math.isnan(v) for v in values)

    def test_label_escaping_round_trips(self):
        registry = Registry()
        registry.counter("c").inc()
        text = render_prometheus(
            registry.snapshot(), labels={"path": 'a"b\\c'}
        )
        parsed = parse_prometheus(text)
        name, labels, value = parsed["samples"][0]
        assert labels["path"] == 'a"b\\c'


class TestParser:
    def test_rejects_malformed_sample(self):
        with pytest.raises(PrometheusParseError):
            parse_prometheus("this is { not a sample\n")

    def test_rejects_bad_value(self):
        with pytest.raises(PrometheusParseError):
            parse_prometheus("metric_name twelve\n")

    def test_ignores_comments_and_blanks(self):
        parsed = parse_prometheus("\n# just a comment\n\nm 1\n")
        assert parsed["samples"] == [("m", {}, 1.0)]

    def test_infinities(self):
        parsed = parse_prometheus("a +Inf\nb -Inf\n")
        values = [value for _, _, value in parsed["samples"]]
        assert values[0] == float("inf") and values[1] == float("-inf")
