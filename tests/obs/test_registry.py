"""Unit tests for the hierarchical metrics registry."""

import pytest

from repro.obs.registry import (
    COUNTER,
    EMPTY,
    GAUGE,
    HISTOGRAM,
    MetricError,
    Registry,
    Snapshot,
    histogram_quantiles,
)


class TestInstruments:
    def test_counter_accumulates(self):
        registry = Registry()
        counter = registry.counter("runs.captured")
        counter.inc()
        counter.inc(4)
        assert registry.snapshot()["runs.captured"] == 5

    def test_counter_create_or_get(self):
        registry = Registry()
        assert registry.counter("a.b") is registry.counter("a.b")

    def test_gauge_set_and_track_max(self):
        registry = Registry()
        gauge = registry.gauge("heap.high_water")
        gauge.set(10)
        gauge.track_max(7)
        assert registry.snapshot()["heap.high_water"] == 10
        gauge.track_max(42)
        assert registry.snapshot()["heap.high_water"] == 42

    def test_histogram_observes_sparse_keys(self):
        registry = Registry()
        histogram = registry.histogram("fwd.hop_histogram")
        histogram.observe(1)
        histogram.observe(1)
        histogram.observe(3, count=5)
        assert registry.snapshot()["fwd.hop_histogram"] == {1: 2, 3: 5}
        assert histogram.total == 7

    def test_kind_clash_raises(self):
        registry = Registry()
        registry.counter("x")
        with pytest.raises(MetricError):
            registry.gauge("x")
        with pytest.raises(MetricError):
            registry.histogram("x")


class TestTreeInvariant:
    def test_leaf_cannot_become_interior(self):
        registry = Registry()
        registry.counter("cache.l1")
        with pytest.raises(MetricError):
            registry.counter("cache.l1.hits")

    def test_interior_cannot_become_leaf(self):
        registry = Registry()
        registry.counter("cache.l1.hits")
        with pytest.raises(MetricError):
            registry.counter("cache.l1")

    def test_bad_names_rejected(self):
        registry = Registry()
        for name in ("", ".x", "x.", "a..b"):
            with pytest.raises(MetricError):
                registry.counter(name)

    def test_bound_duplicate_rejected(self):
        registry = Registry()
        registry.bind("time.cycles", lambda: 1)
        with pytest.raises(MetricError):
            registry.bind("time.cycles", lambda: 2)
        with pytest.raises(MetricError):
            registry.counter("time.cycles")


class TestBinding:
    def test_bound_getter_read_at_snapshot_time(self):
        registry = Registry()
        state = {"cycles": 0}
        registry.bind("time.cycles", lambda: state["cycles"])
        state["cycles"] = 99
        assert registry.snapshot()["time.cycles"] == 99
        state["cycles"] = 100
        assert registry.snapshot()["time.cycles"] == 100

    def test_bound_kinds(self):
        registry = Registry()
        registry.bind("g", lambda: 3, kind=GAUGE)
        registry.bind("h", lambda: {2: 1}, kind=HISTOGRAM)
        snap = registry.snapshot()
        assert snap.kind("g") == GAUGE
        assert snap.kind("h") == HISTOGRAM
        assert snap["h"] == {2: 1}

    def test_unknown_kind_rejected(self):
        registry = Registry()
        with pytest.raises(MetricError):
            registry.bind("x", lambda: 0, kind="meter")


class TestSnapshotComposition:
    def test_merge_sums_counters_and_histograms(self):
        a = Snapshot({"c": 2, "h": {1: 1}}, {"c": COUNTER, "h": HISTOGRAM})
        b = Snapshot({"c": 3, "h": {1: 1, 2: 4}}, {"c": COUNTER, "h": HISTOGRAM})
        merged = a.merge(b)
        assert merged["c"] == 5
        assert merged["h"] == {1: 2, 2: 4}

    def test_merge_gauges_take_max(self):
        a = Snapshot({"g": 10}, {"g": GAUGE})
        b = Snapshot({"g": 7}, {"g": GAUGE})
        assert a.merge(b)["g"] == 10
        assert b.merge(a)["g"] == 10

    def test_merge_union_of_keys(self):
        a = Snapshot({"only.a": 1})
        b = Snapshot({"only.b": 2})
        merged = a.merge(b)
        assert dict(merged.flat()) == {"only.a": 1, "only.b": 2}

    def test_merge_kind_mismatch_raises(self):
        a = Snapshot({"x": 1}, {"x": COUNTER})
        b = Snapshot({"x": 1}, {"x": GAUGE})
        with pytest.raises(MetricError):
            a.merge(b)

    def test_diff_subtracts_counters(self):
        older = Snapshot({"c": 2, "h": {1: 1}}, {"c": COUNTER, "h": HISTOGRAM})
        newer = Snapshot({"c": 9, "h": {1: 3, 2: 1}}, {"c": COUNTER, "h": HISTOGRAM})
        delta = newer.diff(older)
        assert delta["c"] == 7
        assert delta["h"] == {1: 2, 2: 1}

    def test_diff_gauge_keeps_current_value(self):
        older = Snapshot({"g": 10}, {"g": GAUGE})
        newer = Snapshot({"g": 4}, {"g": GAUGE})
        assert newer.diff(older)["g"] == 4

    def test_diff_never_loses_keys(self):
        older = Snapshot({"gone": 5})
        newer = Snapshot({"new": 3})
        delta = newer.diff(older)
        assert delta["new"] == 3
        assert delta["gone"] == -5

    def test_nonzero_drops_zeroes(self):
        snap = Snapshot({"a": 0, "b": 2, "h": {}}, {"h": HISTOGRAM})
        assert dict(snap.nonzero().flat()) == {"b": 2}

    def test_tree_nests_and_stringifies_histogram_keys(self):
        snap = Snapshot(
            {"cache.l1.hits": 3, "fwd.hop_histogram": {1: 2}},
            {"fwd.hop_histogram": HISTOGRAM},
        )
        assert snap.tree() == {
            "cache": {"l1": {"hits": 3}},
            "fwd": {"hop_histogram": {"1": 2}},
        }

    def test_empty_is_merge_identity(self):
        snap = Snapshot({"a": 1, "g": 2}, {"g": GAUGE})
        assert EMPTY.merge(snap) == snap
        assert snap.merge(EMPTY) == snap


class TestAbsorb:
    def test_absorb_folds_all_kinds(self):
        registry = Registry()
        snap = Snapshot(
            {"c": 2, "g": 5, "h": {1: 1}},
            {"c": COUNTER, "g": GAUGE, "h": HISTOGRAM},
        )
        registry.absorb(snap)
        registry.absorb(Snapshot({"c": 3, "g": 4}, {"c": COUNTER, "g": GAUGE}))
        out = registry.snapshot()
        assert out["c"] == 5
        assert out["g"] == 5  # gauges track max
        assert out["h"] == {1: 1}


class TestHistogramQuantiles:
    def test_empty_histogram_yields_empty_dict(self):
        assert histogram_quantiles({}) == {}
        assert histogram_quantiles({5: 0}) == {}

    def test_single_value(self):
        assert histogram_quantiles({7: 3}) == {"p50": 7.0, "p99": 7.0}

    def test_nearest_rank_over_spread(self):
        counts = {1: 50, 10: 49, 1000: 1}
        out = histogram_quantiles(counts, (0.5, 0.99, 1.0))
        assert out["p50"] == 1.0
        assert out["p99"] == 10.0
        assert out["p100"] == 1000.0

    def test_string_keys_from_json_round_trip(self):
        assert histogram_quantiles({"2": 1, "4": 1}) == {
            "p50": 2.0,
            "p99": 4.0,
        }

    def test_bad_quantile_rejected(self):
        with pytest.raises(ValueError):
            histogram_quantiles({1: 1}, (0.0,))
        with pytest.raises(ValueError):
            histogram_quantiles({1: 1}, (1.5,))


class TestQuantileEdgeCases:
    """PR 9 hardening: the shapes the Prometheus renderer feeds in."""

    def test_empty_after_zero_count_filtering(self):
        # Every bucket zero or negative: indistinguishable from empty.
        assert histogram_quantiles({1: 0, 5: 0, 9: -2}) == {}

    def test_single_bucket_all_quantiles_collapse(self):
        out = histogram_quantiles({42: 1000}, (0.5, 0.9, 0.95, 0.99, 1.0))
        assert out == {
            "p50": 42.0, "p90": 42.0, "p95": 42.0, "p99": 42.0, "p100": 42.0
        }

    def test_all_equal_values_split_across_buckets(self):
        # JSON round trips can split one logical value over int and
        # string keys; quantiles must still collapse to that value.
        out = histogram_quantiles({7: 3, "7.0": 5}, (0.5, 0.99))
        assert out == {"p50": 7.0, "p99": 7.0}

    def test_quantile_label_formatting(self):
        out = histogram_quantiles({1: 1, 2: 1}, (0.25, 0.999))
        assert set(out) == {"p25", "p99.9"}


class TestGaugeOnlyDiff:
    """Snapshot.diff over registries whose leaves are all gauges."""

    def test_registry_diff_with_only_gauges(self):
        registry = Registry()
        registry.gauge("pool.depth").set(3)
        registry.gauge("pool.peak").set(9)
        before = registry.snapshot()
        registry.gauge("pool.depth").set(1)
        registry.gauge("pool.peak").set(12)
        delta = registry.snapshot().diff(before)
        # Gauges are levels, not rates: diff keeps the current reading.
        assert delta["pool.depth"] == 1
        assert delta["pool.peak"] == 12

    def test_gauge_only_diff_preserves_kinds(self):
        older = Snapshot({"g1": 5, "g2": 7}, {"g1": GAUGE, "g2": GAUGE})
        newer = Snapshot({"g1": 2, "g2": 7}, {"g1": GAUGE, "g2": GAUGE})
        delta = newer.diff(older)
        assert delta.kind("g1") == GAUGE and delta.kind("g2") == GAUGE
        assert dict(delta.flat()) == {"g1": 2, "g2": 7}

    def test_bound_gauge_leaves_diff_cleanly(self):
        depth = {"value": 4}
        registry = Registry()
        registry.bind("sched.depth", lambda: depth["value"], GAUGE)
        before = registry.snapshot()
        depth["value"] = 6
        delta = registry.snapshot().diff(before)
        assert delta["sched.depth"] == 6
        assert delta.nonzero().flat() == {"sched.depth": 6}
