"""Unit tests for span timing and counter attribution."""

import pytest

from repro.obs.registry import Registry
from repro.obs.span import SpanLog, span


class TestSpan:
    def test_records_wall_time(self):
        log = SpanLog()
        with span("work", log=log):
            pass
        record = log.records[-1]
        assert record.name == "work"
        assert record.wall_seconds >= 0.0

    def test_attributes_counter_deltas(self):
        registry = Registry()
        registry.counter("runs.captured").inc(2)
        with registry.span("phase"):
            registry.counter("runs.captured").inc(3)
            registry.counter("runs.cached")  # stays zero -> dropped
        record = registry.spans.find("phase")
        assert record.metrics == {"runs.captured": 3}

    def test_nesting_depth(self):
        registry = Registry()
        with registry.span("outer"):
            with registry.span("inner"):
                pass
        assert registry.spans.find("inner").depth == 1
        assert registry.spans.find("outer").depth == 0
        # Completion order: innermost first.
        assert [r.name for r in registry.spans.records] == ["inner", "outer"]

    def test_exception_still_recorded(self):
        registry = Registry()
        with pytest.raises(RuntimeError):
            with registry.span("doomed"):
                registry.counter("runs.captured").inc()
                raise RuntimeError("boom")
        assert registry.spans.find("doomed").metrics == {"runs.captured": 1}

    def test_to_dict_is_json_safe(self):
        registry = Registry()
        registry.histogram("fwd.hop_histogram")
        with registry.span("run"):
            registry.histogram("fwd.hop_histogram").observe(2)
        entry = registry.spans.to_list()[0]
        assert entry["name"] == "run"
        assert entry["depth"] == 0
        assert entry["metrics"] == {"fwd.hop_histogram": {"2": 1}}

    def test_find_missing_raises(self):
        with pytest.raises(KeyError):
            SpanLog().find("nope")


class TestSpanExceptionSafety:
    """PR 4 regression tests: spans must unwind cleanly through errors."""

    def test_error_summary_recorded_and_exception_propagates(self):
        registry = Registry()
        with pytest.raises(ValueError, match="bad cell"):
            with registry.span("doomed"):
                raise ValueError("bad cell")
        record = registry.spans.find("doomed")
        assert record.error == "ValueError: bad cell"
        assert "error" in record.to_dict()

    def test_messageless_exception_keeps_type_name(self):
        registry = Registry()
        with pytest.raises(KeyError):
            with registry.span("doomed"):
                raise KeyError
        assert registry.spans.find("doomed").error == "KeyError"

    def test_clean_exit_has_no_error(self):
        registry = Registry()
        with registry.span("fine"):
            pass
        record = registry.spans.find("fine")
        assert record.error is None
        assert "error" not in record.to_dict()

    def test_nested_spans_unwind_through_exception(self):
        """Depth bookkeeping survives an exception crossing both levels."""
        registry = Registry()
        with pytest.raises(RuntimeError):
            with registry.span("outer"):
                with registry.span("inner"):
                    registry.counter("runs.captured").inc()
                    raise RuntimeError("boom")
        log = registry.spans
        assert log._depth == 0, "depth counter must rewind to top level"
        assert [r.name for r in log.records] == ["inner", "outer"]
        assert log.find("inner").depth == 1
        assert log.find("outer").depth == 0
        assert log.find("inner").error == "RuntimeError: boom"
        assert log.find("outer").error == "RuntimeError: boom"
        assert log.find("inner").metrics == {"runs.captured": 1}
        # The log is reusable afterwards: a fresh span starts at depth 0.
        with registry.span("after"):
            pass
        assert log.find("after").depth == 0

    def test_record_appended_even_if_metric_diff_raises(self):
        class ExplodingRegistry(Registry):
            def __init__(self):
                super().__init__()
                self._snapshots = 0

            def snapshot(self):
                self._snapshots += 1
                if self._snapshots > 1:  # entry snapshot fine, exit raises
                    raise RuntimeError("diff failed")
                return super().snapshot()

        registry = ExplodingRegistry()
        log = SpanLog()
        with pytest.raises(RuntimeError, match="diff failed"):
            with span("fragile", registry=registry, log=log):
                pass
        assert log._depth == 0
        assert [r.name for r in log.records] == ["fragile"]
