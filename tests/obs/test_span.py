"""Unit tests for span timing and counter attribution."""

import pytest

from repro.obs.registry import Registry
from repro.obs.span import SpanLog, span


class TestSpan:
    def test_records_wall_time(self):
        log = SpanLog()
        with span("work", log=log):
            pass
        record = log.records[-1]
        assert record.name == "work"
        assert record.wall_seconds >= 0.0

    def test_attributes_counter_deltas(self):
        registry = Registry()
        registry.counter("runs.captured").inc(2)
        with registry.span("phase"):
            registry.counter("runs.captured").inc(3)
            registry.counter("runs.cached")  # stays zero -> dropped
        record = registry.spans.find("phase")
        assert record.metrics == {"runs.captured": 3}

    def test_nesting_depth(self):
        registry = Registry()
        with registry.span("outer"):
            with registry.span("inner"):
                pass
        assert registry.spans.find("inner").depth == 1
        assert registry.spans.find("outer").depth == 0
        # Completion order: innermost first.
        assert [r.name for r in registry.spans.records] == ["inner", "outer"]

    def test_exception_still_recorded(self):
        registry = Registry()
        with pytest.raises(RuntimeError):
            with registry.span("doomed"):
                registry.counter("runs.captured").inc()
                raise RuntimeError("boom")
        assert registry.spans.find("doomed").metrics == {"runs.captured": 1}

    def test_to_dict_is_json_safe(self):
        registry = Registry()
        registry.histogram("fwd.hop_histogram")
        with registry.span("run"):
            registry.histogram("fwd.hop_histogram").observe(2)
        entry = registry.spans.to_list()[0]
        assert entry["name"] == "run"
        assert entry["depth"] == 0
        assert entry["metrics"] == {"fwd.hop_histogram": {"2": 1}}

    def test_find_missing_raises(self):
        with pytest.raises(KeyError):
            SpanLog().find("nope")
