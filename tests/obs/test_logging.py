"""Structured JSON logging: formatter, atomic handler, configuration."""

import io
import json
import logging

import pytest

from repro.obs.logging import (
    AtomicLineHandler,
    JsonFormatter,
    bind_trace_id,
    configure_logging,
    current_trace_id,
    iter_log_lines,
    log_event,
    reset_trace_id,
    resolve_level,
    trace_context,
    worker_init,
)


@pytest.fixture()
def capture():
    """A configured 'repro.test' logger writing JSON lines to a buffer."""
    stream = io.StringIO()
    logger = configure_logging("DEBUG", stream=stream, force=True)
    try:
        yield logging.getLogger("repro.test"), stream
    finally:
        # Leave the global logger unconfigured for other tests.
        for handler in [
            h for h in logger.handlers if isinstance(h, AtomicLineHandler)
        ]:
            logger.removeHandler(handler)
        logger.setLevel(logging.NOTSET)


def _lines(stream: io.StringIO) -> list[dict]:
    return list(iter_log_lines(stream.getvalue()))


class TestFormatter:
    def test_one_json_object_per_line(self, capture):
        logger, stream = capture
        logger.info("hello %s", "world")
        logger.warning("watch out")
        lines = _lines(stream)
        assert [line["msg"] for line in lines] == ["hello world", "watch out"]
        assert [line["level"] for line in lines] == ["info", "warning"]
        assert all(line["logger"] == "repro.test" for line in lines)
        assert all("ts" in line for line in lines)

    def test_structured_fields_fold_in(self, capture):
        logger, stream = capture
        log_event(logger, logging.INFO, "cell complete", app="mst", cycles=42)
        line = _lines(stream)[0]
        assert line["app"] == "mst"
        assert line["cycles"] == 42

    def test_exception_rendered(self, capture):
        logger, stream = capture
        try:
            raise ValueError("boom")
        except ValueError:
            logger.exception("failed")
        line = _lines(stream)[0]
        assert "ValueError: boom" in line["exc"]

    def test_non_serializable_field_stringified(self, capture):
        logger, stream = capture
        log_event(logger, logging.INFO, "odd", payload=object())
        assert "object object" in _lines(stream)[0]["payload"]


class TestTraceContext:
    def test_contextvar_stamps_records(self, capture):
        logger, stream = capture
        with trace_context("a1b2c3d4e5f60718"):
            assert current_trace_id() == "a1b2c3d4e5f60718"
            logger.info("inside")
        logger.info("outside")
        lines = _lines(stream)
        assert lines[0]["trace_id"] == "a1b2c3d4e5f60718"
        assert "trace_id" not in lines[1]

    def test_bind_reset_tokens(self):
        token = bind_trace_id("feedc0de00000000")
        assert current_trace_id() == "feedc0de00000000"
        reset_trace_id(token)
        assert current_trace_id() is None


class TestHandler:
    def test_emits_single_line_without_fileno(self):
        stream = io.StringIO()  # no fileno: exercises the fallback
        handler = AtomicLineHandler(stream)
        handler.setFormatter(JsonFormatter())
        record = logging.LogRecord(
            "repro.x", logging.INFO, __file__, 1, "msg", (), None
        )
        handler.emit(record)
        text = stream.getvalue()
        assert text.endswith("\n") and text.count("\n") == 1
        assert json.loads(text)["msg"] == "msg"

    def test_single_os_write_per_record(self, tmp_path):
        path = tmp_path / "log.jsonl"
        with open(path, "w", encoding="utf-8") as stream:
            handler = AtomicLineHandler(stream)
            handler.setFormatter(JsonFormatter())
            for index in range(5):
                handler.emit(
                    logging.LogRecord(
                        "repro.x", logging.INFO, __file__, 1,
                        f"line {index}", (), None,
                    )
                )
        lines = list(iter_log_lines(path.read_text()))
        assert [line["msg"] for line in lines] == [
            f"line {i}" for i in range(5)
        ]


class TestConfiguration:
    def test_idempotent(self):
        stream = io.StringIO()
        logger = configure_logging("INFO", stream=stream, force=True)
        configure_logging("INFO", stream=stream)
        handlers = [
            h for h in logger.handlers if isinstance(h, AtomicLineHandler)
        ]
        try:
            assert len(handlers) == 1
        finally:
            for handler in handlers:
                logger.removeHandler(handler)
            logger.setLevel(logging.NOTSET)

    def test_level_gating(self, capture):
        logger, stream = capture
        logging.getLogger("repro").setLevel(logging.WARNING)
        logger.info("dropped")
        logger.warning("kept")
        assert [line["msg"] for line in _lines(stream)] == ["kept"]

    def test_resolve_level_names_and_env(self, monkeypatch):
        assert resolve_level("debug") == logging.DEBUG
        assert resolve_level(logging.ERROR) == logging.ERROR
        monkeypatch.setenv("REPRO_LOG_LEVEL", "WARNING")
        assert resolve_level() == logging.WARNING
        monkeypatch.delenv("REPRO_LOG_LEVEL")
        assert resolve_level() == logging.INFO
        with pytest.raises(ValueError):
            resolve_level("LOUD")

    def test_worker_init_installs_handler(self):
        logger = logging.getLogger("repro")
        saved_handlers = list(logger.handlers)
        saved_level = logger.level
        try:
            worker_init(logging.DEBUG)
            assert any(
                isinstance(h, AtomicLineHandler) for h in logger.handlers
            )
            assert logger.level == logging.DEBUG
        finally:
            logger.handlers[:] = saved_handlers
            logger.setLevel(saved_level)

    def test_enable_progress_logging_delegates(self):
        from repro.core.debug import enable_progress_logging

        logger = logging.getLogger("repro")
        saved_handlers = list(logger.handlers)
        saved_level = logger.level
        try:
            returned = enable_progress_logging()
            assert returned is logger
            assert any(
                isinstance(h, AtomicLineHandler) for h in logger.handlers
            )
        finally:
            logger.handlers[:] = saved_handlers
            logger.setLevel(saved_level)


class TestIterLogLines:
    def test_skips_non_json_noise(self):
        text = 'plain stderr noise\n{"msg": "ok"}\n{broken\n'
        assert list(iter_log_lines(text)) == [{"msg": "ok"}]
