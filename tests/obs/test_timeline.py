"""Timeline sampler, event log, and exporter tests (DESIGN.md §5d).

Covers the pure ``repro.obs`` layer: windowing semantics against a
hand-driven registry, the event ring's drop accounting, the Chrome-trace
golden output, the CSV flattening, and the ``timeline diff`` regression
gate's threshold semantics.  Machine integration (real simulations,
replay parity) lives in ``tests/integration/test_timeline_parity.py``.
"""

import json

import pytest

from repro.obs import EventLog, Registry, Timeline
from repro.obs.export import (
    DEFAULT_THRESHOLD,
    chrome_trace,
    diff_timelines,
    render_diff,
    windows_csv,
)
from repro.obs.timeline import WINDOW_SERIES


# ----------------------------------------------------------------------
# EventLog
# ----------------------------------------------------------------------
class TestEventLog:
    def test_records_and_counts(self):
        log = EventLog(capacity=8)
        log.emit("fwd.walk", initial=64, final=128, hops=2)
        log.emit("fwd.walk", initial=64, final=192, hops=3)
        log.emit("mem.free", address=256, chain=1)
        assert log.total == 3
        assert log.dropped == 0
        assert log.counts == {"fwd.walk": 2, "mem.free": 1}
        payload = log.to_payload()
        assert payload["records"][0] == {
            "ts": 0.0,
            "kind": "fwd.walk",
            "args": {"initial": 64, "final": 128, "hops": 2},
        }

    def test_ring_drops_oldest_but_counts_survive(self):
        log = EventLog(capacity=2)
        for index in range(5):
            log.emit("e", n=index)
        assert log.total == 5
        assert log.dropped == 3
        assert [record["args"]["n"] for record in log.to_payload()["records"]] == [3, 4]
        assert log.counts == {"e": 5}

    def test_clock_stamps_records(self):
        now = [0.0]
        log = EventLog(capacity=4, clock=lambda: now[0])
        log.emit("a")
        now[0] = 12.5
        log.emit("b")
        stamps = [record["ts"] for record in log.to_payload()["records"]]
        assert stamps == [0.0, 12.5]

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            EventLog(capacity=0)


# ----------------------------------------------------------------------
# Timeline
# ----------------------------------------------------------------------
def _registry():
    """A registry exposing the canonical machine metric names."""
    registry = Registry()
    for name in (
        "time.cycles",
        "cache.l1.miss.load_full",
        "cache.l1.miss.store_full",
        "slots.load_stall",
        "ref.load.forwarded",
        "ref.store.forwarded",
    ):
        registry.counter(name)
    return registry


class TestTimeline:
    def test_windows_diff_the_registry(self):
        registry = _registry()
        timeline = Timeline(2, registry)
        cycles = registry.counter("time.cycles")
        misses = registry.counter("cache.l1.miss.load_full")

        cycles.inc(10)
        timeline.tick(0)
        cycles.inc(10)
        misses.inc()
        timeline.tick(64)  # closes window 0
        cycles.inc(5)
        timeline.tick(128)
        timeline.finish()  # closes the partial window 1

        assert timeline.window_count == 2
        assert timeline.windows["refs"] == [2, 1]
        assert timeline.windows["cycles"] == [20, 5]
        assert timeline.windows["l1_misses"] == [1, 0]
        assert timeline.windows["miss_rate"] == [0.5, 0.0]

    def test_chases_sum_load_and_store_forwarded(self):
        registry = _registry()
        timeline = Timeline(3, registry)
        registry.counter("ref.load.forwarded").inc(2)
        registry.counter("ref.store.forwarded").inc()
        for address in (0, 8, 16):
            timeline.tick(address)
        assert timeline.windows["chases"] == [3]

    def test_finish_without_pending_is_noop(self):
        timeline = Timeline(2, _registry())
        timeline.finish()
        assert timeline.window_count == 0
        timeline.tick(0)
        timeline.tick(8)
        timeline.finish()
        timeline.finish()
        assert timeline.window_count == 1

    def test_heatmap_regions_and_forwarded(self):
        timeline = Timeline(10, _registry(), region_bytes=64)
        timeline.tick(0)
        timeline.tick(63)
        timeline.tick(64)
        timeline.note_forwarded(64)
        timeline.finish()
        heat = timeline.heatmap()
        assert heat["region_bytes"] == 64
        assert heat["regions"] == {
            "0": {"accesses": 2, "forwarded": 0},
            "1": {"accesses": 1, "forwarded": 1},
        }

    def test_payload_shape(self):
        timeline = Timeline(1, _registry(), events=EventLog(capacity=2))
        timeline.tick(0)
        payload = timeline.to_payload()
        assert set(payload) == {
            "sample_interval", "window_count", "windows", "heatmap", "events",
        }
        assert set(payload["windows"]) == set(WINDOW_SERIES)
        assert payload["events"]["capacity"] == 2
        assert json.dumps(payload)  # JSON-safe

    def test_mshr_occupancy_probed_at_window_edge(self):
        class FakeMSHR:
            def occupancy_at(self, now):
                return int(now)

        now = [0.0]
        timeline = Timeline(
            1, _registry(), mshr=FakeMSHR(), clock=lambda: now[0]
        )
        timeline.tick(0)
        now[0] = 3.0
        timeline.tick(8)
        assert timeline.windows["mshr_occupancy"] == [0, 3]

    def test_rejects_bad_interval_and_region(self):
        with pytest.raises(ValueError):
            Timeline(0, _registry())
        with pytest.raises(ValueError):
            Timeline(1, _registry(), region_bytes=48)


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------
def _manifest(windows=None, events=None, spans=()):
    windows = windows or {
        "refs": [2, 2],
        "cycles": [20.0, 10.0],
        "l1_misses": [1, 0],
        "miss_rate": [0.5, 0.0],
        "stall_slots": [4.0, 0.0],
        "chases": [1, 0],
        "mshr_occupancy": [0, 1],
    }
    manifest = {
        "artifact": "probe",
        "schema": "repro.obs.manifest/v2",
        "spans": list(spans),
        "timeline": {
            "cells": {
                "health/32B/L": {
                    "sample_interval": 2,
                    "window_count": len(windows["refs"]),
                    "windows": windows,
                    "heatmap": {"region_bytes": 65536, "regions": {}},
                }
            }
        },
    }
    if events is not None:
        manifest["events"] = {"cells": {"health/32B/L": events}}
    return manifest


GOLDEN_TRACE = {
    "traceEvents": [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "tid": 0,
            "args": {"name": "timeline health/32B/L"},
        },
        {
            "name": "window",
            "ph": "C",
            "pid": 1,
            "tid": 0,
            "ts": 20.0,
            "args": {
                "miss_rate": 0.5,
                "stall_slots": 4.0,
                "chases": 1,
                "mshr_occupancy": 0,
            },
        },
        {
            "name": "window",
            "ph": "C",
            "pid": 1,
            "tid": 0,
            "ts": 30.0,
            "args": {
                "miss_rate": 0.0,
                "stall_slots": 0.0,
                "chases": 0,
                "mshr_occupancy": 1,
            },
        },
        {
            "name": "process_name",
            "ph": "M",
            "pid": 2,
            "tid": 0,
            "args": {"name": "events health/32B/L"},
        },
        {
            "name": "fwd.walk",
            "ph": "i",
            "s": "t",
            "pid": 2,
            "tid": 0,
            "ts": 7.0,
            "args": {"initial": 64, "final": 128, "hops": 1},
        },
        {
            "name": "process_name",
            "ph": "M",
            "pid": 3,
            "tid": 0,
            "args": {"name": "spans (wall clock)"},
        },
        {
            "name": "figure5",
            "ph": "X",
            "pid": 3,
            "tid": 0,
            "ts": 0.0,
            "dur": 1500000.0,
            "args": {},
        },
    ],
    "displayTimeUnit": "ms",
    "otherData": {"artifact": "probe", "schema": "repro.obs.manifest/v2"},
}


class TestChromeTrace:
    def test_golden_trace(self):
        """Byte-for-byte golden output for one Perfetto trace."""
        manifest = _manifest(
            events={
                "capacity": 16,
                "total": 1,
                "dropped": 0,
                "counts": {"fwd.walk": 1},
                "records": [
                    {
                        "ts": 7.0,
                        "kind": "fwd.walk",
                        "args": {"initial": 64, "final": 128, "hops": 1},
                    }
                ],
            },
            spans=[
                {"name": "figure5", "wall_seconds": 1.5, "depth": 0, "metrics": {}}
            ],
        )
        trace = chrome_trace(manifest)
        assert trace == GOLDEN_TRACE
        assert json.dumps(trace, sort_keys=True) == json.dumps(
            GOLDEN_TRACE, sort_keys=True
        )

    def test_empty_manifest_yields_empty_trace(self):
        trace = chrome_trace({"artifact": "x", "schema": "s"})
        assert trace["traceEvents"] == []

    def test_sibling_spans_lay_out_sequentially(self):
        manifest = _manifest(spans=[
            {"name": "a", "wall_seconds": 1.0, "depth": 0, "metrics": {}},
            {"name": "b", "wall_seconds": 2.0, "depth": 0, "metrics": {}},
        ])
        slices = [
            event for event in chrome_trace(manifest)["traceEvents"]
            if event["ph"] == "X"
        ]
        assert slices[0]["ts"] == 0.0
        assert slices[1]["ts"] == 1e6  # starts after its sibling


class TestWindowsCSV:
    def test_header_and_rows(self):
        csv = windows_csv(_manifest()["timeline"]["cells"]["health/32B/L"]["windows"])
        lines = csv.strip().split("\n")
        assert lines[0] == "window," + ",".join(WINDOW_SERIES)
        assert lines[1] == "0,2,20.0,1,0.5,4.0,1,0"
        assert lines[2] == "1,2,10.0,0,0.0,0.0,0,1"


class TestDiffTimelines:
    def test_identical_manifests_pass(self):
        regressions, notes = diff_timelines(_manifest(), _manifest())
        assert regressions == []
        assert notes == []
        assert "no per-window regressions" in render_diff(regressions, notes)

    def test_regression_flagged_beyond_threshold(self):
        after = _manifest()
        after["timeline"]["cells"]["health/32B/L"]["windows"]["miss_rate"] = [
            0.5 * (1 + DEFAULT_THRESHOLD) + 0.01,
            0.0,
        ]
        regressions, _ = diff_timelines(_manifest(), after)
        assert len(regressions) == 1
        entry = regressions[0]
        assert entry["cell"] == "health/32B/L"
        assert entry["window"] == 0
        assert entry["metric"] == "miss_rate"
        assert "REGRESSION" in render_diff(regressions, [])

    def test_within_threshold_passes(self):
        after = _manifest()
        after["timeline"]["cells"]["health/32B/L"]["windows"]["miss_rate"] = [
            0.5 * (1 + DEFAULT_THRESHOLD * 0.5),
            0.0,
        ]
        regressions, _ = diff_timelines(_manifest(), after)
        assert regressions == []

    def test_improvement_never_flags(self):
        after = _manifest()
        after["timeline"]["cells"]["health/32B/L"]["windows"]["cycles"] = [1.0, 1.0]
        regressions, _ = diff_timelines(_manifest(), after)
        assert regressions == []

    def test_zero_baseline_epsilon_guard(self):
        """Float noise above an all-zero window must not flag."""
        before = _manifest()
        before["timeline"]["cells"]["health/32B/L"]["windows"]["miss_rate"] = [0.0, 0.0]
        after = _manifest()
        after["timeline"]["cells"]["health/32B/L"]["windows"]["miss_rate"] = [1e-9, 0.0]
        regressions, _ = diff_timelines(before, after)
        assert regressions == []

    def test_zero_baseline_real_regression_is_inf_ratio(self):
        before = _manifest()
        before["timeline"]["cells"]["health/32B/L"]["windows"]["miss_rate"] = [0.0, 0.0]
        regressions, _ = diff_timelines(before, _manifest())
        assert regressions and regressions[0]["ratio"] == float("inf")
        assert "inf" in render_diff(regressions, [])

    def test_structural_mismatches_are_notes_not_regressions(self):
        after = _manifest()
        after["timeline"]["cells"]["other/64B/N"] = after["timeline"]["cells"][
            "health/32B/L"
        ]
        for series in after["timeline"]["cells"]["health/32B/L"]["windows"].values():
            series.pop()
        regressions, notes = diff_timelines(_manifest(), after)
        assert regressions == []
        assert any("only present" in note for note in notes)
        assert any("window count" in note for note in notes)

    def test_custom_threshold(self):
        after = _manifest()
        after["timeline"]["cells"]["health/32B/L"]["windows"]["miss_rate"] = [0.6, 0.0]
        strict, _ = diff_timelines(_manifest(), after, threshold=0.1)
        lax, _ = diff_timelines(_manifest(), after, threshold=0.5)
        assert strict and not lax
