"""Differential test: the fused fast path is bit-exact vs. the general path.

The hot-path kernel (:mod:`repro.core.hotpath`) re-implements the per
reference cost pipeline -- L1/L2 probes, MSHR combining, timing update,
latency stats, speculation check -- as fused closures.  Its contract is
that a run with ``fast_path=True`` produces *exactly* the same
:class:`~repro.core.stats.MachineStats` snapshot and application checksum
as the reference component-by-component path (``fast_path=False``),
including every float, for every application and variant.

``stats.dump()`` is the lossless nested-dict snapshot, so comparing the
dumps compares every counter and every accumulated float bit-for-bit.
"""

import pytest

from repro.apps import FIGURE5_APPS, get_application
from repro.cache.hierarchy import HierarchyConfig
from repro.core.machine import MachineConfig
from repro.experiments.config import APP_SEEDS, line_sizes_for

#: Small but non-trivial workloads: large enough to exercise L2 misses,
#: MSHR stalls, evictions with inclusion invalidations, and (in the L
#: variants) forwarded references that fall back to the general path.
PARITY_SCALE = 0.1


def _parity_cases():
    for app_name in FIGURE5_APPS:
        app = get_application(app_name, scale=PARITY_SCALE, seed=APP_SEEDS[app_name])
        sizes = line_sizes_for(app_name)
        for variant in app.variants():
            for line_size in (sizes[0], 128):
                yield pytest.param(
                    app_name, variant, line_size,
                    id=f"{app_name}-{variant.value}-{line_size}B",
                )


def _run(app_name, variant, line_size, fast):
    app = get_application(app_name, scale=PARITY_SCALE, seed=APP_SEEDS[app_name])
    config = MachineConfig(
        hierarchy=HierarchyConfig(line_size=line_size),
        fast_path=fast,
    )
    result = app.run(variant, config)
    return result.stats.dump(), result.checksum


@pytest.mark.parametrize("app_name,variant,line_size", _parity_cases())
def test_fast_path_matches_general_path(app_name, variant, line_size):
    fast_stats, fast_checksum = _run(app_name, variant, line_size, fast=True)
    general_stats, general_checksum = _run(app_name, variant, line_size, fast=False)
    assert fast_checksum == general_checksum
    assert fast_stats == general_stats


def test_fast_path_is_the_default():
    assert MachineConfig().fast_path is True
