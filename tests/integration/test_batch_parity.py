"""Batch-engine parity: specialized kernels == general path, app by app.

The non-negotiable contract of the batch replay engine (ISSUE PR7): for
every Figure-5 app and variant, replaying a trace through the
exec-specialized kernel produces a :class:`~repro.core.stats.
MachineStats` tree bit-identical to the general ``replay_trace`` path --
same floats, same counters, no tolerance.  The scale is small but the
coverage is exhaustive across apps, which is what catches app-specific
stream shapes (forwarded chains, prefetch bursts, allocation storms)
that synthetic streams miss.
"""

import pytest

from repro.apps import FIGURE5_APPS, Variant
from repro.experiments.config import APP_SEEDS, experiment_config
from repro.trace import capture_trace, replay_trace
from repro.trace.kernels import replay_specialized

SCALE = 0.05


@pytest.fixture(scope="module")
def traces():
    """One small captured trace per (app, variant)."""
    captured = {}
    for app in FIGURE5_APPS:
        for variant in (Variant.N, Variant.L):
            trace, _ = capture_trace(
                app,
                variant,
                experiment_config(32),
                scale=SCALE,
                seed=APP_SEEDS[app],
            )
            captured[(app, variant)] = trace
    return captured


@pytest.mark.parametrize("app", FIGURE5_APPS)
@pytest.mark.parametrize("variant", [Variant.N, Variant.L])
def test_specialized_kernel_matches_general_path(traces, app, variant):
    trace = traces[(app, variant)]
    line_sizes = (
        (trace.line_size,)
        if trace.line_size_sensitive
        else (32, 64, 128)
    )
    for line_size in line_sizes:
        config = experiment_config(line_size)
        reference = replay_trace(trace, config)
        result = replay_specialized(trace, config)
        assert result.stats.dump() == reference.stats.dump(), (
            f"{app}/{variant.value} diverged at {line_size}B lines"
        )
        assert result.checksum == reference.checksum
        assert result.extras == reference.extras
