"""Miss-path mechanisms across execution modes (DESIGN.md §5f).

Three guarantees pinned here:

1. **Zero-cost disablement.**  With ``mechanism="none"`` a run's stats
   -- metric tree, dump, checksum -- are bit-identical to a machine
   that predates the miss path entirely (the config default), and the
   fused fast-path kernel stays engaged.
2. **Replay parity.**  With any mechanism enabled, replaying a captured
   trace through the mechanism config reproduces the direct run's stats
   (including the ``cache.misspath.*`` counters) bit-exactly.
3. **Mode parity.**  Forcing the general interpreter path produces the
   same stats as the (general-backed) kernel path, and mechanisms never
   change application results -- only their cost.
"""

import pytest

from repro.apps import get_application
from repro.apps.base import Variant
from repro.cache.misspath import MECHANISMS
from repro.cache.hierarchy import HierarchyConfig
from repro.core.machine import MachineConfig
from repro.experiments.config import APP_SEEDS
from repro.trace.recorder import capture_trace
from repro.trace.replay import replay_trace

SCALE = 0.05

CASES = [
    pytest.param("health", Variant.L, 32, id="health-L-32B"),
    pytest.param("mst", Variant.N, 64, id="mst-N-64B"),
]


def _config(line_size, mechanism="none", fast_path=True, **hier_overrides):
    return MachineConfig(
        hierarchy=HierarchyConfig(
            line_size=line_size, mechanism=mechanism, **hier_overrides
        ),
        fast_path=fast_path,
    )


def _run_direct(app_name, variant, config):
    app = get_application(app_name, scale=SCALE, seed=APP_SEEDS[app_name])
    return app.run(variant, config)


class TestZeroCostDisablement:
    @pytest.mark.parametrize("app_name,variant,line_size", CASES)
    def test_disabled_mechanism_is_bit_identical(self, app_name, variant, line_size):
        baseline = _run_direct(app_name, variant, _config(line_size))
        # Explicit "none" plus non-default sizing knobs: the knobs must
        # be inert when no mechanism reads them.
        knobbed = _run_direct(
            app_name,
            variant,
            _config(line_size, vc_entries=64, sb_depth=16),
        )
        assert knobbed.checksum == baseline.checksum
        assert knobbed.stats.dump() == baseline.stats.dump()
        assert (
            knobbed.stats.to_snapshot().tree()
            == baseline.stats.to_snapshot().tree()
        )

    def test_disabled_tree_has_no_misspath_keys(self):
        outcome = _run_direct("health", Variant.L, _config(32))
        assert not any(
            key.startswith("cache.misspath") for key in outcome.stats.to_snapshot()
        )


class TestReplayParity:
    @pytest.mark.parametrize("mechanism", MECHANISMS[1:])
    @pytest.mark.parametrize("app_name,variant,line_size", CASES)
    def test_replay_matches_direct(self, app_name, variant, line_size, mechanism):
        config = _config(line_size, mechanism=mechanism)
        trace, direct = capture_trace(
            app_name, variant, config, SCALE, APP_SEEDS[app_name]
        )
        replayed = replay_trace(trace, config)
        assert replayed.stats.dump() == direct.stats.dump()
        assert replayed.stats.misspath == direct.stats.misspath

    def test_mechanism_counters_travel_through_replay(self):
        config = _config(32, mechanism="victim_cache")
        trace, direct = capture_trace(
            "health", Variant.L, config, SCALE, APP_SEEDS["health"]
        )
        assert direct.stats.misspath["probes"] > 0
        replayed = replay_trace(trace, config)
        snapshot = replayed.stats.to_snapshot()
        assert (
            snapshot["cache.misspath.probes"] == direct.stats.misspath["probes"]
        )

    def test_baseline_trace_replays_under_any_mechanism(self):
        """One captured stream serves every mechanism config (the trace
        key ignores machine config), and mechanism replays differ from
        the baseline only in cost, never in workload identity."""
        baseline_config = _config(32)
        trace, _ = capture_trace(
            "health", Variant.L, baseline_config, SCALE, APP_SEEDS["health"]
        )
        mech_config = _config(32, mechanism="victim_cache")
        direct = _run_direct("health", Variant.L, mech_config)
        replayed = replay_trace(trace, mech_config)
        assert replayed.stats.dump() == direct.stats.dump()


class TestModeParity:
    @pytest.mark.parametrize("mechanism", ["victim_cache", "combined"])
    def test_general_path_matches_kernel_path(self, mechanism):
        fast = _run_direct("health", Variant.L, _config(32, mechanism=mechanism))
        slow = _run_direct(
            "health",
            Variant.L,
            _config(32, mechanism=mechanism, fast_path=False),
        )
        assert slow.checksum == fast.checksum
        assert slow.stats.dump() == fast.stats.dump()

    @pytest.mark.parametrize("mechanism", MECHANISMS[1:])
    def test_mechanism_never_changes_results(self, mechanism):
        baseline = _run_direct("mst", Variant.L, _config(32))
        mech = _run_direct("mst", Variant.L, _config(32, mechanism=mechanism))
        assert mech.checksum == baseline.checksum
        # Workload identity (instruction count, reference count) is
        # untouched; only the memory-system cost moves.
        assert mech.stats.instructions == baseline.stats.instructions
        assert mech.stats.loads.count == baseline.stats.loads.count
