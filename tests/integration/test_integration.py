"""Cross-module integration tests.

Each test exercises several subsystems together (machine + allocator +
forwarding + caches + timing) and checks the invariants that hold only
when they cooperate correctly.
"""

import pytest

from repro import (
    ForwardingProfiler,
    Machine,
    MachineConfig,
    NULL,
    PointerFixupTrap,
    final_address,
    list_linearize,
    ptr_eq,
    relocate,
)
from repro.cache.hierarchy import HierarchyConfig


@pytest.fixture
def m():
    return Machine()


def build_list(m, count, scatter=True):
    head_handle = m.malloc(8)
    slot = head_handle
    for value in range(count):
        node = m.malloc(16)
        if scatter:
            m.malloc(48)
        m.store(node, value)
        m.store(slot, node)
        slot = node + 8
    m.store(slot, NULL)
    return head_handle


class TestStatsConsistency:
    def test_reference_counts_match_hierarchy_accesses(self, m):
        """Every timed load/store goes through the cache exactly once
        (plus one access per forwarding hop and per ISA-extension op)."""
        addr = m.malloc(256)
        for index in range(16):
            m.store(addr + index * 8, index)
        for index in range(16):
            m.load(addr + index * 8)
        stats = m.stats()
        l1 = m.hierarchy.l1.stats
        mshr_combines = m.hierarchy.mshr.stats.combines
        # Partial misses call lookup twice (once via the partial path).
        assert l1.accesses + mshr_combines >= stats.loads.count + stats.stores.count

    def test_slot_breakdown_consistent_with_cycles(self, m):
        addr = m.malloc(1 << 12)
        for index in range(0, 1 << 12, 64):
            m.load(addr + index)
        m.execute(500)
        stats = m.stats()
        width = m.config.timing.width
        assert stats.slots.total == pytest.approx(stats.cycles * width, rel=0.01)

    def test_bandwidth_is_multiple_of_line_sizes(self, m):
        addr = m.malloc(1 << 13)
        for index in range(0, 1 << 13, 128):
            m.load(addr + index)
        traffic = m.hierarchy.traffic
        assert traffic.l1_l2_bytes % m.config.hierarchy.line_size == 0
        assert traffic.l2_mem_bytes % m.hierarchy.l2.line_size == 0


class TestRelocationLifecycle:
    def test_linearize_then_mutate_then_free_everything(self, m):
        """A full object lifecycle across relocation generations."""
        head_handle = build_list(m, 30)
        pool = m.create_pool(1 << 16)
        list_linearize(m, head_handle, 8, 16, pool)
        # Mutate through the (new) list, then unlink and free every node.
        node = m.load(head_handle)
        while node != NULL:
            m.store(node, m.load(node) + 1)
            node = m.load(node + 8)
        freed = 0
        node = m.load(head_handle)
        while node != NULL:
            next_node = m.load(node + 8)
            m.free(node)
            freed += 1
            node = next_node
        assert freed == 30

    def test_double_relocation_chain_semantics(self, m):
        """old -> mid -> new: all three aliases stay coherent."""
        obj = m.malloc(24)
        m.store(obj, 5)
        pool = m.create_pool(1 << 14)
        mid = pool.allocate(24)
        relocate(m, obj, mid, 3)
        new = pool.allocate(24)
        relocate(m, obj, new, 3)  # appends to the chain end
        m.store(mid + 8, 77)       # store via the middle alias
        assert m.load(obj + 8) == 77
        assert m.load(new + 8) == 77
        assert final_address(m, obj) == new
        assert ptr_eq(m, obj, mid) and ptr_eq(m, mid, new)

    def test_heap_reuse_after_forwarded_free(self, m):
        """Freed forwarding stubs are recycled as clean memory."""
        obj = m.malloc(16)
        target = m.create_pool(4096).allocate(16)
        relocate(m, obj, target, 2)
        m.free(obj)
        fresh = m.malloc(16)  # LIFO: same block back
        assert fresh == obj
        m.store(fresh, 123)
        assert m.load(fresh) == 123        # no forwarding anymore
        assert m.stats().forwarding_hops <= 1  # just bookkeeping walks


class TestTrapIntegration:
    def test_profile_then_fix_then_verify_silent(self, m):
        head_handle = build_list(m, 10, scatter=False)
        # A stray cursor into the middle of the list.
        cursor_cell = m.malloc(8)
        node = m.load(head_handle)
        node = m.load(node + 8)
        m.store(cursor_cell, node)

        pool = m.create_pool(1 << 14)
        list_linearize(m, head_handle, 8, 16, pool)

        profiler = ForwardingProfiler()
        m.set_trap_handler(profiler)
        assert m.load(m.load(cursor_cell)) == 1
        assert profiler.profile.events == 1

        def fixup(machine, event):
            if machine.load(cursor_cell) == event.initial_address:
                machine.store(cursor_cell, event.final_address)
                return True
            return False

        trap = PointerFixupTrap(fixup)
        m.set_trap_handler(trap)
        assert m.load(m.load(cursor_cell)) == 1
        assert trap.fixes == 1

        m.set_trap_handler(profiler)
        before = profiler.profile.events
        assert m.load(m.load(cursor_cell)) == 1
        assert profiler.profile.events == before  # silent: pointer fixed


class TestSpeculationIntegration:
    def test_flush_penalty_reflected_in_cycles(self):
        config = MachineConfig()
        with_spec = Machine(config)
        without = Machine(MachineConfig(speculation_window=0))
        for machine in (with_spec, without):
            obj = machine.malloc(16)
            pool = machine.create_pool(4096)
            target = pool.allocate(16)
            machine.store(obj, 1)
            relocate(machine, obj, target, 2)
            for _ in range(50):
                machine.store(obj, 2)      # forwarded store
                machine.load(target)       # collides at the final address
        assert with_spec.stats().misspeculations > 0
        assert without.stats().misspeculations == 0
        assert with_spec.cycles > without.cycles


class TestCacheGeometryEffects:
    def test_linearized_list_fits_fewer_lines(self):
        """End to end: linearization shrinks the traversal's line
        footprint, observable in cold-cache miss counts."""
        config = MachineConfig(hierarchy=HierarchyConfig(line_size=128))
        m = Machine(config)
        head_handle = build_list(m, 128)
        pool = m.create_pool(1 << 16)

        def cold_traversal_misses():
            # A large sweep evicts the list, making the next pass cold.
            flusher = m.malloc(1 << 16)
            for index in range(0, 1 << 16, 32):
                m.load(flusher + index)
            # Count full misses (= distinct lines fetched): with no
            # per-node work the traversal outruns the fills, so same-line
            # accesses classify as partial misses, not hits.
            before = m.stats().l1_load_misses_full
            node = m.load(head_handle)
            while node != NULL:
                m.load(node)
                node = m.load(node + 8)
            return m.stats().l1_load_misses_full - before

        scattered = cold_traversal_misses()
        list_linearize(m, head_handle, 8, 16, pool)
        linearized = cold_traversal_misses()
        assert linearized < scattered / 2
