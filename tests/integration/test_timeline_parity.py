"""Timeline invariants across execution modes (DESIGN.md §5d).

Three guarantees pinned here:

1. **Replay parity.**  A trace replay produces byte-for-byte the same
   window series and heatmap as the direct run that captured it -- the
   timeline is built solely from replay-faithful metrics, and both paths
   tick at the same points (data references, at their initial address).
2. **Non-perturbation.**  Enabling the sampler (or the event stream,
   which forces the general path) never changes simulated statistics or
   application checksums.
3. **Persistence.**  Timeline payloads survive the on-disk result cache
   round-trip, and the experiment runner folds them into schema-valid
   ``/v2`` manifests.
"""

import pytest

from repro.apps import get_application
from repro.apps.base import Variant
from repro.cache.hierarchy import HierarchyConfig
from repro.core.machine import MachineConfig
from repro.experiments.config import APP_SEEDS
from repro.trace.recorder import capture_trace
from repro.trace.replay import replay_trace

SCALE = 0.05
INTERVAL = 500

CASES = [
    pytest.param("health", Variant.L, 32, id="health-L-32B"),
    pytest.param("health", Variant.N, 32, id="health-N-32B"),
    pytest.param("mst", Variant.L, 64, id="mst-L-64B"),
]


def _config(line_size, **overrides):
    return MachineConfig(
        hierarchy=HierarchyConfig(line_size=line_size), **overrides
    )


def _run_direct(app_name, variant, line_size, **overrides):
    app = get_application(app_name, scale=SCALE, seed=APP_SEEDS[app_name])
    return app.run(variant, _config(line_size, **overrides))


class TestReplayParity:
    @pytest.mark.parametrize("app_name,variant,line_size", CASES)
    def test_replay_reproduces_direct_timeline(self, app_name, variant, line_size):
        config = _config(line_size, timeline_interval=INTERVAL)
        trace, direct = capture_trace(
            app_name, variant, config, SCALE, APP_SEEDS[app_name]
        )
        replayed = replay_trace(trace, config)
        assert direct.timeline is not None
        assert replayed.timeline is not None
        assert direct.timeline["window_count"] > 1, "workload too small to window"
        assert replayed.timeline["windows"] == direct.timeline["windows"]
        assert replayed.timeline["heatmap"] == direct.timeline["heatmap"]
        assert replayed.timeline == direct.timeline
        # Replay parity of the stats themselves (incl. the chain-length
        # histogram now carried through the trace format).
        assert replayed.stats.dump() == direct.stats.dump()

    def test_forwarding_chases_visible_in_windows(self):
        """The L variant's chain walks must actually show up somewhere."""
        config = _config(32, timeline_interval=INTERVAL)
        _, direct = capture_trace(
            "eqntott", Variant.L, config, SCALE, APP_SEEDS["eqntott"]
        )
        assert sum(direct.timeline["windows"]["chases"]) > 0
        heat = direct.timeline["heatmap"]["regions"]
        assert sum(entry["forwarded"] for entry in heat.values()) > 0


class TestNonPerturbation:
    @pytest.mark.parametrize("app_name,variant,line_size", CASES)
    def test_sampling_does_not_change_stats(self, app_name, variant, line_size):
        baseline = _run_direct(app_name, variant, line_size)
        sampled = _run_direct(
            app_name, variant, line_size, timeline_interval=INTERVAL
        )
        assert baseline.timeline is None
        assert sampled.checksum == baseline.checksum
        assert sampled.stats.dump() == baseline.stats.dump()

    def test_events_mode_stats_bit_exact(self):
        """Events force the general path; stats must not move."""
        baseline = _run_direct("eqntott", Variant.L, 32)
        evented = _run_direct(
            "eqntott", Variant.L, 32,
            timeline_interval=INTERVAL, events_capacity=256,
        )
        assert evented.checksum == baseline.checksum
        assert evented.stats.dump() == baseline.stats.dump()
        payload = evented.timeline["events"]
        assert payload["total"] > 0
        assert payload["counts"].get("fwd.walk", 0) > 0

    def test_chain_length_histogram_in_stats(self):
        result = _run_direct("eqntott", Variant.L, 32)
        hist = result.stats.forwarding_chain_hist
        assert hist, "L variant must walk forwarding chains"
        assert all(
            isinstance(hops, int) and hops >= 1 for hops in hist
        )
        snapshot = result.stats.to_snapshot()
        assert snapshot.get("fwd.chain_length") == hist


class TestPersistenceAndManifest:
    def test_result_cache_roundtrips_timeline(self, tmp_path):
        from repro.trace.store import ArtifactStore
        from repro.trace.sweep import SweepTask, run_task

        task = SweepTask(
            app="health", variant="L", line_size=32, scale=SCALE,
            seed=APP_SEEDS["health"], timeline_interval=INTERVAL,
        )
        store = ArtifactStore(str(tmp_path))
        first, how_first = run_task(task, store)
        assert how_first == "captured"
        second, how_second = run_task(task, store)
        assert how_second == "cached"
        assert second.timeline == first.timeline
        assert second.timeline is not None

    def test_sampled_and_unsampled_results_cached_separately(self, tmp_path):
        from repro.trace.store import ArtifactStore
        from repro.trace.sweep import SweepTask, run_task

        store = ArtifactStore(str(tmp_path))
        plain = SweepTask(
            app="health", variant="L", line_size=32, scale=SCALE,
            seed=APP_SEEDS["health"],
        )
        sampled = SweepTask(
            app="health", variant="L", line_size=32, scale=SCALE,
            seed=APP_SEEDS["health"], timeline_interval=INTERVAL,
        )
        run_task(plain, store)
        result, how = run_task(sampled, store)
        # Same trace (workload identity), different config fingerprint:
        # the sampled cell replays rather than hitting the plain result.
        assert how == "replayed"
        assert result.timeline is not None

    def test_events_cells_run_direct_even_with_warm_trace(self, tmp_path):
        """Replay can't observe discrete events, so --events re-runs direct."""
        from repro.trace.store import ArtifactStore
        from repro.trace.sweep import SweepTask, run_task

        store = ArtifactStore(str(tmp_path))
        plain = SweepTask(
            app="eqntott", variant="L", line_size=32, scale=SCALE,
            seed=APP_SEEDS["eqntott"],
        )
        run_task(plain, store)  # warms the trace
        evented = SweepTask(
            app="eqntott", variant="L", line_size=32, scale=SCALE,
            seed=APP_SEEDS["eqntott"],
            timeline_interval=INTERVAL, events_capacity=256,
        )
        result, how = run_task(evented, store)
        assert how == "captured"
        assert result.timeline["events"]["total"] > 0
        # And the direct re-run's result persists: next call is a hit.
        cached, how_cached = run_task(evented, store)
        assert how_cached == "cached"
        assert cached.timeline["events"] == result.timeline["events"]

    def test_runner_manifest_carries_timeline_section(self):
        from repro.experiments import ExperimentRunner
        from repro.obs import validate_manifest

        runner = ExperimentRunner(
            scale=SCALE, timeline_interval=INTERVAL, events_capacity=128
        )
        runner.run("health", Variant.L, 32)
        manifest = runner.manifest("probe")
        validate_manifest(manifest)
        cells = manifest["timeline"]["cells"]
        assert list(cells) == ["health/32B/L"]
        cell = cells["health/32B/L"]
        assert cell["sample_interval"] == INTERVAL
        assert cell["window_count"] == len(cell["windows"]["refs"])
        assert manifest["events"]["cells"]["health/32B/L"]["total"] > 0
        assert manifest["run"]["timeline_interval"] == INTERVAL

    def test_runner_without_timeline_omits_section(self):
        from repro.experiments import ExperimentRunner
        from repro.obs import validate_manifest

        runner = ExperimentRunner(scale=SCALE)
        runner.run("health", Variant.L, 32)
        manifest = runner.manifest("probe")
        validate_manifest(manifest)
        assert "timeline" not in manifest
        assert "events" not in manifest
