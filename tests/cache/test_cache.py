"""Unit tests for the set-associative cache tag array."""

import pytest

from repro.cache.cache import Cache


def make(size=1024, line=32, assoc=2, policy="lru"):
    return Cache(size, line, assoc, policy)


class TestGeometry:
    def test_sets_computed(self):
        cache = make(size=1024, line=32, assoc=2)
        assert cache.num_sets == 16

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            make(size=1000)
        with pytest.raises(ValueError):
            make(line=48)

    def test_rejects_bad_associativity(self):
        with pytest.raises(ValueError):
            make(size=1024, line=32, assoc=3)

    def test_rejects_cache_smaller_than_line(self):
        with pytest.raises(ValueError):
            Cache(16, 32, 1)

    def test_line_address(self):
        cache = make(line=64)
        assert cache.line_address(0) == 0
        assert cache.line_address(63) == 0
        assert cache.line_address(64) == 64
        assert cache.line_address(130) == 128


class TestLookupFill:
    def test_miss_then_hit(self):
        cache = make()
        assert not cache.lookup(0x100, False)
        cache.fill(0x100)
        assert cache.lookup(0x100, False)

    def test_same_line_hits_together(self):
        cache = make(line=32)
        cache.fill(0x100)
        assert cache.lookup(0x100 + 31, False)
        assert not cache.lookup(0x100 + 32, False)

    def test_stats_split_loads_and_stores(self):
        cache = make()
        cache.lookup(0, False)
        cache.fill(0)
        cache.lookup(0, True)
        stats = cache.stats
        assert stats.load_misses == 1
        assert stats.store_hits == 1
        assert stats.accesses == 2

    def test_fill_existing_line_no_eviction(self):
        cache = make()
        cache.fill(0x100)
        assert cache.fill(0x100) is None
        assert cache.resident_lines() == 1


class TestEviction:
    def test_lru_evicts_least_recent(self):
        cache = make(size=64, line=32, assoc=2)  # one set, 2 ways
        cache.fill(0)
        cache.fill(1024)
        cache.lookup(0, False)  # refresh line 0
        evicted = cache.fill(2048)
        assert evicted is not None
        assert evicted.line_address == 1024
        assert cache.contains(0)
        assert not cache.contains(1024)

    def test_dirty_bit_travels_with_eviction(self):
        cache = make(size=64, line=32, assoc=1)
        cache.fill(0, dirty=True)
        evicted = cache.fill(1024)
        assert evicted.dirty
        assert cache.stats.dirty_evictions == 1

    def test_store_hit_dirties_line(self):
        cache = make(size=64, line=32, assoc=1)
        cache.fill(0)
        cache.lookup(0, True)
        evicted = cache.fill(1024)
        assert evicted.dirty

    def test_conflict_misses_with_direct_mapped(self):
        """Two lines mapping to the same set thrash a direct-mapped cache."""
        cache = make(size=1024, line=32, assoc=1)
        a, b = 0x0, 0x400  # same index, different tags
        for _ in range(4):
            if not cache.lookup(a, False):
                cache.fill(a)
            if not cache.lookup(b, False):
                cache.fill(b)
        assert cache.stats.load_misses == 8  # no reuse survives

    def test_two_way_absorbs_that_conflict(self):
        cache = make(size=1024, line=32, assoc=2)
        a, b = 0x0, 0x400
        for _ in range(4):
            if not cache.lookup(a, False):
                cache.fill(a)
            if not cache.lookup(b, False):
                cache.fill(b)
        assert cache.stats.load_misses == 2  # only compulsory misses


class TestInvalidate:
    def test_invalidate_removes_line(self):
        cache = make()
        cache.fill(0x100)
        assert cache.invalidate(0x100)
        assert not cache.contains(0x100)

    def test_invalidate_absent_line(self):
        cache = make()
        assert not cache.invalidate(0x100)
