"""Unit tests for replacement policies."""

import pytest

from repro.cache.cache import Cache
from repro.cache.replacement import (
    FIFOPolicy,
    LRUPolicy,
    PseudoRandomPolicy,
    make_policy,
)


class TestFactory:
    @pytest.mark.parametrize("name,cls", [
        ("lru", LRUPolicy), ("fifo", FIFOPolicy), ("random", PseudoRandomPolicy),
    ])
    def test_make_policy(self, name, cls):
        assert isinstance(make_policy(name), cls)

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_policy("plru")


class TestLRU:
    def test_hit_moves_to_front(self):
        policy = LRUPolicy()
        cache_set = [[1, 0], [2, 0], [3, 0]]
        policy.on_hit(cache_set, 2)
        assert [entry[0] for entry in cache_set] == [3, 1, 2]

    def test_victim_is_last(self):
        policy = LRUPolicy()
        assert policy.victim_index([[1, 0], [2, 0]]) == 1


class TestFIFO:
    def test_hit_does_not_reorder(self):
        policy = FIFOPolicy()
        cache_set = [[1, 0], [2, 0]]
        policy.on_hit(cache_set, 1)
        assert [entry[0] for entry in cache_set] == [1, 2]

    def test_fifo_cache_differs_from_lru(self):
        """A pattern where refreshing matters: LRU keeps the hot line."""
        lru = Cache(64, 32, 2, "lru")
        fifo = Cache(64, 32, 2, "fifo")
        for cache in (lru, fifo):
            cache.fill(0x0)
            cache.fill(0x400)
            cache.lookup(0x0, False)   # refresh 0x0 (LRU only)
            cache.fill(0x800)
        assert lru.contains(0x0)
        assert not fifo.contains(0x0)


class TestPseudoRandom:
    def test_deterministic_sequence(self):
        a = PseudoRandomPolicy(seed=42)
        b = PseudoRandomPolicy(seed=42)
        cache_set = [[i, 0] for i in range(8)]
        seq_a = [a.victim_index(cache_set) for _ in range(20)]
        seq_b = [b.victim_index(cache_set) for _ in range(20)]
        assert seq_a == seq_b

    def test_victims_in_range(self):
        policy = PseudoRandomPolicy()
        cache_set = [[i, 0] for i in range(4)]
        for _ in range(100):
            assert 0 <= policy.victim_index(cache_set) < 4

    def test_zero_seed_survives(self):
        policy = PseudoRandomPolicy(seed=0)
        assert 0 <= policy.victim_index([[0, 0], [1, 0]]) < 2
