"""Unit tests for replacement policies."""

import pytest

from repro.cache.cache import Cache
from repro.cache.replacement import (
    FIFOPolicy,
    LRUPolicy,
    PseudoRandomPolicy,
    make_policy,
)


class TestFactory:
    @pytest.mark.parametrize("name,cls", [
        ("lru", LRUPolicy), ("fifo", FIFOPolicy), ("random", PseudoRandomPolicy),
    ])
    def test_make_policy(self, name, cls):
        assert isinstance(make_policy(name), cls)

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_policy("plru")


class TestLRU:
    def test_hit_moves_to_front(self):
        policy = LRUPolicy()
        cache_set = [[1, 0], [2, 0], [3, 0]]
        policy.on_hit(cache_set, 2)
        assert [entry[0] for entry in cache_set] == [3, 1, 2]

    def test_victim_is_last(self):
        policy = LRUPolicy()
        assert policy.victim_index([[1, 0], [2, 0]]) == 1


class TestFIFO:
    def test_hit_does_not_reorder(self):
        policy = FIFOPolicy()
        cache_set = [[1, 0], [2, 0]]
        policy.on_hit(cache_set, 1)
        assert [entry[0] for entry in cache_set] == [1, 2]

    def test_fifo_cache_differs_from_lru(self):
        """A pattern where refreshing matters: LRU keeps the hot line."""
        lru = Cache(64, 32, 2, "lru")
        fifo = Cache(64, 32, 2, "fifo")
        for cache in (lru, fifo):
            cache.fill(0x0)
            cache.fill(0x400)
            cache.lookup(0x0, False)   # refresh 0x0 (LRU only)
            cache.fill(0x800)
        assert lru.contains(0x0)
        assert not fifo.contains(0x0)


class TestPseudoRandom:
    def test_deterministic_sequence(self):
        a = PseudoRandomPolicy(seed=42)
        b = PseudoRandomPolicy(seed=42)
        cache_set = [[i, 0] for i in range(8)]
        seq_a = [a.victim_index(cache_set) for _ in range(20)]
        seq_b = [b.victim_index(cache_set) for _ in range(20)]
        assert seq_a == seq_b

    def test_victims_in_range(self):
        policy = PseudoRandomPolicy()
        cache_set = [[i, 0] for i in range(4)]
        for _ in range(100):
            assert 0 <= policy.victim_index(cache_set) < 4

    def test_zero_seed_survives(self):
        policy = PseudoRandomPolicy(seed=0)
        assert 0 <= policy.victim_index([[0, 0], [1, 0]]) < 2


class TestCacheVictimSelection:
    """End-to-end victim behaviour of the flat-array Cache itself."""

    def test_lru_evicts_least_recently_used(self):
        cache = Cache(64, 32, 2, "lru")
        cache.fill(0x0)
        cache.fill(0x400)
        cache.lookup(0x0, False)        # 0x400 becomes LRU
        evicted = cache.fill(0x800)
        assert evicted is not None
        assert evicted.line_address == 0x400
        assert cache.contains(0x0)

    def test_fifo_evicts_oldest_fill(self):
        cache = Cache(64, 32, 2, "fifo")
        cache.fill(0x0)
        cache.fill(0x400)
        cache.lookup(0x0, False)        # hit must NOT refresh under FIFO
        evicted = cache.fill(0x800)
        assert evicted is not None
        assert evicted.line_address == 0x0

    def test_random_matches_reference_policy_sequence(self):
        """Cache's inlined xorshift tracks PseudoRandomPolicy exactly."""
        cache = Cache(128, 32, 4, "random")
        reference = PseudoRandomPolicy()
        for way in range(4):            # fill one set: lines 0,1,2,3 of set 0
            cache.fill(way * 128)
        filled = [3 * 128, 2 * 128, 1 * 128, 0]   # front-insertion order
        for step in range(10):
            victim_slot = reference.victim_index([[i, 0] for i in range(4)])
            expected_victim = filled[victim_slot]
            new_line = (step + 4) * 128
            evicted = cache.fill(new_line)
            assert evicted is not None
            assert evicted.line_address == expected_victim
            filled.pop(victim_slot)
            filled.insert(0, new_line)

    def test_random_victims_deterministic_across_instances(self):
        results = []
        for _ in range(2):
            cache = Cache(128, 32, 4, "random")
            for way in range(4):
                cache.fill(way * 128)
            results.append(
                [cache.fill((step + 4) * 128).line_address for step in range(8)]
            )
        assert results[0] == results[1]

    def test_dirty_victim_reported(self):
        cache = Cache(64, 32, 2, "lru")
        cache.fill(0x0, dirty=True)
        cache.fill(0x400)
        cache.fill(0x800)               # evicts dirty 0x0
        evicted = cache.fill(0xC00)     # evicts clean 0x400... after reorder
        assert cache.stats.evictions == 2
        assert cache.stats.dirty_evictions == 1


class TestInvalidate:
    def test_invalidate_present_line(self):
        cache = Cache(64, 32, 2, "lru")
        cache.fill(0x0)
        cache.fill(0x400)
        assert cache.invalidate(0x0)
        assert not cache.contains(0x0)
        assert cache.contains(0x400)

    def test_invalidate_absent_line(self):
        cache = Cache(64, 32, 2, "lru")
        cache.fill(0x0)
        assert not cache.invalidate(0x800)
        assert cache.contains(0x0)

    def test_invalidate_middle_preserves_order(self):
        """Removing a middle slot closes the gap without reordering."""
        cache = Cache(128, 32, 4, "lru")
        for way in range(4):
            cache.fill(way * 128)       # order: 384, 256, 128, 0
        assert cache.invalidate(256)
        # The freed way refills without eviction; after that the fills
        # evict 0 then 128 (the LRU tail), never the MRU line 384.
        assert cache.fill(4 * 128) is None
        assert cache.fill(5 * 128).line_address == 0
        assert cache.fill(6 * 128).line_address == 128
        assert cache.contains(384)

    def test_refill_after_invalidate(self):
        cache = Cache(64, 32, 2, "lru")
        cache.fill(0x0, dirty=True)
        cache.invalidate(0x0)
        assert cache.fill(0x0) is None  # set has room again
        assert cache.contains(0x0)


class TestResidentLines:
    def test_counts_fills(self):
        cache = Cache(128, 32, 4, "lru")
        assert cache.resident_lines() == 0
        cache.fill(0x0)
        cache.fill(0x20)
        assert cache.resident_lines() == 2
        cache.fill(0x0)                 # refill of a present line: no change
        assert cache.resident_lines() == 2

    def test_capped_by_capacity(self):
        cache = Cache(64, 32, 2, "lru")
        for i in range(10):
            cache.fill(i * 32)
        assert cache.resident_lines() == 2

    def test_drops_on_invalidate(self):
        cache = Cache(64, 32, 2, "lru")
        cache.fill(0x0)
        cache.fill(0x400)
        cache.invalidate(0x0)
        assert cache.resident_lines() == 1
