"""Unit tests for the two-level hierarchy: classification and bandwidth."""

import pytest

from repro.cache.hierarchy import (
    AccessKind,
    HierarchyConfig,
    MemoryHierarchy,
)


def make(line=32, l1=1024, l2=8192, mshrs=8, l2_line=None):
    config = HierarchyConfig(
        line_size=line, l1_size=l1, l1_assoc=2, l2_size=l2, l2_assoc=4,
        mshr_capacity=mshrs, l2_line_size=l2_line if l2_line else line,
    )
    return MemoryHierarchy(config)


class TestClassification:
    def test_cold_miss_goes_to_memory(self):
        h = make()
        result = h.access(0x1000, False, 0.0)
        assert result.kind is AccessKind.MEMORY
        assert result.ready == pytest.approx(h.config.full_miss_latency)

    def test_hit_after_fill(self):
        h = make()
        h.access(0x1000, False, 0.0)
        result = h.access(0x1008, False, 200.0)
        assert result.kind is AccessKind.L1_HIT
        assert result.ready == pytest.approx(201.0)

    def test_l2_hit_after_l1_eviction(self):
        h = make(l1=64, line=32)  # tiny L1: 2 lines, 2-way, 1 set
        h.access(0x0, False, 0.0)
        h.access(0x1000, False, 200.0)
        h.access(0x2000, False, 400.0)  # evicts 0x0 from L1, still in L2
        result = h.access(0x0, False, 600.0)
        assert result.kind is AccessKind.L2_HIT
        assert result.ready == pytest.approx(600.0 + h.config.l2_fill_latency)

    def test_partial_miss_combines_with_inflight_fill(self):
        h = make()
        first = h.access(0x1000, False, 0.0)
        second = h.access(0x1010, False, 10.0)  # same line, still in flight
        assert second.kind is AccessKind.PARTIAL
        assert second.ready == first.ready
        assert h.miss_classes.load_partial == 1
        assert h.miss_classes.load_full == 1

    def test_partial_miss_residual_shrinks_over_time(self):
        h = make()
        first = h.access(0x1000, False, 0.0)
        later = h.access(0x1018, False, first.ready - 1.0)
        assert later.kind is AccessKind.PARTIAL
        assert later.ready - (first.ready - 1.0) == pytest.approx(1.0)

    def test_store_misses_classified_separately(self):
        h = make()
        h.access(0x1000, True, 0.0)
        h.access(0x1008, True, 1.0)
        assert h.miss_classes.store_full == 1
        assert h.miss_classes.store_partial == 1
        assert h.miss_classes.load_misses == 0


class TestBandwidth:
    def test_memory_fill_counts_both_interfaces(self):
        h = make(line=32, l2_line=128)
        h.access(0x1000, False, 0.0)
        assert h.traffic.l1_l2_fill_bytes == 32    # one L1 line
        assert h.traffic.l2_mem_fill_bytes == 128  # one (longer) L2 line

    def test_l2_hit_fill_counts_only_l1_interface(self):
        h = make(l1=64, line=32)
        h.access(0x0, False, 0.0)
        h.access(0x1000, False, 200.0)
        h.access(0x2000, False, 400.0)
        before = h.traffic.l2_mem_fill_bytes
        h.access(0x0, False, 600.0)  # L2 hit
        assert h.traffic.l2_mem_fill_bytes == before
        assert h.traffic.l1_l2_fill_bytes == 4 * 32

    def test_dirty_l1_eviction_counts_writeback(self):
        h = make(l1=64, line=32)
        h.access(0x0, True, 0.0)          # dirty line 0
        h.access(0x1000, False, 200.0)
        h.access(0x2000, False, 400.0)    # evicts dirty 0x0
        assert h.traffic.l1_l2_writeback_bytes == 32

    def test_line_size_scales_bandwidth(self):
        """One access moves one L1 line inward, one L2 line from memory."""
        for line in (32, 64, 128):
            h = make(line=line, l2_line=128)
            h.access(0x1000, False, 0.0)
            assert h.traffic.l1_l2_bytes == line
            assert h.traffic.l2_mem_bytes == 128


class TestPrefetch:
    def test_prefetch_fills_line(self):
        h = make()
        assert h.prefetch(0x1000, 0.0)
        # Demand access during flight combines (partial).
        result = h.access(0x1008, False, 5.0)
        assert result.kind is AccessKind.PARTIAL

    def test_prefetch_after_completion_gives_hit(self):
        h = make()
        h.prefetch(0x1000, 0.0)
        result = h.access(0x1000, False, 500.0)
        assert result.kind is AccessKind.L1_HIT

    def test_redundant_prefetch_not_counted_as_fill(self):
        h = make()
        h.access(0x1000, False, 0.0)
        assert not h.prefetch(0x1000, 500.0)
        assert h.prefetch_redundant == 1
        assert h.prefetch_fills == 0

    def test_prefetch_consumes_bandwidth(self):
        h = make(line=64)
        h.prefetch(0x1000, 0.0)
        assert h.traffic.l1_l2_bytes == 64


class TestInclusion:
    def test_l2_eviction_invalidates_l1(self):
        """Inclusive hierarchy: dropping a line from L2 drops it from L1."""
        h = make(l1=4096, l2=128, line=32)  # pathological: L2 of 4 lines
        h.access(0x0, False, 0.0)
        # Touch enough distinct lines mapping over tiny L2 to evict 0x0.
        for index in range(1, 9):
            h.access(index * 0x1000, False, index * 200.0)
        assert not h.l2.contains(0x0)
        assert not h.l1.contains(0x0)

    def test_l2_eviction_invalidates_all_contained_l1_lines(self):
        """With longer L2 lines, eviction drops every covered L1 line."""
        h = make(l1=4096, l2=512, line=32, l2_line=128)  # L2 of 4 lines
        h.access(0x0, False, 0.0)
        h.access(0x20, False, 200.0)
        h.access(0x40, False, 400.0)
        for index in range(1, 9):
            h.access(index * 0x1000, False, 1000.0 * index)
        assert not h.l2.contains(0x0)
        for offset in (0x0, 0x20, 0x40):
            assert not h.l1.contains(offset)

    def test_reset_stats_keeps_contents(self):
        h = make()
        h.access(0x1000, False, 0.0)
        h.reset_stats()
        assert h.traffic.total_bytes == 0
        result = h.access(0x1000, False, 500.0)
        assert result.kind is AccessKind.L1_HIT
