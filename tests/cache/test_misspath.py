"""Unit semantics of the miss-path stages (repro.cache.misspath)."""

import pytest

from repro.cache.hierarchy import AccessKind, HierarchyConfig, MemoryHierarchy
from repro.cache.misspath import (
    KNOB_MECHANISMS,
    MECHANISMS,
    MissCache,
    MissPath,
    StreamBuffers,
    VictimCache,
    build_misspath,
)


def _hierarchy(**overrides):
    return MemoryHierarchy(HierarchyConfig(**overrides))


class TestBuild:
    def test_none_builds_nothing(self):
        assert build_misspath(HierarchyConfig()) is None
        assert _hierarchy().misspath is None

    @pytest.mark.parametrize("mechanism", MECHANISMS[1:])
    def test_each_mechanism_builds(self, mechanism):
        path = build_misspath(HierarchyConfig(mechanism=mechanism))
        assert isinstance(path, MissPath)
        assert path.mechanism == mechanism

    def test_unknown_mechanism_rejected(self):
        with pytest.raises(ValueError, match="unknown miss-path mechanism"):
            build_misspath(HierarchyConfig(mechanism="teleporter"))

    @pytest.mark.parametrize(
        "knobs",
        [
            {"mechanism": "victim_cache", "vc_entries": 0},
            {"mechanism": "miss_cache", "mc_entries": 0},
            {"mechanism": "stream_buffers", "sb_count": 0},
            {"mechanism": "stream_buffers", "sb_depth": 0},
        ],
    )
    def test_bad_knobs_rejected(self, knobs):
        with pytest.raises(ValueError):
            build_misspath(HierarchyConfig(**knobs))

    def test_stage_composition(self):
        combined = build_misspath(HierarchyConfig(mechanism="combined"))
        assert combined.victim is not None
        assert combined.streams is not None
        assert combined.miss is None  # Jouppi: VC supersedes MC
        vc_only = build_misspath(HierarchyConfig(mechanism="victim_cache"))
        assert vc_only.victim is not None
        assert vc_only.streams is None

    def test_knob_relevance_map_covers_real_mechanisms(self):
        for knob, users in KNOB_MECHANISMS.items():
            for mechanism in users:
                assert mechanism in MECHANISMS


class TestVictimCache:
    def test_probe_consumes_and_preserves_dirty(self):
        vc = VictimCache(4)
        vc.insert(0x100, dirty=1)
        vc.insert(0x200, dirty=0)
        assert vc.probe(0x100) == 1
        assert vc.probe(0x100) is None  # consumed by the swap
        assert vc.probe(0x200) == 0

    def test_lru_spill_order(self):
        vc = VictimCache(2)
        assert vc.insert(0x100, 0) is None
        assert vc.insert(0x200, 1) is None
        spilled = vc.insert(0x300, 0)
        assert spilled == (0x100, 0)  # oldest entry spills first

    def test_invalidate_and_flush(self):
        vc = VictimCache(4)
        vc.insert(0x100, 1)
        vc.insert(0x200, 0)
        assert vc.invalidate(0x100)
        assert not vc.invalidate(0x100)
        assert vc.flush() == 1
        assert vc.resident_lines() == []


class TestMissCache:
    def test_probe_is_non_consuming(self):
        mc = MissCache(4)
        mc.insert(0x100)
        assert mc.probe(0x100) == 0
        assert mc.probe(0x100) == 0  # still there

    def test_probe_refreshes_recency(self):
        mc = MissCache(2)
        mc.insert(0x100)
        mc.insert(0x200)
        mc.probe(0x100)  # 0x100 becomes MRU, so 0x200 evicts first
        mc.insert(0x300)
        assert mc.probe(0x200) is None
        assert mc.probe(0x100) == 0

    def test_reinsert_does_not_duplicate(self):
        mc = MissCache(4)
        mc.insert(0x100)
        mc.insert(0x100)
        assert mc.resident_lines() == [0x100]


class TestStreamBuffers:
    def test_allocate_then_sequential_hits(self):
        sb = StreamBuffers(count=2, depth=4, line_size=32)
        sb.allocate(0x100)  # streams 0x120, 0x140, 0x160, 0x180
        hit, issued = sb.probe(0x120)
        assert hit and issued == 1
        hit, _ = sb.probe(0x140)
        assert hit
        assert 0x1A0 in sb.resident_lines()  # tail kept extended

    def test_head_only_comparator(self):
        sb = StreamBuffers(count=1, depth=4, line_size=32)
        sb.allocate(0x100)
        hit, _ = sb.probe(0x160)  # in the buffer, but not at the head
        assert not hit

    def test_lru_buffer_reallocated(self):
        sb = StreamBuffers(count=2, depth=2, line_size=32)
        sb.allocate(0x100)
        sb.allocate(0x1000)
        sb.allocate(0x2000)  # replaces the 0x100 stream (LRU)
        resident = sb.resident_lines()
        assert 0x120 not in resident
        assert 0x2020 in resident

    def test_invalidate_clears_containing_buffer(self):
        sb = StreamBuffers(count=2, depth=4, line_size=32)
        sb.allocate(0x100)
        assert sb.invalidate(0x140)
        assert all(line < 0x100 or line > 0x180 for line in sb.resident_lines())


class TestHierarchyIntegration:
    def test_victim_cache_turns_conflict_miss_into_misspath_hit(self):
        # Two lines mapping to the same L1 set ping-pong; with a victim
        # cache the second round trip is served beside L1.
        h = _hierarchy(mechanism="victim_cache", l1_size=1024, l1_assoc=1)
        sets = h.l1.num_sets
        a, b = 0x0, sets * 32  # same set, different tags
        now = 0.0
        for address in (a, b, a, b, a):
            result = h.access(address, False, now)
            now = result.ready + 100.0  # let fills complete
        stats = h.misspath.stats_dict()
        assert stats["vc.hits"] > 0
        assert stats["hits"] == stats["vc.hits"]

    def test_misspath_kind_is_still_a_miss(self):
        h = _hierarchy(mechanism="victim_cache", l1_size=1024, l1_assoc=1)
        sets = h.l1.num_sets
        a, b = 0x0, sets * 32
        now = 0.0
        kinds = []
        for address in (a, b, a, b, a):
            result = h.access(address, False, now)
            kinds.append(result.kind)
            now = result.ready + 100.0
        assert AccessKind.MISS_PATH in kinds
        index = kinds.index(AccessKind.MISS_PATH)
        assert AccessKind(kinds[index]).value == "misspath"

    def test_misspath_hit_latency_and_no_l2_touch(self):
        h = _hierarchy(mechanism="victim_cache", l1_size=1024, l1_assoc=1)
        cfg = h.config
        sets = h.l1.num_sets
        a, b = 0x0, sets * 32
        now = 0.0
        for address in (a, b):
            now = h.access(address, False, now).ready + 100.0
        l2_lookups_before = h.l2.stats.load_hits + h.l2.stats.load_misses
        fill_bytes_before = h.traffic.l1_l2_fill_bytes
        result = h.access(a, False, now)  # VC hit (a was evicted by b)
        assert result.kind is AccessKind.MISS_PATH
        assert result.ready == pytest.approx(
            now + cfg.l1_hit_latency + cfg.misspath_hit_latency
        )
        assert h.l2.stats.load_hits + h.l2.stats.load_misses == l2_lookups_before
        assert h.traffic.l1_l2_fill_bytes == fill_bytes_before

    def test_clean_vc_spill_moves_no_bytes(self):
        h = _hierarchy(mechanism="victim_cache", vc_entries=1,
                       l1_size=1024, l1_assoc=1)
        sets = h.l1.num_sets
        now = 0.0
        before = h.traffic.l1_l2_writeback_bytes
        for i in range(4):  # clean loads spilling through a 1-entry VC
            now = h.access(i * sets * 32, False, now).ready + 100.0
        assert h.traffic.l1_l2_writeback_bytes == before

    def test_dirty_vc_spill_writes_back(self):
        h = _hierarchy(mechanism="victim_cache", vc_entries=1,
                       l1_size=1024, l1_assoc=1)
        sets = h.l1.num_sets
        now = 0.0
        for i in range(4):  # dirty stores must eventually write back
            now = h.access(i * sets * 32, True, now).ready + 100.0
        assert h.traffic.l1_l2_writeback_bytes > 0
        assert h.misspath.stats_dict()["vc.writebacks"] > 0

    def test_miss_cache_inserts_on_fill(self):
        h = _hierarchy(mechanism="miss_cache")
        h.access(0x0, False, 0.0)
        stats = h.misspath.stats_dict()
        assert stats["mc.inserts"] == 1
        assert 0x0 in h.misspath.miss.resident_lines()

    def test_stream_buffer_absorbs_sequential_walk(self):
        h = _hierarchy(mechanism="stream_buffers")
        now = 0.0
        for i in range(32):  # sequential line walk
            now = h.access(i * 32, False, now).ready + 300.0
        stats = h.misspath.stats_dict()
        assert stats["sb.hits"] > 20  # nearly every miss after the first

    def test_reset_stats_keeps_bound_getters(self):
        from repro.obs import Registry

        h = _hierarchy(mechanism="combined")
        registry = Registry()
        h.register_metrics(registry)
        h.access(0x0, False, 0.0)
        assert registry.snapshot()["cache.misspath.probes"] == 1
        h.reset_stats()
        assert registry.snapshot()["cache.misspath.probes"] == 0

    def test_flush_empties_every_stage(self):
        h = _hierarchy(mechanism="combined")
        now = 0.0
        for i in range(8):
            now = h.access(i * 4096, False, now).ready + 100.0
        assert h.misspath.flush() > 0
        assert h.misspath.stats_dict()["flushes"] == 1
        assert h.misspath.victim.resident_lines() == []
        assert h.misspath.streams.resident_lines() == []

    def test_stats_dict_key_set_is_stable(self):
        h = _hierarchy(mechanism="victim_cache")
        keys = set(h.misspath.stats_dict())
        assert {"probes", "hits", "vc.hits", "sb.hits", "mc.hits"} <= keys
