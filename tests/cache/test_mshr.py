"""Unit tests for the MSHR file (miss combining and capacity stalls)."""

import pytest

from repro.cache.mshr import MSHRFile


class TestInflightTracking:
    def test_lookup_misses_when_empty(self):
        mshr = MSHRFile(4)
        assert mshr.lookup(0x100, now=0.0) is None

    def test_allocate_then_lookup(self):
        mshr = MSHRFile(4)
        ready = mshr.allocate(0x100, now=10.0, latency=50.0)
        assert ready == 60.0
        assert mshr.lookup(0x100, now=30.0) == 60.0

    def test_completed_fill_expires(self):
        mshr = MSHRFile(4)
        mshr.allocate(0x100, now=0.0, latency=10.0)
        assert mshr.lookup(0x100, now=10.0) is None

    def test_combine_counts(self):
        mshr = MSHRFile(4)
        mshr.allocate(0x100, now=0.0, latency=100.0)
        ready = mshr.combine(0x100, now=20.0)
        assert ready == 100.0
        assert mshr.stats.combines == 1

    def test_occupancy(self):
        mshr = MSHRFile(4)
        mshr.allocate(0x100, 0.0, 100.0)
        mshr.allocate(0x200, 0.0, 50.0)
        assert mshr.occupancy(0.0) == 2
        assert mshr.occupancy(60.0) == 1
        assert mshr.occupancy(200.0) == 0


class TestCapacity:
    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            MSHRFile(0)

    def test_full_file_delays_new_fill(self):
        mshr = MSHRFile(2)
        mshr.allocate(0x100, 0.0, 100.0)   # ready 100
        mshr.allocate(0x200, 0.0, 80.0)    # ready 80
        # Third fill must wait for the earliest completion (80).
        ready = mshr.allocate(0x300, now=10.0, latency=50.0)
        assert ready == 130.0
        assert mshr.stats.full_stalls == 1
        assert mshr.stats.full_stall_cycles == pytest.approx(70.0)

    def test_expired_entries_free_capacity(self):
        mshr = MSHRFile(1)
        mshr.allocate(0x100, 0.0, 10.0)
        ready = mshr.allocate(0x200, now=20.0, latency=10.0)
        assert ready == 30.0
        assert mshr.stats.full_stalls == 0

    def test_reset_clears_inflight(self):
        mshr = MSHRFile(2)
        mshr.allocate(0x100, 0.0, 100.0)
        mshr.reset()
        assert mshr.lookup(0x100, 1.0) is None
