"""The on-disk artifact store: keys, round-trips, corruption handling."""

from dataclasses import replace

from repro.apps.base import Variant
from repro.experiments.config import experiment_config
from repro.trace import (
    ArtifactStore,
    capture_trace,
    config_fingerprint,
    trace_key,
)


class TestKeys:
    def test_trace_key_is_stable(self):
        assert trace_key("mst", "N", 0.5, 1, None) == trace_key(
            "mst", "N", 0.5, 1, None
        )

    def test_trace_key_separates_identities(self):
        base = trace_key("mst", "N", 0.5, 1, None)
        assert trace_key("health", "N", 0.5, 1, None) != base
        assert trace_key("mst", "L", 0.5, 1, None) != base
        assert trace_key("mst", "N", 0.25, 1, None) != base
        assert trace_key("mst", "N", 0.5, 2, None) != base
        assert trace_key("mst", "N", 0.5, 1, 64) != base

    def test_config_fingerprint_tracks_every_field(self):
        config = experiment_config(64)
        assert config_fingerprint(config) == config_fingerprint(
            experiment_config(64)
        )
        assert config_fingerprint(config) != config_fingerprint(
            experiment_config(32)
        )
        tweaked = replace(config, speculation_window=config.speculation_window + 1)
        assert config_fingerprint(tweaked) != config_fingerprint(config)


class TestStore:
    def test_trace_roundtrip(self, tmp_path):
        store = ArtifactStore(tmp_path)
        trace, _ = capture_trace(
            "mst", Variant.N, experiment_config(64), 0.05, seed=1
        )
        key = trace_key("mst", "N", 0.05, 1, None)
        assert store.load_trace(key) is None
        store.save_trace(key, trace)
        assert store.has_trace(key)
        assert store.load_trace(key) == trace

    def test_corrupt_trace_is_a_miss(self, tmp_path):
        store = ArtifactStore(tmp_path)
        key = trace_key("mst", "N", 0.05, 1, None)
        store.trace_path(key).write_bytes(b"not a trace at all")
        assert store.load_trace(key) is None

    def test_result_roundtrip(self, tmp_path):
        store = ArtifactStore(tmp_path)
        config = experiment_config(64)
        trace, result = capture_trace(
            "mst", Variant.N, config, 0.05, seed=1
        )
        fingerprint = config_fingerprint(config)
        assert store.load_result(trace.content_hash, fingerprint) is None
        store.save_result(trace.content_hash, fingerprint, result)
        loaded = store.load_result(trace.content_hash, fingerprint)
        assert loaded is not None
        assert loaded.app == result.app
        assert loaded.variant == result.variant
        assert loaded.checksum == result.checksum
        assert loaded.extras == result.extras
        assert loaded.stats.dump() == result.stats.dump()

    def test_corrupt_result_is_a_miss(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.result_path("a" * 64, "b" * 64).write_text("{]")
        assert store.load_result("a" * 64, "b" * 64) is None
