"""The on-disk artifact store: keys, round-trips, corruption handling."""

import json
import os
import threading
import time
from dataclasses import replace

import pytest

from repro.apps.base import Variant
from repro.experiments.config import experiment_config
from repro.trace import (
    ArtifactStore,
    LockTimeout,
    capture_trace,
    config_fingerprint,
    trace_key,
)
from repro.trace.store import STALE_AFTER_SECONDS, _atomic_write


class TestKeys:
    def test_trace_key_is_stable(self):
        assert trace_key("mst", "N", 0.5, 1, None) == trace_key(
            "mst", "N", 0.5, 1, None
        )

    def test_trace_key_separates_identities(self):
        base = trace_key("mst", "N", 0.5, 1, None)
        assert trace_key("health", "N", 0.5, 1, None) != base
        assert trace_key("mst", "L", 0.5, 1, None) != base
        assert trace_key("mst", "N", 0.25, 1, None) != base
        assert trace_key("mst", "N", 0.5, 2, None) != base
        assert trace_key("mst", "N", 0.5, 1, 64) != base

    def test_config_fingerprint_tracks_every_field(self):
        config = experiment_config(64)
        assert config_fingerprint(config) == config_fingerprint(
            experiment_config(64)
        )
        assert config_fingerprint(config) != config_fingerprint(
            experiment_config(32)
        )
        tweaked = replace(config, speculation_window=config.speculation_window + 1)
        assert config_fingerprint(tweaked) != config_fingerprint(config)


class TestStore:
    def test_trace_roundtrip(self, tmp_path):
        store = ArtifactStore(tmp_path)
        trace, _ = capture_trace(
            "mst", Variant.N, experiment_config(64), 0.05, seed=1
        )
        key = trace_key("mst", "N", 0.05, 1, None)
        assert store.load_trace(key) is None
        store.save_trace(key, trace)
        assert store.has_trace(key)
        assert store.load_trace(key) == trace

    def test_corrupt_trace_is_a_miss(self, tmp_path):
        store = ArtifactStore(tmp_path)
        key = trace_key("mst", "N", 0.05, 1, None)
        store.trace_path(key).write_bytes(b"not a trace at all")
        assert store.load_trace(key) is None

    def test_result_roundtrip(self, tmp_path):
        store = ArtifactStore(tmp_path)
        config = experiment_config(64)
        trace, result = capture_trace(
            "mst", Variant.N, config, 0.05, seed=1
        )
        fingerprint = config_fingerprint(config)
        assert store.load_result(trace.content_hash, fingerprint) is None
        store.save_result(trace.content_hash, fingerprint, result)
        loaded = store.load_result(trace.content_hash, fingerprint)
        assert loaded is not None
        assert loaded.app == result.app
        assert loaded.variant == result.variant
        assert loaded.checksum == result.checksum
        assert loaded.extras == result.extras
        assert loaded.stats.dump() == result.stats.dump()

    def test_corrupt_result_is_a_miss(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.result_path("a" * 64, "b" * 64).write_text("{]")
        assert store.load_result("a" * 64, "b" * 64) is None


class TestConcurrency:
    """Advisory capture locks and stale-artifact sweeping."""

    def test_capture_lock_creates_and_releases(self, tmp_path):
        store = ArtifactStore(tmp_path)
        key = "k" * 64
        with store.capture_lock(key) as path:
            assert path.exists()
            owner = json.loads(path.read_text())
            assert owner["pid"] == os.getpid()
        assert not store.lock_path(key).exists()

    def test_capture_lock_released_on_error(self, tmp_path):
        store = ArtifactStore(tmp_path)
        with pytest.raises(RuntimeError):
            with store.capture_lock("k" * 64):
                raise RuntimeError("capture blew up")
        assert not store.lock_path("k" * 64).exists()

    def test_live_contender_times_out(self, tmp_path):
        store = ArtifactStore(tmp_path)
        key = "k" * 64
        with store.capture_lock(key):
            with pytest.raises(LockTimeout):
                with store.capture_lock(key, timeout=0.2, poll_interval=0.01):
                    pass  # pragma: no cover - lock must not be granted

    def test_dead_owner_lock_is_broken(self, tmp_path):
        store = ArtifactStore(tmp_path)
        key = "k" * 64
        # Forge a lock owned by a pid that cannot be alive.
        store.lock_path(key).write_text(
            json.dumps({"pid": 2**22 + 1, "acquired": time.time()})
        )
        with store.capture_lock(key, timeout=1.0, poll_interval=0.01) as path:
            assert json.loads(path.read_text())["pid"] == os.getpid()

    def test_aged_lock_is_broken_even_with_live_owner(self, tmp_path):
        store = ArtifactStore(tmp_path, stale_after=0.05)
        key = "k" * 64
        path = store.lock_path(key)
        path.write_text(json.dumps({"pid": os.getpid(), "acquired": 0}))
        old = time.time() - 10.0
        os.utime(path, (old, old))
        with store.capture_lock(key, timeout=1.0, poll_interval=0.01):
            pass

    def test_atomic_write_leaves_no_tmp_on_failure(self, tmp_path, monkeypatch):
        store = ArtifactStore(tmp_path)
        target = store.traces_dir / "x.trace"

        def _fail_replace(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr(os, "replace", _fail_replace)
        with pytest.raises(OSError, match="disk full"):
            _atomic_write(target, b"payload")
        monkeypatch.undo()
        # The failed write left neither the target nor any temp file.
        assert list(store.traces_dir.iterdir()) == []

    def test_concurrent_result_writers_never_tear(self, tmp_path):
        """Many threads overwriting one result key: readers always see
        a complete JSON document (atomic replace), never a torn file."""
        store = ArtifactStore(tmp_path)
        config = experiment_config(32)
        trace, result = capture_trace(
            "health", Variant.N, config, 0.05, seed=1
        )
        fingerprint = config_fingerprint(config)
        stop = threading.Event()
        errors: list[Exception] = []

        def _writer():
            while not stop.is_set():
                try:
                    store.save_result(trace.content_hash, fingerprint, result)
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)

        threads = [threading.Thread(target=_writer) for _ in range(4)]
        for thread in threads:
            thread.start()
        try:
            deadline = time.monotonic() + 0.5
            while time.monotonic() < deadline:
                loaded = store.load_result(trace.content_hash, fingerprint)
                assert loaded is not None
                assert loaded.checksum == result.checksum
        finally:
            stop.set()
            for thread in threads:
                thread.join()
        assert not errors

    def test_sweep_stale_removes_aged_tmp_and_dead_locks(self, tmp_path):
        store = ArtifactStore(tmp_path)
        aged_tmp = store.traces_dir / "x.trace.tmp123-0"
        aged_tmp.write_bytes(b"junk")
        old = time.time() - 2 * STALE_AFTER_SECONDS
        os.utime(aged_tmp, (old, old))
        fresh_tmp = store.results_dir / "y.json.tmp123-1"
        fresh_tmp.write_bytes(b"inflight")
        dead_lock = store.lock_path("d" * 64)
        dead_lock.write_text(
            json.dumps({"pid": 2**22 + 1, "acquired": time.time()})
        )
        real_trace = store.traces_dir / "z.trace"
        real_trace.write_bytes(b"committed")
        os.utime(real_trace, (old, old))

        removed = store.sweep_stale()
        assert removed == 2
        assert not aged_tmp.exists()
        assert not dead_lock.exists()
        assert fresh_tmp.exists()  # in-flight writer, not ours to kill
        assert real_trace.exists()  # committed artifacts are never swept

    def test_sweep_stale_keeps_live_fresh_lock(self, tmp_path):
        store = ArtifactStore(tmp_path)
        with store.capture_lock("k" * 64):
            assert store.sweep_stale() == 0
            assert store.lock_path("k" * 64).exists()
