"""Batch replay engine: grouping, engines, per-cell error contract."""

import pickle

import pytest

from repro.trace import (
    BATCH_GENERAL,
    BATCH_SPECIALIZED,
    SEQUENTIAL,
    ArtifactStore,
    BatchCellError,
    SweepTask,
    capture_trace,
    group_by_trace,
    replay_engine,
    replay_trace,
    run_batch_group,
    run_task,
)
from repro.apps import Variant
from repro.experiments.config import experiment_config

SCALE = 0.05


def _trace(app="health", scale=SCALE, seed=1):
    trace, _ = capture_trace(
        app, Variant.N, experiment_config(32), scale=scale, seed=seed
    )
    return trace


class TestGrouping:
    def test_group_by_trace_partitions_on_trace_key(self):
        tasks = [
            SweepTask("health", "N", 32, SCALE, 1),
            SweepTask("mst", "N", 32, SCALE, 1),
            SweepTask("health", "N", 64, SCALE, 1),
            SweepTask("health", "L", 32, SCALE, 1),
        ]
        groups = group_by_trace(tasks)
        # health/N shares one stream across line sizes; health/L and mst
        # are their own groups.  Insertion order is preserved.
        assert list(groups) == [
            tasks[0].key(),
            tasks[1].key(),
            tasks[3].key(),
        ]
        assert groups[tasks[0].key()] == [tasks[0], tasks[2]]

    def test_mixed_key_group_is_rejected(self, tmp_path):
        tasks = [
            SweepTask("health", "N", 32, SCALE, 1),
            SweepTask("mst", "N", 32, SCALE, 1),
        ]
        with pytest.raises(ValueError, match="trace keys"):
            run_batch_group(tasks, ArtifactStore(tmp_path))


class TestEngines:
    def test_replay_engine_specializes_plain_configs(self):
        trace = _trace()
        result, engine = replay_engine(trace, experiment_config(64))
        assert engine == BATCH_SPECIALIZED
        reference = replay_trace(trace, experiment_config(64))
        assert result.stats.dump() == reference.stats.dump()

    def test_replay_engine_falls_back_for_uncovered_features(self):
        from dataclasses import replace

        trace = _trace()
        config = replace(experiment_config(64), timeline_interval=500)
        result, engine = replay_engine(trace, config)
        assert engine == BATCH_GENERAL
        reference = replay_trace(trace, config)
        assert result.stats.dump() == reference.stats.dump()


class TestRunBatchGroup:
    def test_cold_group_captures_once_then_replays(self, tmp_path):
        store = ArtifactStore(tmp_path)
        tasks = [
            SweepTask("health", "N", size, SCALE, 1) for size in (32, 64, 128)
        ]
        outcomes = run_batch_group(tasks, store)
        assert [o.how for o in outcomes] == ["captured", "replayed", "replayed"]
        assert [o.engine for o in outcomes] == [
            SEQUENTIAL,
            BATCH_SPECIALIZED,
            BATCH_SPECIALIZED,
        ]
        # Each outcome matches the sequential single-cell path bit for bit.
        for task, outcome in zip(tasks, outcomes):
            reference, _ = run_task(task, ArtifactStore(tmp_path / "ref"))
            assert outcome.result.stats.dump() == reference.stats.dump()

    def test_warm_store_serves_cached_cells(self, tmp_path):
        store = ArtifactStore(tmp_path)
        tasks = [SweepTask("health", "N", size, SCALE, 1) for size in (32, 64)]
        run_batch_group(tasks, store)
        again = run_batch_group(tasks, store)
        assert [o.how for o in again] == ["cached", "cached"]
        assert all(o.engine == SEQUENTIAL for o in again)

    def test_events_cells_run_sequentially(self, tmp_path):
        store = ArtifactStore(tmp_path)
        tasks = [
            SweepTask("health", "N", 32, SCALE, 1),
            SweepTask("health", "N", 64, SCALE, 1, events_capacity=256),
        ]
        outcomes = run_batch_group(tasks, store)
        # The event stream only exists during direct execution, so the
        # events cell re-captures even though the group's trace is warm.
        assert outcomes[1].engine == SEQUENTIAL
        assert outcomes[1].how == "captured"

    def test_storeless_group_replays_from_shared_trace(self):
        tasks = [SweepTask("health", "N", size, SCALE, 1) for size in (32, 64)]
        outcomes = run_batch_group(tasks, store=None)
        assert [o.how for o in outcomes] == ["captured", "replayed"]


class _Exploder:
    """Stand-in task whose config() raises (mirrors test_sweep's)."""

    app = "mst"
    variant = "N"
    line_size = 64
    scale = SCALE
    seed = 1
    events_capacity = 0

    def key(self):
        return SweepTask("mst", "N", 64, SCALE, 1).key()

    def config(self):
        raise RuntimeError("boom")


class TestErrorContract:
    def test_failure_names_the_cell_and_chains_the_cause(self, tmp_path):
        with pytest.raises(BatchCellError) as excinfo:
            run_batch_group([_Exploder()], ArtifactStore(tmp_path))
        assert "mst/64B/N" in str(excinfo.value)
        assert "boom" in str(excinfo.value)
        assert isinstance(excinfo.value.__cause__, RuntimeError)

    def test_collect_errors_keeps_the_rest_of_the_group_running(self, tmp_path):
        store = ArtifactStore(tmp_path)
        good = SweepTask("mst", "N", 32, SCALE, 1)
        outcomes = run_batch_group(
            [_Exploder(), good], store, collect_errors=True
        )
        assert outcomes[0].how == "failed"
        assert outcomes[0].result is None
        assert "boom" in outcomes[0].error.message
        assert outcomes[1].how == "captured"
        assert outcomes[1].result is not None

    def test_batch_cell_error_survives_pickling(self):
        task = SweepTask("mst", "N", 64, SCALE, 1)
        error = BatchCellError(task, "cell went sideways")
        clone = pickle.loads(pickle.dumps(error))
        assert clone.task == task
        assert clone.message == "cell went sideways"
        assert str(clone) == "cell went sideways"
