"""Sweep execution: capture-once-replay-many, caching, and sharding."""

import time
from dataclasses import dataclass

import pytest

from repro.trace import (
    ArtifactStore,
    SweepError,
    SweepTask,
    execute_sweep,
    run_task,
)

SCALE = 0.05


def _tiny_matrix():
    return [
        SweepTask(app, variant, line_size, SCALE, 1)
        for app in ("health", "mst")
        for variant in ("N", "L")
        for line_size in (32, 128)
    ]


def test_run_task_capture_then_cache(tmp_path):
    store = ArtifactStore(tmp_path)
    task = SweepTask("mst", "N", 64, SCALE, 1)
    first, how_first = run_task(task, store)
    assert how_first == "captured"
    second, how_second = run_task(task, store)
    assert how_second == "cached"
    assert second.stats.dump() == first.stats.dump()


def test_run_task_replays_shared_trace(tmp_path):
    """Line-size-insensitive cells share one trace across line sizes."""
    store = ArtifactStore(tmp_path)
    base = SweepTask("mst", "N", 64, SCALE, 1)
    other = SweepTask("mst", "N", 32, SCALE, 1)
    assert base.key() == other.key()
    _, how = run_task(base, store)
    assert how == "captured"
    _, how = run_task(other, store)
    assert how == "replayed"


def test_mechanism_changes_fingerprint_but_not_trace_key():
    from repro.trace.store import config_fingerprint

    base = SweepTask("mst", "N", 64, SCALE, 1)
    mech = SweepTask("mst", "N", 64, SCALE, 1, mechanism="victim_cache")
    # One captured stream serves every mechanism config...
    assert mech.key() == base.key()
    # ...but their cached results never alias.
    assert config_fingerprint(mech.config()) != config_fingerprint(
        base.config()
    )
    resized = SweepTask(
        "mst", "N", 64, SCALE, 1, mechanism="victim_cache", vc_entries=16
    )
    assert config_fingerprint(resized.config()) != config_fingerprint(
        mech.config()
    )


def test_disabled_mechanism_knobs_leave_fingerprint_alone():
    from repro.trace.store import config_fingerprint

    base = SweepTask("mst", "N", 64, SCALE, 1)
    knobbed = SweepTask(
        "mst", "N", 64, SCALE, 1, vc_entries=64, sb_depth=16
    )
    assert config_fingerprint(knobbed.config()) == config_fingerprint(
        base.config()
    )


def test_mechanism_cell_replays_baseline_trace(tmp_path):
    store = ArtifactStore(tmp_path)
    _, how = run_task(SweepTask("mst", "N", 64, SCALE, 1), store)
    assert how == "captured"
    mech = SweepTask("mst", "N", 64, SCALE, 1, mechanism="victim_cache")
    outcome, how = run_task(mech, store)
    assert how == "replayed"
    assert outcome.stats.misspath["probes"] > 0
    _, how = run_task(mech, store)
    assert how == "cached"


def test_in_process_trace_cache_skips_store(tmp_path):
    traces = {}
    task = SweepTask("mst", "N", 64, SCALE, 1)
    _, how = run_task(task, store=None, traces=traces)
    assert how == "captured"
    assert task.key() in traces
    _, how = run_task(
        SweepTask("mst", "N", 32, SCALE, 1), store=None, traces=traces
    )
    assert how == "replayed"


def _adapt_task(scale=0.4, **overrides):
    from repro.adapt.config import AdaptConfig

    knobs = dict(
        policy="hysteresis",
        interval=1024,
        miss_rate_threshold=0.62,
        chase_rate_threshold=0.02,
        patience=2,
        cooldown=4,
        max_actions=4,
        seed=1,
    )
    knobs.update(overrides)
    return SweepTask(
        "mst_phase", "L", 128, scale, 1, adapt=AdaptConfig(**knobs)
    )


def test_adapt_config_is_workload_identity():
    """The engine issues its own references, so adaptive cells never
    share a stream — with plain cells or with other adaptive configs."""
    plain = SweepTask("mst_phase", "L", 128, SCALE, 1)
    adaptive = _adapt_task(scale=SCALE)
    assert adaptive.key() != plain.key()
    other_policy = _adapt_task(scale=SCALE, policy="threshold")
    assert other_policy.key() != adaptive.key()
    other_threshold = _adapt_task(scale=SCALE, miss_rate_threshold=0.5)
    assert other_threshold.key() != adaptive.key()


def test_adapt_cell_never_specializes():
    from repro.trace.kernels import specializable

    assert specializable(SweepTask("mst", "N", 64, SCALE, 1).config())
    assert not specializable(_adapt_task().config())


def test_adapt_cell_capture_replay_bit_exact():
    """A replayed adaptive cell re-executes the same decisions and lands
    on identical stats — window parity holds across the trace boundary."""
    traces = {}
    task = _adapt_task()
    captured, how = run_task(task, store=None, traces=traces)
    assert how == "captured"
    assert captured.extras["adapt"]["counters"]["decisions"] >= 1
    replayed, how = run_task(task, store=None, traces=traces)
    assert how == "replayed"
    assert replayed.checksum == captured.checksum
    assert replayed.stats.dump() == captured.stats.dump()
    assert (
        replayed.extras["adapt"]["decisions"]
        == captured.extras["adapt"]["decisions"]
    )


def test_heatmap_region_changes_fingerprint_not_trace_key():
    from repro.trace.store import config_fingerprint

    base = SweepTask("mst", "N", 64, SCALE, 1, timeline_interval=1000)
    fine = SweepTask(
        "mst", "N", 64, SCALE, 1, timeline_interval=1000, heatmap_region=4096
    )
    assert fine.key() == base.key()
    assert config_fingerprint(fine.config()) != config_fingerprint(
        base.config()
    )
    assert fine.config().heatmap_region_bytes == 4096


def test_execute_sweep_serial(tmp_path):
    store = ArtifactStore(tmp_path)
    tasks = _tiny_matrix()
    results = execute_sweep(tasks, store)
    assert set(results) == set(tasks)
    captures = [how for _, how in results.values() if how == "captured"]
    # 2 apps x 2 variants: one capture per workload identity.
    assert len(captures) == 4
    # Second invocation over the warm store touches no simulator at all.
    warm = execute_sweep(tasks, ArtifactStore(tmp_path))
    assert all(how == "cached" for _, how in warm.values())
    for task in tasks:
        assert warm[task][0].stats.dump() == results[task][0].stats.dump()


def test_execute_sweep_parallel_matches_serial(tmp_path):
    tasks = _tiny_matrix()
    serial = execute_sweep(tasks, ArtifactStore(tmp_path / "serial"))
    parallel = execute_sweep(
        tasks, ArtifactStore(tmp_path / "parallel"), jobs=2
    )
    for task in tasks:
        assert (
            parallel[task][0].stats.dump() == serial[task][0].stats.dump()
        )


def test_shard_merged_registry_equals_single_process(tmp_path):
    """Registry-merged shard stats == single-process stats, key for key.

    This is the regression guard for replacing hand-written dict
    summations with ``Snapshot.merge``: aggregate a Figure-5 cell's
    worth of runs executed across 2 worker processes and serially, and
    require the merged metric trees to be identical.
    """
    from repro.trace.sweep import aggregate_metrics

    tasks = [
        SweepTask("health", variant, 32, SCALE, 1) for variant in ("N", "L")
    ]
    serial = execute_sweep(tasks, ArtifactStore(tmp_path / "serial"))
    parallel = execute_sweep(
        tasks, ArtifactStore(tmp_path / "parallel"), jobs=2
    )
    merged_serial = aggregate_metrics(result for result, _ in serial.values())
    merged_parallel = aggregate_metrics(
        result for result, _ in parallel.values()
    )
    assert merged_serial == merged_parallel
    assert merged_serial.flat()  # non-trivial: real work was aggregated
    # Aggregation is a pure sum over counters: spot-check against the
    # per-result stats it folded.
    cycles = sum(result.stats.cycles for result, _ in serial.values())
    assert merged_serial["time.cycles"] == cycles


@dataclass(frozen=True)
class _ExplodingTask(SweepTask):
    """A cell whose simulation always fails (picklable for the pool)."""

    def config(self):
        raise RuntimeError("injected cell failure")


class TestFailurePropagation:
    """A worker raising mid-cell must surface, not hang the pool."""

    def test_serial_failure_names_the_cell(self, tmp_path):
        store = ArtifactStore(tmp_path)
        bad = _ExplodingTask("mst", "N", 64, SCALE, 1)
        with pytest.raises(SweepError) as excinfo:
            execute_sweep([bad], store)
        message = str(excinfo.value)
        assert "mst/64B/N" in message
        assert "injected cell failure" in message
        assert excinfo.value.task == bad
        assert isinstance(excinfo.value.__cause__, RuntimeError)

    def test_parallel_failure_fails_fast(self, tmp_path):
        store = ArtifactStore(tmp_path)
        tasks = _tiny_matrix() + [_ExplodingTask("bh", "N", 64, SCALE, 1)]
        started = time.monotonic()
        with pytest.raises(SweepError) as excinfo:
            execute_sweep(tasks, store, jobs=2)
        assert "bh/64B/N" in str(excinfo.value)
        # Fail-fast: the pool shut down instead of waiting out a hang.
        assert time.monotonic() - started < 60.0

    def test_partial_results_survive_in_store(self, tmp_path):
        """A failed sweep leaves completed cells cached for the retry."""
        store = ArtifactStore(tmp_path)
        good = SweepTask("health", "N", 32, SCALE, 1)
        bad = _ExplodingTask("mst", "N", 64, SCALE, 1)
        with pytest.raises(SweepError):
            execute_sweep([good, bad], store)
        _, how = run_task(good, ArtifactStore(tmp_path))
        assert how == "cached"
