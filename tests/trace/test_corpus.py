"""The corpus layer: manifest, warm probes, dedup, eviction, migration.

Everything here sits on top of the plain key/value store contract
(tested in test_store.py): ``corpus.json`` bookkeeping, the serve tier's
:meth:`content_hash_for` probe, hardlink dedup across seeds, LRU
size-budget eviction, v2 -> v3 in-place migration, orphaned-sidecar
sweeping, and the ``python -m repro corpus`` CLI over all of it.
"""

import json
import os
import time

import pytest

from repro.apps.base import Variant
from repro.experiments.config import experiment_config
from repro.trace import (
    ArtifactStore,
    Trace,
    capture_trace,
    peek_version,
    replay_trace,
    trace_key,
)
from repro.trace.format import FORMAT_VERSION, encode_v2
from repro.trace.replay import iter_resolved_chunks

SCALE = 0.05


@pytest.fixture(scope="module")
def captured():
    trace, result = capture_trace(
        "mst", Variant.N, experiment_config(64), SCALE, seed=1
    )
    return trace, result


def _key(seed=1, app="mst", variant="N"):
    return trace_key(app, variant, SCALE, seed, None)


def _save(store, trace, seed=1, app="mst", variant="N"):
    key = _key(seed, app, variant)
    store.save_trace(key, trace)
    return key


def _age(store, key, seconds):
    """Push a stored trace (and sidecar) back in LRU time."""
    then = time.time() - seconds
    os.utime(store.trace_path(key), (then, then))
    sidecar = store.resolved_path(key)
    if sidecar.exists():
        os.utime(sidecar, (then, then))


class TestManifest:
    def test_save_trace_writes_a_manifest_row(self, tmp_path, captured):
        trace, _ = captured
        store = ArtifactStore(tmp_path)
        key = _save(store, trace)
        entry = store.read_manifest()["entries"][key]
        assert entry["content_hash"] == trace.content_hash
        assert entry["stream_sha256"] == trace.stream_sha256
        assert entry["app"] == "mst"
        assert entry["event_count"] == trace.event_count
        assert entry["format"] == FORMAT_VERSION
        assert entry["bytes"] == store.trace_path(key).stat().st_size

    def test_corrupt_manifest_is_an_empty_one(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.manifest_path().write_text("{]")
        assert store.read_manifest()["entries"] == {}

    def test_content_hash_for_answers_from_the_manifest(
        self, tmp_path, captured
    ):
        trace, _ = captured
        store = ArtifactStore(tmp_path)
        key = _save(store, trace)
        assert store.content_hash_for(key) == trace.content_hash

    def test_content_hash_for_heals_a_missing_row(self, tmp_path, captured):
        """No manifest row: the answer comes from the footer (two seeks)
        and the row is written back."""
        trace, _ = captured
        store = ArtifactStore(tmp_path)
        key = _save(store, trace)
        store.manifest_path().unlink()
        assert store.content_hash_for(key) == trace.content_hash
        assert (
            store.read_manifest()["entries"][key]["content_hash"]
            == trace.content_hash
        )

    def test_content_hash_for_heals_v2_files(self, tmp_path, captured):
        trace, _ = captured
        store = ArtifactStore(tmp_path)
        key = _key()
        store.trace_path(key).write_bytes(encode_v2(trace))
        assert store.content_hash_for(key) == trace.content_hash

    def test_content_hash_for_misses(self, tmp_path, captured):
        trace, _ = captured
        store = ArtifactStore(tmp_path)
        assert store.content_hash_for(_key()) is None
        # A manifest row whose trace was evicted is also a miss.
        key = _save(store, trace)
        store.trace_path(key).unlink()
        assert store.content_hash_for(key) is None


class TestDedup:
    def test_identical_streams_share_the_trace_file(self, tmp_path, captured):
        trace, _ = captured
        store = ArtifactStore(tmp_path)
        first = _save(store, trace, seed=1)
        second = _save(store, trace, seed=2)
        assert first != second
        assert (
            store.trace_path(first).stat().st_ino
            == store.trace_path(second).stat().st_ino
        )

    def test_matching_stream_digest_shares_the_sidecar(
        self, tmp_path, captured
    ):
        trace, _ = captured
        store = ArtifactStore(tmp_path)
        first = _save(store, trace, seed=1)
        loaded = store.load_trace(first)
        list(iter_resolved_chunks(loaded))  # warm the sidecar
        assert store.resolved_path(first).exists()
        second = _save(store, trace, seed=2)
        assert store.resolved_path(second).exists()
        assert (
            store.resolved_path(first).stat().st_ino
            == store.resolved_path(second).stat().st_ino
        )
        # The shared sidecar actually serves the second key's replays.
        replayed = replay_trace(
            store.load_trace(second), experiment_config(32)
        )
        reference = replay_trace(trace, experiment_config(32))
        assert replayed.stats.dump() == reference.stats.dump()


class TestGc:
    def test_evicts_oldest_first_until_under_budget(self, tmp_path, captured):
        trace, _ = captured
        store = ArtifactStore(tmp_path)
        old, new = _key(1), _key(2)
        store.save_trace(old, trace)
        # Distinct bytes for the second key (different header -> no
        # content-hash dedup): tweak the seed field.
        other = Trace.from_bytes(trace.to_bytes())
        other.seed = 2
        store.save_trace(new, other)
        _age(store, old, 3600)
        size = store.trace_path(new).stat().st_size
        report = store.gc(size)
        assert report["evicted"] == [old]
        assert not store.has_trace(old)
        assert store.has_trace(new)
        assert old not in store.read_manifest()["entries"]
        assert new in store.read_manifest()["entries"]
        assert report["after_bytes"] <= size

    def test_load_bumps_the_lru_clock(self, tmp_path, captured):
        trace, _ = captured
        store = ArtifactStore(tmp_path)
        hot, cold = _key(1), _key(2)
        store.save_trace(hot, trace)
        other = Trace.from_bytes(trace.to_bytes())
        other.seed = 2
        store.save_trace(cold, other)
        for key in (hot, cold):
            _age(store, key, 3600)
        store.load_trace(hot)  # touch: now newest despite earlier save
        report = store.gc(store.trace_path(hot).stat().st_size)
        assert report["evicted"] == [cold]
        assert store.has_trace(hot)

    def test_eviction_takes_the_sidecar_too(self, tmp_path, captured):
        trace, _ = captured
        store = ArtifactStore(tmp_path)
        key = _save(store, trace)
        list(iter_resolved_chunks(store.load_trace(key)))
        assert store.resolved_path(key).exists()
        store.gc(0)
        assert not store.has_trace(key)
        assert not store.resolved_path(key).exists()

    def test_dry_run_removes_nothing(self, tmp_path, captured):
        trace, _ = captured
        store = ArtifactStore(tmp_path)
        key = _save(store, trace)
        report = store.gc(0, dry_run=True)
        assert report["evicted"] == [key]
        assert report["dry_run"]
        assert store.has_trace(key)
        assert key in store.read_manifest()["entries"]

    def test_hardlinked_copies_are_charged_once(self, tmp_path, captured):
        """Two keys sharing one inode fit a budget sized for one copy."""
        trace, _ = captured
        store = ArtifactStore(tmp_path)
        first = _save(store, trace, seed=1)
        second = _save(store, trace, seed=2)  # hardlinked to first
        size = store.trace_path(first).stat().st_size
        report = store.gc(size)
        assert report["total_bytes"] == size  # one inode, counted once
        assert report["evicted"] == []
        assert store.has_trace(first) and store.has_trace(second)

    def test_evicted_trace_recaptures_transparently(self, tmp_path):
        from repro.trace.sweep import SweepTask, run_task

        store = ArtifactStore(tmp_path)
        task = SweepTask(
            app="mst", variant="N", line_size=64, scale=SCALE, seed=1
        )
        first, how_first = run_task(task, store, {})
        assert how_first == "captured"
        store.gc(0)
        assert not store.has_trace(task.key())
        again, how_again = run_task(task, store, {})
        assert how_again == "captured"  # transparent recapture
        assert again.stats.dump() == first.stats.dump()


class TestMigrate:
    def test_v2_file_upgrades_in_place(self, tmp_path, captured):
        trace, _ = captured
        store = ArtifactStore(tmp_path)
        legacy = store.trace_path("0ldkey")
        legacy.write_bytes(encode_v2(trace))
        report = store.migrate()
        assert [entry["version"] for entry in report["migrated"]] == [2]
        assert not report["failed"]
        assert not legacy.exists()
        new_key = report["migrated"][0]["to"]
        assert peek_version(store.trace_path(new_key)) == FORMAT_VERSION
        upgraded = store.load_trace(new_key)
        assert upgraded == trace
        assert list(upgraded.events()) == list(trace.events())

    def test_migrated_replay_is_bit_exact(self, tmp_path, captured):
        trace, result = captured
        store = ArtifactStore(tmp_path)
        store.trace_path("0ldkey").write_bytes(encode_v2(trace))
        new_key = store.migrate()["migrated"][0]["to"]
        replayed = replay_trace(
            store.load_trace(new_key), experiment_config(64)
        )
        assert replayed.stats.dump() == result.stats.dump()
        assert replayed.checksum == result.checksum

    def test_current_files_are_skipped(self, tmp_path, captured):
        trace, _ = captured
        store = ArtifactStore(tmp_path)
        _save(store, trace)
        report = store.migrate()
        assert report["current"] == 1
        assert not report["migrated"] and not report["failed"]

    def test_garbled_file_is_reported_not_deleted(self, tmp_path):
        store = ArtifactStore(tmp_path)
        bad = store.trace_path("garbled")
        bad.write_bytes(b"RTRC\x09not really a trace")
        report = store.migrate()
        assert "garbled.trace" in report["failed"]
        assert "version 9" in report["failed"]["garbled.trace"]
        assert bad.exists()


class TestSweepOrphans:
    def test_orphaned_sidecar_is_reaped(self, tmp_path, captured):
        """A ``.resolved`` whose parent trace is gone is removed even
        when fresh -- nothing can ever validate it again."""
        trace, _ = captured
        store = ArtifactStore(tmp_path)
        key = _save(store, trace)
        list(iter_resolved_chunks(store.load_trace(key)))
        sidecar = store.resolved_path(key)
        assert sidecar.exists()
        store.trace_path(key).unlink()  # orphan it
        removed = store.sweep_stale()
        assert removed == 1
        assert not sidecar.exists()

    def test_paired_sidecar_survives(self, tmp_path, captured):
        trace, _ = captured
        store = ArtifactStore(tmp_path)
        key = _save(store, trace)
        list(iter_resolved_chunks(store.load_trace(key)))
        assert store.sweep_stale() == 0
        assert store.resolved_path(key).exists()


class TestCorpusCli:
    def _seed_store(self, tmp_path, captured):
        trace, _ = captured
        store = ArtifactStore(tmp_path)
        _save(store, trace)
        return store

    def test_ls_and_stat(self, tmp_path, captured, capsys):
        from repro.__main__ import main

        self._seed_store(tmp_path, captured)
        assert main(["corpus", "ls", "--trace-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "mst" in out
        assert main(
            ["corpus", "stat", "--trace-dir", str(tmp_path), "--json"]
        ) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["traces"] == 1
        assert summary["format_versions"] == {str(FORMAT_VERSION): 1}
        assert len(summary["entries"]) == 1
        entry = summary["entries"][0]
        assert entry["key"] == _key()
        digest = entry["stream_digest"]
        assert isinstance(digest, str) and len(digest) == 64
        assert set(digest) <= set("0123456789abcdef")

    def test_gc_subcommand(self, tmp_path, captured, capsys):
        from repro.__main__ import main

        store = self._seed_store(tmp_path, captured)
        code = main(
            ["corpus", "gc", "--budget", "0", "--trace-dir", str(tmp_path)]
        )
        assert code == 0
        assert "evicted 1" in capsys.readouterr().out
        assert not store.has_trace(_key())

    def test_gc_rejects_bad_budget(self, tmp_path, capsys):
        from repro.__main__ import main

        code = main(
            ["corpus", "gc", "--budget", "lots", "--trace-dir", str(tmp_path)]
        )
        assert code == 2
        assert "invalid byte budget" in capsys.readouterr().err

    def test_migrate_subcommand(self, tmp_path, captured, capsys):
        from repro.__main__ import main

        trace, _ = captured
        store = ArtifactStore(tmp_path)
        store.trace_path("0ldkey").write_bytes(encode_v2(trace))
        assert main(["corpus", "migrate", "--trace-dir", str(tmp_path)]) == 0
        assert "migrated 1" in capsys.readouterr().out

    def test_migrate_reports_garbled_files(self, tmp_path, capsys):
        from repro.__main__ import main

        store = ArtifactStore(tmp_path)
        store.trace_path("bad").write_bytes(b"RTRC\x07junk")
        assert main(["corpus", "migrate", "--trace-dir", str(tmp_path)]) == 1
        err = capsys.readouterr().err
        assert "bad.trace" in err and "version 7" in err
