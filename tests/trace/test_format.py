"""Property and validation tests for the binary trace format.

The encoder under test is the *recorder* (whose LEB128/zigzag loops are
inlined for speed); the decoder is :meth:`Trace.events`, the readable
reference.  The round-trip property pins the two to each other over
arbitrary event streams, and the validation tests cover every rejection
path of :meth:`Trace.from_bytes`.
"""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.trace import FORMAT_VERSION, Trace, TraceFormatError, TraceRecorder
from repro.trace import events as ev
from repro.trace.format import (
    MAGIC,
    append_svarint,
    append_uvarint,
    read_uvarint,
    unzigzag,
    zigzag,
)

addresses = st.integers(min_value=0, max_value=(1 << 48) - 1)
signed_words = st.integers(min_value=-(1 << 63), max_value=(1 << 63) - 1)
sizes = st.sampled_from([1, 2, 4, 8])


class TestVarints:
    @given(value=st.integers(min_value=0, max_value=1 << 70))
    @settings(max_examples=80, deadline=None)
    def test_uvarint_roundtrip(self, value):
        out = bytearray()
        append_uvarint(out, value)
        decoded, offset = read_uvarint(bytes(out), 0)
        assert decoded == value
        assert offset == len(out)

    @given(value=st.integers(min_value=-(1 << 69), max_value=1 << 69))
    @settings(max_examples=80, deadline=None)
    def test_zigzag_roundtrip(self, value):
        assert unzigzag(zigzag(value)) == value
        assert zigzag(value) >= 0

    @given(value=st.integers(min_value=-(1 << 40), max_value=1 << 40))
    @settings(max_examples=40, deadline=None)
    def test_svarint_roundtrip(self, value):
        out = bytearray()
        append_svarint(out, value)
        decoded, _ = read_uvarint(bytes(out), 0)
        assert unzigzag(decoded) == value

    def test_uvarint_rejects_negative(self):
        with pytest.raises(ValueError):
            append_uvarint(bytearray(), -1)

    def test_truncated_varint(self):
        with pytest.raises(TraceFormatError):
            read_uvarint(b"\x80\x80", 0)


@st.composite
def event_streams(draw):
    """A legal event sequence (pool allocs only into existing pools)."""
    events = []
    pool_count = 0
    n = draw(st.integers(min_value=0, max_value=40))
    for _ in range(n):
        kinds = [
            ev.LOAD, ev.STORE, ev.EXECUTE, ev.PREFETCH, ev.READ_FBIT,
            ev.UNF_READ, ev.UNF_WRITE, ev.MALLOC, ev.FREE, ev.CREATE_POOL,
            ev.RAW_WRITE, ev.NOTE_RELOC, ev.NOTE_OPT, ev.SET_TRAP,
        ]
        if pool_count:
            kinds.append(ev.POOL_ALLOC)
        kind = draw(st.sampled_from(kinds))
        if kind == ev.LOAD:
            events.append((kind, draw(addresses), draw(sizes)))
        elif kind == ev.STORE:
            events.append((kind, draw(addresses), draw(signed_words), draw(sizes)))
        elif kind == ev.EXECUTE:
            events.append((kind, draw(st.integers(0, 1 << 20))))
        elif kind == ev.PREFETCH:
            events.append((kind, draw(addresses), draw(st.integers(1, 8))))
        elif kind in (ev.READ_FBIT, ev.UNF_READ, ev.FREE):
            events.append((kind, draw(addresses)))
        elif kind == ev.UNF_WRITE:
            events.append(
                (kind, draw(addresses), draw(signed_words), draw(st.integers(0, 1)))
            )
        elif kind == ev.MALLOC:
            events.append(
                (kind, draw(st.integers(0, 1 << 24)), draw(sizes), draw(addresses))
            )
        elif kind == ev.CREATE_POOL:
            events.append((kind, draw(st.integers(0, 1 << 24))))
            pool_count += 1
        elif kind == ev.POOL_ALLOC:
            events.append((
                kind,
                draw(st.integers(0, pool_count - 1)),
                draw(st.integers(0, 1 << 24)),
                draw(sizes),
                draw(addresses),
            ))
        elif kind == ev.RAW_WRITE:
            events.append((kind, draw(addresses), draw(signed_words)))
        elif kind == ev.NOTE_RELOC:
            events.append((kind, draw(st.integers(0, 1000)), draw(st.integers(0, 1000))))
        elif kind == ev.NOTE_OPT:
            events.append((kind,))
        else:
            events.append((kind, draw(st.integers(0, 1))))
    return events


def _record(events):
    """Feed an event list through the recorder; returns the Trace."""
    recorder = TraceRecorder()
    for event in events:
        kind = event[0]
        if kind == ev.LOAD:
            recorder.on_load(event[1], event[2])
        elif kind == ev.STORE:
            recorder.on_store(event[1], event[2], event[3])
        elif kind == ev.EXECUTE:
            recorder.on_execute(event[1])
        elif kind == ev.PREFETCH:
            recorder.on_prefetch(event[1], event[2])
        elif kind == ev.READ_FBIT:
            recorder.on_read_fbit(event[1])
        elif kind == ev.UNF_READ:
            recorder.on_unforwarded_read(event[1])
        elif kind == ev.UNF_WRITE:
            recorder.on_unforwarded_write(event[1], event[2], event[3])
        elif kind == ev.MALLOC:
            recorder.on_malloc(event[1], event[2], event[3])
        elif kind == ev.FREE:
            recorder.on_free(event[1])
        elif kind == ev.CREATE_POOL:
            recorder.on_create_pool(len(recorder.pool_names), event[1], "p")
        elif kind == ev.POOL_ALLOC:
            recorder.on_pool_alloc(event[1], event[2], event[3], event[4])
        elif kind == ev.RAW_WRITE:
            recorder.on_raw_write(event[1], event[2])
        elif kind == ev.NOTE_RELOC:
            recorder.on_note_relocation(event[1], event[2])
        elif kind == ev.NOTE_OPT:
            recorder.on_note_optimizer()
        else:
            recorder.on_set_trap(bool(event[1]))
    return Trace(
        app="synthetic",
        variant="N",
        scale=1.0,
        seed=7,
        line_size=32,
        line_size_sensitive=False,
        checksum=123,
        extras={"k": 1},
        captured_stats={"forwarding_hops": 0},
        pool_names=list(recorder.pool_names),
        event_count=recorder.event_count,
        payload=bytes(recorder.payload),
    )


def _valid_trace():
    return _record([
        (ev.LOAD, 0x10000, 8),
        (ev.STORE, 0x10008, -5, 4),
        (ev.EXECUTE, 12),
        (ev.UNF_WRITE, 0x10000, 0x20000, 1),
        (ev.FREE, 0x10000),
    ])


class TestRoundTrip:
    @given(events=event_streams())
    @settings(max_examples=60, deadline=None)
    def test_encode_decode_identity(self, events):
        trace = _record(events)
        assert list(trace.events()) == [tuple(event) for event in events]

    @given(events=event_streams())
    @settings(max_examples=30, deadline=None)
    def test_bytes_roundtrip(self, events):
        trace = _record(events)
        clone = Trace.from_bytes(trace.to_bytes())
        assert clone == trace
        assert clone.content_hash == trace.content_hash
        assert list(clone.events()) == list(trace.events())

    def test_save_load(self, tmp_path):
        trace = _valid_trace()
        path = tmp_path / "t.rtrc"
        trace.save(path)
        assert Trace.load(path) == trace


class TestValidation:
    def test_bad_magic(self):
        with pytest.raises(TraceFormatError, match="magic"):
            Trace.from_bytes(b"NOPE" + _valid_trace().to_bytes()[4:])

    def test_unsupported_version(self):
        data = bytearray(_valid_trace().to_bytes())
        data[len(MAGIC)] = FORMAT_VERSION + 1
        with pytest.raises(TraceFormatError, match="version"):
            Trace.from_bytes(bytes(data))

    def test_truncated_payload(self):
        data = _valid_trace().to_bytes()
        with pytest.raises(TraceFormatError, match="truncated trace payload"):
            Trace.from_bytes(data[:-3])

    def test_payload_corruption_detected(self):
        data = bytearray(_valid_trace().to_bytes())
        data[-1] ^= 0xFF
        with pytest.raises(TraceFormatError, match="hash mismatch"):
            Trace.from_bytes(bytes(data))

    def test_missing_header_field(self):
        trace = _valid_trace()
        header = trace.header_dict()
        del header["event_count"]
        blob = json.dumps(header, sort_keys=True).encode()
        out = bytearray(MAGIC)
        out.append(FORMAT_VERSION)
        append_uvarint(out, len(blob))
        out += blob
        out += trace.payload
        with pytest.raises(TraceFormatError, match="missing fields"):
            Trace.from_bytes(bytes(out))

    def test_corrupt_header_json(self):
        out = bytearray(MAGIC)
        out.append(FORMAT_VERSION)
        append_uvarint(out, 4)
        out += b"{{{{"
        with pytest.raises(TraceFormatError, match="corrupt trace header"):
            Trace.from_bytes(bytes(out))

    def test_unknown_opcode_rejected(self):
        trace = _valid_trace()
        trace.payload = bytes([99])
        trace.event_count = 1
        with pytest.raises(TraceFormatError, match="unknown opcode"):
            list(trace.events())

    def test_truncated_event_stream(self):
        trace = _valid_trace()
        trace.payload = bytes([ev.LOAD, 0x80])  # varint promises more bytes
        trace.event_count = 1
        with pytest.raises(TraceFormatError, match="truncated"):
            list(trace.events())

    def test_event_count_mismatch(self):
        trace = _valid_trace()
        trace.event_count += 1
        with pytest.raises(TraceFormatError, match="event count mismatch"):
            list(trace.events())

    def test_pool_created_out_of_order(self):
        recorder = TraceRecorder()
        with pytest.raises(ValueError, match="out of order"):
            recorder.on_create_pool(3, 64, "late")
