"""Property and validation tests for the chunked columnar trace format.

Two encoders exist on purpose: :class:`~repro.trace.format.ChunkWriter`
is the readable reference, and :class:`~repro.trace.recorder.
TraceRecorder` inlines the same LEB128/zigzag loops into its observer
callbacks for speed.  The round-trip properties pin both to the decoder
(:meth:`Trace.events`) and to each other over arbitrary event streams --
including streams that straddle chunk boundaries -- and the validation
tests cover every rejection path of :meth:`Trace.from_bytes`, the
random-access index, and the v2 compatibility reader.
"""

import dataclasses
import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.trace import FORMAT_VERSION, Trace, TraceFormatError, TraceRecorder
from repro.trace import events as ev
from repro.trace.format import (
    CHUNK_EVENTS,
    MAGIC,
    V2_FORMAT_VERSION,
    ChunkWriter,
    _parse_header,
    append_svarint,
    append_uvarint,
    encode_v2,
    load_index,
    make_chunk,
    peek_version,
    read_uvarint,
    unzigzag,
    zigzag,
)

addresses = st.integers(min_value=0, max_value=(1 << 48) - 1)
signed_words = st.integers(min_value=-(1 << 63), max_value=(1 << 63) - 1)
sizes = st.sampled_from([1, 2, 4, 8])


class TestVarints:
    @given(value=st.integers(min_value=0, max_value=1 << 70))
    @settings(max_examples=80, deadline=None)
    def test_uvarint_roundtrip(self, value):
        out = bytearray()
        append_uvarint(out, value)
        decoded, offset = read_uvarint(bytes(out), 0)
        assert decoded == value
        assert offset == len(out)

    @given(value=st.integers(min_value=-(1 << 69), max_value=1 << 69))
    @settings(max_examples=80, deadline=None)
    def test_zigzag_roundtrip(self, value):
        assert unzigzag(zigzag(value)) == value
        assert zigzag(value) >= 0

    @given(value=st.integers(min_value=-(1 << 40), max_value=1 << 40))
    @settings(max_examples=40, deadline=None)
    def test_svarint_roundtrip(self, value):
        out = bytearray()
        append_svarint(out, value)
        decoded, _ = read_uvarint(bytes(out), 0)
        assert unzigzag(decoded) == value

    def test_uvarint_rejects_negative(self):
        with pytest.raises(ValueError):
            append_uvarint(bytearray(), -1)

    def test_truncated_varint(self):
        with pytest.raises(TraceFormatError):
            read_uvarint(b"\x80\x80", 0)


@st.composite
def event_streams(draw):
    """A legal event sequence (pool allocs only into existing pools)."""
    events = []
    pool_count = 0
    n = draw(st.integers(min_value=0, max_value=40))
    for _ in range(n):
        kinds = [
            ev.LOAD, ev.STORE, ev.EXECUTE, ev.PREFETCH, ev.READ_FBIT,
            ev.UNF_READ, ev.UNF_WRITE, ev.MALLOC, ev.FREE, ev.CREATE_POOL,
            ev.RAW_WRITE, ev.NOTE_RELOC, ev.NOTE_OPT, ev.SET_TRAP,
        ]
        if pool_count:
            kinds.append(ev.POOL_ALLOC)
        kind = draw(st.sampled_from(kinds))
        if kind == ev.LOAD:
            events.append((kind, draw(addresses), draw(sizes)))
        elif kind == ev.STORE:
            events.append((kind, draw(addresses), draw(signed_words), draw(sizes)))
        elif kind == ev.EXECUTE:
            events.append((kind, draw(st.integers(0, 1 << 20))))
        elif kind == ev.PREFETCH:
            events.append((kind, draw(addresses), draw(st.integers(1, 8))))
        elif kind in (ev.READ_FBIT, ev.UNF_READ, ev.FREE):
            events.append((kind, draw(addresses)))
        elif kind == ev.UNF_WRITE:
            events.append(
                (kind, draw(addresses), draw(signed_words), draw(st.integers(0, 1)))
            )
        elif kind == ev.MALLOC:
            events.append(
                (kind, draw(st.integers(0, 1 << 24)), draw(sizes), draw(addresses))
            )
        elif kind == ev.CREATE_POOL:
            events.append((kind, draw(st.integers(0, 1 << 24))))
            pool_count += 1
        elif kind == ev.POOL_ALLOC:
            events.append((
                kind,
                draw(st.integers(0, pool_count - 1)),
                draw(st.integers(0, 1 << 24)),
                draw(sizes),
                draw(addresses),
            ))
        elif kind == ev.RAW_WRITE:
            events.append((kind, draw(addresses), draw(signed_words)))
        elif kind == ev.NOTE_RELOC:
            events.append((kind, draw(st.integers(0, 1000)), draw(st.integers(0, 1000))))
        elif kind == ev.NOTE_OPT:
            events.append((kind,))
        else:
            events.append((kind, draw(st.integers(0, 1))))
    return events


#: Chunk sizes exercised by the boundary-straddling properties: every
#: event its own chunk, a size that splits 40-event streams mid-stream,
#: and the production size (one chunk for any test stream).
CHUNKINGS = (1, 7, CHUNK_EVENTS)


def _trace_fields(recorder_like):
    return dict(
        app="synthetic",
        variant="N",
        scale=1.0,
        seed=7,
        line_size=32,
        line_size_sensitive=False,
        checksum=123,
        extras={"k": 1},
        captured_stats={"forwarding_hops": 0},
        pool_names=list(getattr(recorder_like, "pool_names", [])),
        event_count=recorder_like.event_count,
    )


def _record(events, chunk_events=CHUNK_EVENTS):
    """Feed an event list through the recorder; returns the Trace."""
    recorder = TraceRecorder(chunk_events=chunk_events)
    for event in events:
        kind = event[0]
        if kind == ev.LOAD:
            recorder.on_load(event[1], event[2])
        elif kind == ev.STORE:
            recorder.on_store(event[1], event[2], event[3])
        elif kind == ev.EXECUTE:
            recorder.on_execute(event[1])
        elif kind == ev.PREFETCH:
            recorder.on_prefetch(event[1], event[2])
        elif kind == ev.READ_FBIT:
            recorder.on_read_fbit(event[1])
        elif kind == ev.UNF_READ:
            recorder.on_unforwarded_read(event[1])
        elif kind == ev.UNF_WRITE:
            recorder.on_unforwarded_write(event[1], event[2], event[3])
        elif kind == ev.MALLOC:
            recorder.on_malloc(event[1], event[2], event[3])
        elif kind == ev.FREE:
            recorder.on_free(event[1])
        elif kind == ev.CREATE_POOL:
            recorder.on_create_pool(len(recorder.pool_names), event[1], "p")
        elif kind == ev.POOL_ALLOC:
            recorder.on_pool_alloc(event[1], event[2], event[3], event[4])
        elif kind == ev.RAW_WRITE:
            recorder.on_raw_write(event[1], event[2])
        elif kind == ev.NOTE_RELOC:
            recorder.on_note_relocation(event[1], event[2])
        elif kind == ev.NOTE_OPT:
            recorder.on_note_optimizer()
        else:
            recorder.on_set_trap(bool(event[1]))
    chunks, stream_sha = recorder.finish()
    return Trace(
        **_trace_fields(recorder),
        chunks=chunks,
        has_forwarded=recorder.has_forwarded,
        _stream_sha=stream_sha,
    )


def _write(events, chunk_events=CHUNK_EVENTS):
    """The same events through the reference ChunkWriter."""
    writer = ChunkWriter(chunk_events=chunk_events)
    pool_names = []
    for event in events:
        if event[0] == ev.CREATE_POOL:
            pool_names.append("p")
        writer.add(tuple(event))
    chunks, event_count, has_forwarded, stream_sha = writer.finish()
    trace = Trace(
        **{**_trace_fields(writer), "pool_names": pool_names},
        chunks=chunks,
        has_forwarded=has_forwarded,
        _stream_sha=stream_sha,
    )
    return trace


def _valid_trace(chunk_events=CHUNK_EVENTS):
    return _record([
        (ev.LOAD, 0x10000, 8),
        (ev.STORE, 0x10008, -5, 4),
        (ev.EXECUTE, 12),
        (ev.UNF_WRITE, 0x10000, 0x20000, 1),
        (ev.FREE, 0x10000),
    ], chunk_events=chunk_events)


class TestRoundTrip:
    @given(events=event_streams())
    @settings(max_examples=60, deadline=None)
    def test_encode_decode_identity(self, events):
        trace = _record(events)
        assert list(trace.events()) == [tuple(event) for event in events]

    @given(events=event_streams(), chunk_events=st.sampled_from(CHUNKINGS))
    @settings(max_examples=40, deadline=None)
    def test_recorder_matches_reference_writer(self, events, chunk_events):
        """The inlined recorder and ChunkWriter produce identical chunks."""
        recorded = _record(events, chunk_events)
        written = _write(events, chunk_events)
        assert recorded.chunks == written.chunks
        assert recorded.stream_sha256 == written.stream_sha256
        assert recorded.has_forwarded == written.has_forwarded

    @given(events=event_streams(), chunk_events=st.sampled_from(CHUNKINGS))
    @settings(max_examples=40, deadline=None)
    def test_bytes_roundtrip(self, events, chunk_events):
        trace = _record(events, chunk_events)
        clone = Trace.from_bytes(trace.to_bytes())
        assert clone == trace
        assert clone.content_hash == trace.content_hash
        assert clone.has_forwarded == trace.has_forwarded
        assert list(clone.events()) == list(trace.events())

    @given(events=event_streams())
    @settings(max_examples=30, deadline=None)
    def test_chunking_never_changes_identity(self, events):
        """Stream digest and content hash are chunk-boundary-invariant:
        the address register never resets, so the concatenated columns
        are the same bytes however the stream is cut."""
        whole = _record(events, CHUNK_EVENTS)
        for chunk_events in (1, 3, 7):
            cut = _record(events, chunk_events)
            assert cut.stream_sha256 == whole.stream_sha256
            assert cut.content_hash == whole.content_hash
            assert list(cut.events()) == list(whole.events())
            if events and chunk_events == 1:
                assert len(cut.chunks) == len(events)

    def test_empty_stream(self):
        trace = _record([])
        assert trace.chunks == ()
        clone = Trace.from_bytes(trace.to_bytes())
        assert clone == trace
        assert list(clone.events()) == []

    def test_single_event_chunks(self):
        trace = _valid_trace(chunk_events=1)
        assert len(trace.chunks) == 5
        assert all(chunk.event_count == 1 for chunk in trace.chunks)
        assert list(Trace.from_bytes(trace.to_bytes()).events()) == list(
            trace.events()
        )

    def test_save_load(self, tmp_path):
        trace = _valid_trace()
        path = tmp_path / "t.rtrc"
        trace.save(path)
        assert Trace.load(path) == trace


class TestIndex:
    def test_load_index_answers_without_chunks(self, tmp_path):
        trace = _valid_trace(chunk_events=2)
        path = tmp_path / "t.trace"
        trace.save(path)
        index = load_index(path)
        assert index.event_count == trace.event_count
        assert index.chunk_count == len(trace.chunks)
        assert index.stream_sha256 == trace.stream_sha256
        assert index.content_hash == trace.content_hash
        assert index.has_forwarded == trace.has_forwarded

    def test_random_access_chunk_read(self, tmp_path):
        trace = _valid_trace(chunk_events=2)
        path = tmp_path / "t.trace"
        trace.save(path)
        index = load_index(path)
        for i, chunk in enumerate(trace.chunks):
            assert index.read_chunk(i) == chunk
        with pytest.raises(TraceFormatError, match="out of range"):
            index.read_chunk(len(trace.chunks))

    def test_peek_version(self, tmp_path):
        trace = _valid_trace()
        v3 = tmp_path / "v3.trace"
        trace.save(v3)
        assert peek_version(v3) == FORMAT_VERSION
        v2 = tmp_path / "v2.trace"
        v2.write_bytes(encode_v2(trace))
        assert peek_version(v2) == V2_FORMAT_VERSION

    def test_load_index_rejects_v2_with_path_and_version(self, tmp_path):
        path = tmp_path / "v2.trace"
        path.write_bytes(encode_v2(_valid_trace()))
        with pytest.raises(TraceFormatError) as excinfo:
            load_index(path)
        assert excinfo.value.path == str(path)
        assert excinfo.value.version == V2_FORMAT_VERSION


class TestValidation:
    def test_bad_magic(self):
        with pytest.raises(TraceFormatError, match="magic"):
            Trace.from_bytes(b"NOPE" + _valid_trace().to_bytes()[4:])

    def test_unsupported_version(self):
        data = bytearray(_valid_trace().to_bytes())
        data[len(MAGIC)] = FORMAT_VERSION + 1
        with pytest.raises(TraceFormatError, match="version") as excinfo:
            Trace.from_bytes(bytes(data))
        assert excinfo.value.version == FORMAT_VERSION + 1

    def test_load_attaches_the_path(self, tmp_path):
        path = tmp_path / "garbled.trace"
        data = bytearray(_valid_trace().to_bytes())
        data[len(MAGIC)] = 9
        path.write_bytes(bytes(data))
        with pytest.raises(TraceFormatError) as excinfo:
            Trace.load(path)
        assert excinfo.value.path == str(path)
        assert str(path) in str(excinfo.value)
        assert excinfo.value.version == 9

    def test_truncated_final_chunk(self):
        """A byte missing from the chunk region fails as truncation."""
        trace = _valid_trace()
        data = trace.to_bytes()
        _, chunk_start = _parse_header(data)
        # Drop the last byte of the chunk region; offsets in the footer
        # now overrun it.
        cut = data[: chunk_start] + data[chunk_start + 1 :]
        with pytest.raises(TraceFormatError, match="truncated chunk"):
            Trace.from_bytes(cut)

    @pytest.mark.parametrize("column", ["ops", "addr", "aux"])
    def test_column_corruption_names_chunk_and_column(self, column):
        """Flipping one byte in a column fails naming chunk + column."""
        trace = _valid_trace(chunk_events=2)
        victim = trace.chunks[1]
        col_index = ["ops", "addr", "aux"].index(column)
        blob = bytearray(victim.data[col_index])
        if not blob:
            pytest.skip(f"column {column} empty for this stream")
        blob[len(blob) // 2] ^= 0xFF
        data = list(victim.data)
        data[col_index] = bytes(blob)
        corrupted = dataclasses.replace(victim, data=tuple(data))
        tampered = dataclasses.replace(
            trace, chunks=(trace.chunks[0], corrupted) + trace.chunks[2:]
        )
        with pytest.raises(
            TraceFormatError, match=f"chunk 1 column '{column}'"
        ):
            list(tampered.events())

    def test_file_level_corruption_names_chunk_and_column(self):
        trace = _valid_trace()
        data = bytearray(trace.to_bytes())
        _, chunk_start = _parse_header(bytes(data))
        data[chunk_start] ^= 0xFF  # first byte of chunk 0's ops blob
        with pytest.raises(TraceFormatError, match="chunk 0 column 'ops'"):
            Trace.from_bytes(bytes(data))

    def test_missing_header_field(self):
        trace = _valid_trace()
        data = trace.to_bytes()
        header, chunk_start = _parse_header(data)
        del header["event_count"]
        blob = json.dumps(header, sort_keys=True).encode()
        out = bytearray(MAGIC)
        out.append(FORMAT_VERSION)
        append_uvarint(out, len(blob))
        out += blob
        out += data[chunk_start:]
        with pytest.raises(TraceFormatError, match="missing fields"):
            Trace.from_bytes(bytes(out))

    def test_corrupt_header_json(self):
        out = bytearray(MAGIC)
        out.append(FORMAT_VERSION)
        append_uvarint(out, 4)
        out += b"{{{{"
        with pytest.raises(TraceFormatError, match="corrupt trace header"):
            Trace.from_bytes(bytes(out))

    def test_missing_footer_trailer(self):
        data = _valid_trace().to_bytes()
        with pytest.raises(TraceFormatError, match="footer"):
            Trace.from_bytes(data[:-3])

    def test_unknown_opcode_rejected(self):
        chunk = make_chunk((bytes([99]), b"", b""), 1, 0)
        trace = dataclasses.replace(
            _valid_trace(), chunks=(chunk,), event_count=1
        )
        with pytest.raises(TraceFormatError, match="unknown opcode"):
            list(trace.events())

    def test_truncated_event_stream(self):
        # The LOAD's address varint promises more bytes than exist.
        chunk = make_chunk((bytes([ev.LOAD]), b"\x80", b"\x08"), 1, 0)
        trace = dataclasses.replace(
            _valid_trace(), chunks=(chunk,), event_count=1
        )
        with pytest.raises(TraceFormatError, match="truncated"):
            list(trace.events())

    def test_event_count_mismatch(self):
        trace = _valid_trace()
        trace.event_count += 1
        with pytest.raises(TraceFormatError, match="event count mismatch"):
            list(trace.events())

    def test_chunk_discontinuity_rejected(self):
        """A chunk whose entry register breaks the stream is detected."""
        trace = _valid_trace(chunk_events=2)
        assert len(trace.chunks) > 1
        bad = dataclasses.replace(
            trace.chunks[1], start_address=trace.chunks[1].start_address + 8
        )
        tampered = dataclasses.replace(
            trace, chunks=(trace.chunks[0], bad) + trace.chunks[2:]
        )
        with pytest.raises(TraceFormatError, match="does not continue"):
            list(tampered.events())

    def test_pool_created_out_of_order(self):
        recorder = TraceRecorder()
        with pytest.raises(ValueError, match="out of order"):
            recorder.on_create_pool(3, 64, "late")


class TestV2Compat:
    @given(events=event_streams())
    @settings(max_examples=30, deadline=None)
    def test_v2_roundtrip_preserves_identity(self, events):
        """v3 -> v2 bytes -> version-dispatched reader -> same trace."""
        trace = _record(events)
        clone = Trace.from_bytes(encode_v2(trace))
        assert list(clone.events()) == list(trace.events())
        assert clone.stream_sha256 == trace.stream_sha256
        assert clone.content_hash == trace.content_hash
        assert clone == trace

    def test_v2_load_from_disk(self, tmp_path):
        trace = _valid_trace()
        path = tmp_path / "old.trace"
        path.write_bytes(encode_v2(trace))
        loaded = Trace.load(path)
        assert loaded == trace
        assert loaded.has_forwarded == trace.has_forwarded

    def test_v2_truncated_payload(self):
        data = encode_v2(_valid_trace())
        with pytest.raises(TraceFormatError, match="truncated trace payload"):
            Trace.from_bytes(data[:-3])

    def test_v2_payload_corruption_detected(self):
        data = bytearray(encode_v2(_valid_trace()))
        data[-1] ^= 0xFF
        with pytest.raises(TraceFormatError, match="hash mismatch"):
            Trace.from_bytes(bytes(data))
