"""Replay fidelity: a replayed run's stats equal a direct run's, exactly.

This is the contract the whole subsystem rests on (and what lets the
experiment runner substitute replays for simulations): every counter in
:class:`~repro.core.stats.MachineStats` -- cycles, per-level miss
classes, forwarding and relocation activity, speculation and prefetch
accounting -- must match the direct run bit-for-bit, including across
line sizes for line-size-insensitive streams.
"""

import pytest

from repro.apps import get_application
from repro.apps.base import Variant
from repro.experiments.config import experiment_config
from repro.trace import TraceReplayError, capture_trace, replay_trace

SCALE = 0.1
CAPTURE_LINE = 64


def _direct(app, variant, line_size):
    application = get_application(app, scale=SCALE, seed=1)
    return application.run(variant, experiment_config(line_size))


@pytest.fixture(scope="module")
def traces():
    """One captured trace per (app, variant), at line size 64."""
    captured = {}
    for app in ("health", "mst"):
        for variant in (Variant.N, Variant.L):
            trace, _ = capture_trace(
                app, variant, experiment_config(CAPTURE_LINE), SCALE, seed=1
            )
            captured[(app, variant)] = trace
    return captured


@pytest.mark.parametrize("app", ["health", "mst"])
@pytest.mark.parametrize("variant", [Variant.N, Variant.L])
@pytest.mark.parametrize("line_size", [32, 128])
def test_replay_matches_direct_across_line_sizes(traces, app, variant, line_size):
    trace = traces[(app, variant)]
    replayed = replay_trace(trace, experiment_config(line_size))
    direct = _direct(app, variant, line_size)
    assert replayed.stats.dump() == direct.stats.dump()
    assert replayed.checksum == direct.checksum
    assert replayed.extras == direct.extras


def test_replay_same_config_is_identity(traces):
    trace = traces[("health", Variant.L)]
    config = experiment_config(CAPTURE_LINE)
    replayed = replay_trace(trace, config)
    direct = _direct("health", Variant.L, CAPTURE_LINE)
    assert replayed.stats.dump() == direct.stats.dump()


def test_replay_prefetch_variant():
    """PERF exercises the prefetcher + speculator paths during replay."""
    config = experiment_config(CAPTURE_LINE)
    trace, direct = capture_trace("smv", Variant.PERF, config, SCALE, seed=1)
    replayed = replay_trace(trace, config)
    assert replayed.stats.dump() == direct.stats.dump()


def test_sensitive_trace_rejects_other_line_size():
    """BH streams depend on line size; replaying across sizes must fail."""
    config = experiment_config(CAPTURE_LINE)
    trace, _ = capture_trace("bh", Variant.L, config, 0.05, seed=1)
    assert trace.line_size_sensitive
    with pytest.raises(TraceReplayError, match="line-size-sensitive"):
        replay_trace(trace, experiment_config(32))
    # ... but the capturing size itself is fine.
    replay_trace(trace, config)


def test_resolved_stream_is_cached(traces):
    trace = traces[("mst", Variant.N)]
    replay_trace(trace, experiment_config(32))
    resolved = trace._resolved
    assert resolved is not None
    replay_trace(trace, experiment_config(128))
    assert trace._resolved is resolved
