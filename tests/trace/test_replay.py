"""Replay fidelity: a replayed run's stats equal a direct run's, exactly.

This is the contract the whole subsystem rests on (and what lets the
experiment runner substitute replays for simulations): every counter in
:class:`~repro.core.stats.MachineStats` -- cycles, per-level miss
classes, forwarding and relocation activity, speculation and prefetch
accounting -- must match the direct run bit-for-bit, including across
line sizes for line-size-insensitive streams.
"""

import pytest

from repro.apps import get_application
from repro.apps.base import Variant
from repro.experiments.config import experiment_config
from repro.trace import TraceReplayError, capture_trace, replay_trace

SCALE = 0.1
CAPTURE_LINE = 64


def _direct(app, variant, line_size):
    application = get_application(app, scale=SCALE, seed=1)
    return application.run(variant, experiment_config(line_size))


@pytest.fixture(scope="module")
def traces():
    """One captured trace per (app, variant), at line size 64."""
    captured = {}
    for app in ("health", "mst"):
        for variant in (Variant.N, Variant.L):
            trace, _ = capture_trace(
                app, variant, experiment_config(CAPTURE_LINE), SCALE, seed=1
            )
            captured[(app, variant)] = trace
    return captured


@pytest.mark.parametrize("app", ["health", "mst"])
@pytest.mark.parametrize("variant", [Variant.N, Variant.L])
@pytest.mark.parametrize("line_size", [32, 128])
def test_replay_matches_direct_across_line_sizes(traces, app, variant, line_size):
    trace = traces[(app, variant)]
    replayed = replay_trace(trace, experiment_config(line_size))
    direct = _direct(app, variant, line_size)
    assert replayed.stats.dump() == direct.stats.dump()
    assert replayed.checksum == direct.checksum
    assert replayed.extras == direct.extras


def test_replay_same_config_is_identity(traces):
    trace = traces[("health", Variant.L)]
    config = experiment_config(CAPTURE_LINE)
    replayed = replay_trace(trace, config)
    direct = _direct("health", Variant.L, CAPTURE_LINE)
    assert replayed.stats.dump() == direct.stats.dump()


def test_replay_prefetch_variant():
    """PERF exercises the prefetcher + speculator paths during replay."""
    config = experiment_config(CAPTURE_LINE)
    trace, direct = capture_trace("smv", Variant.PERF, config, SCALE, seed=1)
    replayed = replay_trace(trace, config)
    assert replayed.stats.dump() == direct.stats.dump()


def test_sensitive_trace_rejects_other_line_size():
    """BH streams depend on line size; replaying across sizes must fail."""
    config = experiment_config(CAPTURE_LINE)
    trace, _ = capture_trace("bh", Variant.L, config, 0.05, seed=1)
    assert trace.line_size_sensitive
    with pytest.raises(TraceReplayError, match="line-size-sensitive"):
        replay_trace(trace, experiment_config(32))
    # ... but the capturing size itself is fine.
    replay_trace(trace, config)


def test_resolved_decode_is_deterministic(traces):
    """Two independent decodes of one trace yield identical chunks.

    v3 dropped the in-memory resolved-stream memo (streaming replay
    holds one chunk at a time), so determinism of the decode itself is
    the invariant repeated replays rest on.
    """
    from repro.trace.replay import iter_resolved_chunks

    trace = traces[("mst", Variant.N)]
    first = [
        (c.kinds, list(c.ops), c.extras) for c in iter_resolved_chunks(trace)
    ]
    second = [
        (c.kinds, list(c.ops), c.extras) for c in iter_resolved_chunks(trace)
    ]
    assert first == second
    assert sum(len(k) for k, _, _ in first) > 0


def test_resolved_stream_never_leaks_across_traces(traces):
    """Two traces replayed in one process must never serve each other's
    stream -- a leak would silently replay the wrong stream for every
    cell of the second trace."""
    health = traces[("health", Variant.N)]
    mst = traces[("mst", Variant.N)]
    config = experiment_config(32)
    replayed_health = replay_trace(health, config)
    replayed_mst = replay_trace(mst, config)
    # Each replay reflects its own stream, not the other's.
    assert replayed_mst.stats.dump() == _direct(
        "mst", Variant.N, 32
    ).stats.dump()
    assert replayed_health.stats.dump() != replayed_mst.stats.dump()


class TestResolvedSidecar:
    """The on-disk resolved-stream cache next to store-managed traces."""

    def _stored_trace(self, tmp_path, app="mst", variant=Variant.N):
        from repro.trace.store import ArtifactStore, trace_key

        store = ArtifactStore(tmp_path)
        trace, _ = capture_trace(
            app, variant, experiment_config(CAPTURE_LINE), 0.05, seed=1
        )
        key = trace_key(app, variant.value, 0.05, 1, None)
        store.save_trace(key, trace)
        return store, key, trace

    def test_first_replay_writes_the_sidecar(self, tmp_path):
        store, key, trace = self._stored_trace(tmp_path)
        sidecar = store.resolved_path(key)
        assert not sidecar.exists()
        replay_trace(trace, experiment_config(32))
        assert sidecar.exists()

    def test_sidecar_load_is_exact(self, tmp_path):
        store, key, trace = self._stored_trace(tmp_path)
        reference = replay_trace(trace, experiment_config(32))  # warms it
        fresh = store.load_trace(key)  # new object: decode via sidecar hit
        replayed = replay_trace(fresh, experiment_config(32))
        assert replayed.stats.dump() == reference.stats.dump()
        assert replayed.checksum == reference.checksum

    def test_corrupt_sidecar_redecodes_and_rewrites(self, tmp_path):
        store, key, trace = self._stored_trace(tmp_path)
        reference = replay_trace(trace, experiment_config(32))
        sidecar = store.resolved_path(key)
        sidecar.write_bytes(b"\x00garbage, not marshal")
        fresh = store.load_trace(key)
        replayed = replay_trace(fresh, experiment_config(32))
        assert replayed.stats.dump() == reference.stats.dump()
        # The decode rewrote a valid sidecar over the corrupt one.
        assert sidecar.read_bytes() != b"\x00garbage, not marshal"
        again = store.load_trace(key)
        assert replay_trace(
            again, experiment_config(32)
        ).stats.dump() == reference.stats.dump()

    def test_foreign_sidecar_is_rejected(self, tmp_path):
        """A sidecar whose payload digest belongs to another trace must
        never be served -- the store orphans it on recapture."""
        store, key, mst = self._stored_trace(tmp_path)
        replay_trace(mst, experiment_config(32))  # writes mst's sidecar
        _, health_key, health = self._stored_trace(
            tmp_path, app="health"
        )
        # Plant mst's sidecar where health's should live.
        store.resolved_path(health_key).write_bytes(
            store.resolved_path(key).read_bytes()
        )
        fresh = store.load_trace(health_key)
        replayed = replay_trace(fresh, experiment_config(32))
        direct = get_application("health", scale=0.05, seed=1).run(
            Variant.N, experiment_config(32)
        )
        assert replayed.stats.dump() == direct.stats.dump()
