"""The exec-specialized replay kernels: codegen, caching, exactness."""

from dataclasses import replace

import pytest

from repro.apps.base import Variant
from repro.cache.cache import Cache
from repro.experiments.config import experiment_config
from repro.trace import capture_trace, replay_trace
from repro.trace.kernels import (
    SPEC_COUNTERS,
    SPEC_FULL,
    SPEC_OFF,
    SpecializationError,
    _elides_residual,
    _spec_mode,
    compiled_kernel,
    kernel_source,
    replay_specialized,
    specializable,
)

SCALE = 0.05


def _trace(app="health", variant=Variant.N, seed=1):
    trace, _ = capture_trace(
        app, variant, experiment_config(32), scale=SCALE, seed=seed
    )
    return trace


class TestFeatureMatrix:
    def test_plain_config_is_specializable(self):
        assert specializable(experiment_config(64))

    @pytest.mark.parametrize(
        "patch",
        [
            {"timeline_interval": 500},
            {"events_capacity": 128},
        ],
    )
    def test_uncovered_config_features(self, patch):
        config = replace(experiment_config(64), **patch)
        assert not specializable(config)
        with pytest.raises(SpecializationError):
            kernel_source(config)

    def test_miss_path_mechanism_is_uncovered(self):
        config = experiment_config(64)
        config = replace(
            config,
            hierarchy=replace(config.hierarchy, mechanism="victim_cache"),
        )
        assert not specializable(config)
        with pytest.raises(SpecializationError):
            kernel_source(config)


class TestCodegen:
    def test_constants_are_baked_as_literals(self):
        source = kernel_source(experiment_config(64), SPEC_COUNTERS)
        assert "$" not in source  # every template slot substituted
        assert ">> 6" in source  # line shift for 64B lines
        compile(source, "<test-kernel>", "exec")

    def test_line_size_changes_the_source(self):
        a = kernel_source(experiment_config(32), SPEC_COUNTERS)
        b = kernel_source(experiment_config(128), SPEC_COUNTERS)
        assert a != b

    def test_spec_off_carries_no_speculator_code(self):
        config = replace(experiment_config(64), speculation_window=0)
        source = kernel_source(config, SPEC_OFF)
        assert "speculator.on_load" not in source
        assert "spec_stats" not in source

    def test_counters_mode_skips_store_queue_bookkeeping(self):
        source = kernel_source(experiment_config(64), SPEC_COUNTERS)
        assert "queue_append" not in source
        # ... but still derives the checked/tracked totals at spill time.
        assert "spec_stats.loads_checked" in source

    def test_random_policy_emits_the_xorshift_victim_picker(self):
        config = experiment_config(64)
        config = replace(
            config, hierarchy=replace(config.hierarchy, policy="random")
        )
        source = kernel_source(config, SPEC_COUNTERS)
        assert "_rng_state" in source
        lru = kernel_source(experiment_config(64), SPEC_COUNTERS)
        assert "_rng_state" not in lru

    def test_kernel_cache_reuses_compilations(self):
        first = compiled_kernel(experiment_config(64))
        again = compiled_kernel(experiment_config(64))
        assert first is again
        other = compiled_kernel(experiment_config(128))
        assert other is not first


class TestSpecMode:
    def test_no_speculation_window(self):
        config = replace(experiment_config(64), speculation_window=0)
        assert _spec_mode(_trace(), config) == SPEC_OFF

    def test_unforwarded_trace_uses_counters_mode(self):
        assert _spec_mode(_trace(), experiment_config(64)) == SPEC_COUNTERS

    def test_forwarded_trace_needs_full_bookkeeping(self):
        trace = _trace("health", Variant.L)
        mode = _spec_mode(trace, experiment_config(64))
        assert mode in (SPEC_COUNTERS, SPEC_FULL)
        if trace.has_forwarded:
            assert mode == SPEC_FULL


class TestExactness:
    @pytest.mark.parametrize("line_size", [32, 64, 128])
    def test_parity_with_general_path(self, line_size):
        trace = _trace()
        config = experiment_config(line_size)
        reference = replay_trace(_trace(), config)
        result = replay_specialized(trace, config)
        assert result.stats.dump() == reference.stats.dump()

    def test_parity_when_residual_is_not_elidable(self):
        """hit latency ~ OoO window: the hit-arm stall check must stay."""
        config = experiment_config(64)
        config = replace(
            config, timing=replace(config.timing, ooo_window=1.0)
        )
        assert not _elides_residual(
            {
                "L1_HIT_LATENCY": config.hierarchy.l1_hit_latency,
                "OOO_WINDOW": config.timing.ooo_window,
            }
        )
        reference = replay_trace(_trace(), config)
        result = replay_specialized(_trace(), config)
        assert result.stats.dump() == reference.stats.dump()

    def test_cycle_guard_falls_back_to_general_path(self, monkeypatch):
        """Past the 2**49 elision bound the kernel run is discarded."""
        import repro.trace.kernels as kernels

        def absurd_kernel(config, spec_mode=None):
            def _replay(kinds, ops, extras, n, hierarchy, timing, *rest):
                timing.cycle = 2.0 ** 50
                return rest[-1]  # thread trap_installed through unchanged
            return _replay

        monkeypatch.setattr(kernels, "compiled_kernel", absurd_kernel)
        trace = _trace()
        config = experiment_config(64)
        result = kernels.replay_specialized(trace, config)
        reference = replay_trace(_trace(), config)
        assert result.stats.dump() == reference.stats.dump()


class TestSentinelInvariant:
    """The kernels probe fixed ways relying on Cache's -1 sentinel."""

    def test_fresh_cache_is_all_sentinel(self):
        cache = Cache(size=1024, line_size=32, associativity=2)
        assert all(tag == -1 for tag in cache._tags)

    def test_invalidate_restores_the_sentinel(self):
        cache = Cache(size=1024, line_size=32, associativity=2)
        cache.fill(0)
        cache.fill(1024)  # same set, second way
        assert cache.invalidate(0)
        base_tags = [
            cache._tags[slot]
            for slot in range(2 * (0 & cache._set_mask), cache.associativity)
        ]
        # One resident line shifted to the front; the vacated slot is -1.
        assert base_tags[0] == 1024 >> cache.line_shift
        assert base_tags[1] == -1

    def test_no_stale_tag_survives_heavy_churn(self):
        cache = Cache(size=512, line_size=32, associativity=2)
        for address in range(0, 8192, 32):
            cache.fill(address)
            if address % 96 == 0:
                cache.invalidate(address)
        for set_index in range(cache.num_sets):
            base = set_index * cache.associativity
            occupancy = cache._set_len[set_index]
            for way in range(occupancy, cache.associativity):
                assert cache._tags[base + way] == -1
