"""Tests for forwarding-backed tile copying."""

import pytest

from repro import Machine, MachineConfig
from repro.cache.hierarchy import HierarchyConfig
from repro.opts.copying import RelocatedTile, TiledMatrix, tiled_matmul


@pytest.fixture
def m():
    return Machine()


class TestTiledMatrix:
    def test_roundtrip(self, m):
        matrix = TiledMatrix(m, 4, 5)
        matrix.fill(lambda r, c: r * 10 + c)
        assert matrix.get(2, 3) == 23
        assert matrix.get(0, 0) == 0

    def test_row_major_layout(self, m):
        matrix = TiledMatrix(m, 3, 3)
        assert matrix.address(1, 0) - matrix.address(0, 2) == 8

    def test_shape_validation(self, m):
        with pytest.raises(ValueError):
            TiledMatrix(m, 0, 4)


class TestRelocatedTile:
    def test_tile_values_preserved(self, m):
        matrix = TiledMatrix(m, 6, 6)
        matrix.fill(lambda r, c: r * 100 + c)
        pool = m.create_pool(1 << 14)
        tile = RelocatedTile(m, matrix, 2, 2, 3, 3, pool)
        for row in range(3):
            for col in range(3):
                assert tile.get(row, col) == (row + 2) * 100 + (col + 2)

    def test_tile_is_contiguous(self, m):
        matrix = TiledMatrix(m, 8, 8)
        pool = m.create_pool(1 << 14)
        tile = RelocatedTile(m, matrix, 0, 0, 2, 2, pool)
        assert tile.address(1, 1) - tile.address(0, 0) == 3 * 8

    def test_stale_element_pointers_forward(self, m):
        """The paper's safety point: raw element pointers survive."""
        matrix = TiledMatrix(m, 4, 4)
        matrix.fill(lambda r, c: r + c)
        stale = matrix.address(1, 1)
        pool = m.create_pool(1 << 14)
        tile = RelocatedTile(m, matrix, 0, 0, 4, 4, pool)
        assert m.load(stale) == 2                     # forwarded
        tile.set(1, 1, 99)
        assert m.load(stale) == 99                    # still coherent

    def test_out_of_range_tiles_rejected(self, m):
        matrix = TiledMatrix(m, 4, 4)
        pool = m.create_pool(1 << 14)
        with pytest.raises(ValueError):
            RelocatedTile(m, matrix, 3, 0, 2, 2, pool)
        with pytest.raises(ValueError):
            RelocatedTile(m, matrix, 0, 3, 2, 2, pool)


class TestTiledMatmul:
    @staticmethod
    def reference(a_fn, b_fn, n):
        c = [[0] * n for _ in range(n)]
        for i in range(n):
            for k in range(n):
                for j in range(n):
                    c[i][j] += a_fn(i, k) * b_fn(k, j)
        return c

    def test_matmul_correct(self, m):
        n = 6
        a = TiledMatrix(m, n, n)
        b = TiledMatrix(m, n, n)
        c = TiledMatrix(m, n, n)
        a.fill(lambda r, col: r + 1)
        b.fill(lambda r, col: col + 2)
        tiled_matmul(m, a, b, c, tile=4)
        expected = self.reference(lambda r, k: r + 1, lambda k, col: col + 2, n)
        for i in range(n):
            for j in range(n):
                assert c.get(i, j) == expected[i][j]

    def test_matmul_with_copying_same_result(self, m):
        n = 6
        a = TiledMatrix(m, n, n)
        b = TiledMatrix(m, n, n)
        c1 = TiledMatrix(m, n, n)
        c2 = TiledMatrix(m, n, n)
        a.fill(lambda r, col: r * 3 + col)
        b.fill(lambda r, col: r + col * 5)
        tiled_matmul(m, a, b, c1, tile=3)
        pool = m.create_pool(1 << 16)
        tiled_matmul(m, a, b, c2, tile=3, pool=pool)
        for i in range(n):
            for j in range(n):
                assert c1.get(i, j) == c2.get(i, j)

    def test_shape_and_tile_validation(self, m):
        a = TiledMatrix(m, 2, 3)
        b = TiledMatrix(m, 4, 2)
        c = TiledMatrix(m, 2, 2)
        with pytest.raises(ValueError):
            tiled_matmul(m, a, b, c, tile=2)
        b_ok = TiledMatrix(m, 3, 2)
        with pytest.raises(ValueError):
            tiled_matmul(m, a, b_ok, c, tile=0)

    def test_copying_removes_conflict_misses(self):
        """The Section 2.2 claim: a conflict-prone tile, once relocated
        to contiguous addresses, stops evicting itself."""
        # Direct-mapped L1 so row-stride conflicts are maximal.
        config = MachineConfig(
            hierarchy=HierarchyConfig(l1_size=4096, l1_assoc=1, line_size=32)
        )

        def run(with_pool):
            machine = Machine(config)
            n = 16
            # B's rows land exactly one cache-way apart: every row of a
            # tile column conflicts with the next.
            b = TiledMatrix(machine, n, n)
            pad = machine.heap.allocate(4096 - (n * 8 % 4096) or 4096, align=4096)
            a = TiledMatrix(machine, n, n)
            c = TiledMatrix(machine, n, n)
            # Re-create B at a way-aligned base with conflicting rows:
            # simulate by aligning each row via a fresh matrix of width
            # 512 elements (4096 bytes) and using a column slice.
            wide = TiledMatrix(machine, n, 512, align=4096)
            wide.fill(lambda r, col: r + col if col < n else 0)
            pool = machine.create_pool(1 << 16) if with_pool else None
            a.fill(lambda r, col: 1)
            before = machine.stats().l1_load_misses_full
            if with_pool:
                from repro.opts.copying import RelocatedTile
                tile = RelocatedTile(machine, wide, 0, 0, n, n, pool)
                reader = tile.get
            else:
                reader = wide.get
            total = 0
            for _ in range(6):  # reuse the tile, column-major (worst case)
                for col in range(n):
                    for row in range(n):
                        total += reader(row, col)
            misses = machine.stats().l1_load_misses_full - before
            return total, misses

        plain_total, plain_misses = run(with_pool=False)
        opt_total, opt_misses = run(with_pool=True)
        assert plain_total == opt_total
        assert opt_misses < plain_misses / 3
