"""Tests for subtree clustering (the BH optimization)."""

import pytest

from repro import Machine, NULL
from repro.opts.clustering import cluster_subtrees
from repro.runtime.records import RecordLayout

# A binary tree node, as in Figure 9.
BNODE = RecordLayout("bnode", [("value", 8), ("left", 8), ("right", 8)])
CHILD_OFFSETS = [BNODE.offset("left"), BNODE.offset("right")]


@pytest.fixture
def m():
    return Machine()


def build_tree(m, depth, counter=None, scatter=False):
    """Pre-order-allocated complete binary tree (Figure 9(a))."""
    if counter is None:
        counter = [0]
    node = BNODE.alloc(m)
    if scatter:
        m.malloc(104)  # spacer to push nodes apart
    value = counter[0]
    counter[0] += 1
    BNODE.write(m, node, "value", value)
    if depth > 1:
        BNODE.write(m, node, "left", build_tree(m, depth - 1, counter, scatter))
        BNODE.write(m, node, "right", build_tree(m, depth - 1, counter, scatter))
    else:
        BNODE.write(m, node, "left", NULL)
        BNODE.write(m, node, "right", NULL)
    return node


def collect_preorder(m, root):
    out = []
    stack = [root]
    while stack:
        node = stack.pop()
        if node == NULL:
            continue
        out.append(BNODE.read(m, node, "value"))
        stack.append(BNODE.read(m, node, "right"))
        stack.append(BNODE.read(m, node, "left"))
    return out


class TestClustering:
    def make_rooted(self, m, depth, scatter=False):
        root_slot = m.malloc(8)
        m.store(root_slot, build_tree(m, depth, scatter=scatter))
        return root_slot

    def test_tree_contents_preserved(self, m):
        root_slot = self.make_rooted(m, depth=4)
        expected = collect_preorder(m, m.load(root_slot))
        pool = m.create_pool(1 << 16)
        cluster_subtrees(m, root_slot, CHILD_OFFSETS, BNODE.size, pool, 128)
        assert collect_preorder(m, m.load(root_slot)) == expected

    def test_all_nodes_moved(self, m):
        root_slot = self.make_rooted(m, depth=4)  # 15 nodes
        pool = m.create_pool(1 << 16)
        result = cluster_subtrees(m, root_slot, CHILD_OFFSETS, BNODE.size, pool, 128)
        assert result.nodes_moved == 15

    def test_balanced_grouping_figure9(self, m):
        """Figure 9(b): the root chunk holds the balanced top of the tree
        (root, then both children, in breadth-first order)."""
        root_slot = self.make_rooted(m, depth=3)  # 7 nodes, values 0..6
        pool = m.create_pool(1 << 16)
        # capacity = 128 // 24 = 5 nodes per chunk: root, its two children,
        # and the left child's two children, in BFS order.
        cluster_subtrees(m, root_slot, CHILD_OFFSETS, BNODE.size, pool, 128)
        root = m.load(root_slot)
        left = BNODE.read(m, root, "left")
        right = BNODE.read(m, root, "right")
        assert left == root + BNODE.size
        assert right == root + 2 * BNODE.size
        assert BNODE.read(m, left, "left") == root + 3 * BNODE.size
        assert BNODE.read(m, left, "right") == root + 4 * BNODE.size

    def test_chunks_line_aligned(self, m):
        root_slot = self.make_rooted(m, depth=4)
        pool = m.create_pool(1 << 16)
        cluster_subtrees(m, root_slot, CHILD_OFFSETS, BNODE.size, pool, 128)
        assert m.load(root_slot) % 128 == 0

    def test_stale_pointer_forwards(self, m):
        root_slot = self.make_rooted(m, depth=3)
        old_root = m.load(root_slot)
        pool = m.create_pool(1 << 16)
        cluster_subtrees(m, root_slot, CHILD_OFFSETS, BNODE.size, pool, 128)
        assert BNODE.read(m, old_root, "value") == 0  # forwarded
        assert m.stats().loads.forwarded >= 1

    def test_include_filter_skips_nodes(self, m):
        root_slot = self.make_rooted(m, depth=3)
        pool = m.create_pool(1 << 16)
        # Only cluster nodes with even values; odd subtree roots are left.
        result = cluster_subtrees(
            m, root_slot, CHILD_OFFSETS, BNODE.size, pool, 128,
            include=lambda mm, node: BNODE.read(mm, node, "value") % 2 == 0,
        )
        assert 0 < result.nodes_moved < 7

    def test_empty_tree(self, m):
        root_slot = m.malloc(8)
        pool = m.create_pool(1 << 14)
        result = cluster_subtrees(m, root_slot, CHILD_OFFSETS, BNODE.size, pool, 128)
        assert result.nodes_moved == 0

    def test_validates_node_size(self, m):
        root_slot = m.malloc(8)
        pool = m.create_pool(1 << 14)
        with pytest.raises(ValueError):
            cluster_subtrees(m, root_slot, CHILD_OFFSETS, 20, pool, 128)

    def test_random_traversal_misses_drop(self, m):
        """The point of clustering: random root-to-leaf walks touch fewer
        lines once subtrees are packed."""
        from repro.runtime.rng import DeterministicRNG

        plain_slot = self.make_rooted(m, depth=7, scatter=True)
        opt_slot = self.make_rooted(m, depth=7, scatter=True)
        pool = m.create_pool(1 << 18)
        cluster_subtrees(m, opt_slot, CHILD_OFFSETS, BNODE.size, pool, 128)

        def walk_misses(root_slot, seed):
            rng = DeterministicRNG(seed)
            before = m.stats().load_misses
            for _ in range(200):
                node = m.load(root_slot)
                while node != NULL:
                    BNODE.read(m, node, "value")
                    side = "left" if rng.chance(0.5) else "right"
                    node = BNODE.read(m, node, side)
            return m.stats().load_misses - before

        plain = walk_misses(plain_slot, seed=1)
        optimized = walk_misses(opt_slot, seed=1)
        assert optimized < plain
