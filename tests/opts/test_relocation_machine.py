"""Copying and coloring under full Machine runs (not unit level).

The satellite contract: after a mid-run relocation, every stale pointer
chases to the new location, and a relocated run stays bit-exact with an
unoptimized run — same logical operation counts, same values — modulo
the expected miss-count deltas the new layout exists to produce.
"""

from repro import Machine, MachineConfig
from repro.cache.hierarchy import HierarchyConfig
from repro.core.relocate import relocate
from repro.opts.coloring import ColoredAllocator, recolor

WORDS = 4  # per object
COUNT = 32


def build_objects(machine):
    """A pointer table over heap objects, as an app would hold them."""
    table = machine.malloc(COUNT * 8)
    for index in range(COUNT):
        address = machine.malloc(WORDS * 8)
        for word in range(WORDS):
            machine.store(address + word * 8, index * 100 + word)
        machine.store(table + index * 8, address)
    return table


def traverse(machine, table):
    """Pointer-chasing read of every object word, via the table."""
    total = 0
    for index in range(COUNT):
        address = machine.load(table + index * 8)
        for word in range(WORDS):
            total += machine.load(address + word * 8)
    return total


class TestCopyingFullMachine:
    def test_stale_pointers_chase_and_repair_restores_parity(self):
        unopt = Machine()
        table_u = build_objects(unopt)
        expected = traverse(unopt, table_u)

        opt = Machine()
        table_o = build_objects(opt)
        assert traverse(opt, table_o) == expected
        # Mid-run relocation of every object; the table still holds the
        # old addresses (deliberately stale).
        pool = opt.create_pool(1 << 16)
        old = [opt.load(table_o + i * 8) for i in range(COUNT)]
        new = []
        for address in old:
            target = pool.allocate(WORDS * 8)
            relocate(opt, address, target, WORDS)
            new.append(target)
        assert opt.stats().relocation.words_relocated >= COUNT * WORDS

        # Every stale pointer chases to the new location: identical sum,
        # and exactly one forwarded load per stale object dereference.
        forwarded_before = opt.stats().loads.forwarded
        assert traverse(opt, table_o) == expected
        chased = opt.stats().loads.forwarded - forwarded_before
        assert chased == COUNT * WORDS

        # Repair the principal pointers; the chases disappear entirely.
        for index, target in enumerate(new):
            opt.store(table_o + index * 8, target)
        forwarded_before = opt.stats().loads.forwarded
        assert traverse(opt, table_o) == expected
        assert opt.stats().loads.forwarded == forwarded_before

    def test_logical_operation_counts_bit_exact(self):
        """Same traversal, relocated or not: identical logical loads;
        only the layout (and hence misses) may differ."""
        unopt = Machine()
        table_u = build_objects(unopt)
        before_u = unopt.stats().loads.count
        traverse(unopt, table_u)
        loads_u = unopt.stats().loads.count - before_u

        opt = Machine()
        table_o = build_objects(opt)
        pool = opt.create_pool(1 << 16)
        for index in range(COUNT):
            address = opt.load(table_o + index * 8)
            target = pool.allocate(WORDS * 8)
            relocate(opt, address, target, WORDS)
            opt.store(table_o + index * 8, target)
        before_o = opt.stats().loads.count
        traverse(opt, table_o)
        loads_o = opt.stats().loads.count - before_o
        assert loads_o == loads_u
        assert unopt.stats().loads.forwarded == 0  # never relocated


class TestColoringFullMachine:
    def test_midrun_recolor_is_safe_and_removes_thrash(self):
        """Two conflicting hot blocks recolored *mid-run*: the hot loop
        keeps its stale pointers, every access chases correctly, and the
        conflict misses disappear."""
        config = MachineConfig(
            hierarchy=HierarchyConfig(l1_size=1024, l1_assoc=1, line_size=32)
        )
        machine = Machine(config)
        num_sets = 1024 // 32
        a = machine.heap.allocate(32, align=1024)
        b = machine.heap.allocate(32, align=1024)
        assert (a // 32) % num_sets == (b // 32) % num_sets
        machine.store(a, 111)
        machine.store(b, 222)

        def hot_loop(x, y):
            before = machine.stats().l1_load_misses_full
            total = 0
            for _ in range(50):
                total += machine.load(x)
                total += machine.load(y)
                machine.execute(400)
            return total, machine.stats().l1_load_misses_full - before

        thrash_total, thrash_misses = hot_loop(a, b)
        assert thrash_total == 50 * (111 + 222)
        assert thrash_misses > 50  # nearly every access conflicted

        allocator = ColoredAllocator(
            machine.create_pool(1 << 16), 32, num_sets, colors=2
        )
        new_a, new_b = recolor(machine, [(a, 32), (b, 32)], allocator)
        assert allocator.color_of(new_a) != allocator.color_of(new_b)

        # The loop still uses the OLD addresses: values via forwarding.
        stale_total, _ = hot_loop(a, b)
        assert stale_total == thrash_total
        assert machine.stats().loads.forwarded >= 100

        # Repaired addresses: bit-identical values, thrash gone.
        repaired_total, repaired_misses = hot_loop(new_a, new_b)
        assert repaired_total == thrash_total
        assert repaired_misses <= 4

    def test_recolor_store_through_stale_pointer_stays_coherent(self):
        machine = Machine()
        address = machine.malloc(32)
        machine.store(address, 5)
        allocator = ColoredAllocator(
            machine.create_pool(1 << 18), 32, 128, colors=4
        )
        (fresh,) = recolor(machine, [(address, 32)], allocator)
        machine.store(address, 42)  # write through the stale pointer
        assert machine.load(fresh) == 42
        assert machine.stats().stores.forwarded >= 1
