"""Tests for parallel-table merging (the Compress optimization)."""

import pytest

from repro import Machine
from repro.opts.merging import merge_tables


@pytest.fixture
def m():
    return Machine()


def make_tables(m, entries):
    base_a = m.malloc(entries * 8)
    base_b = m.malloc(entries * 2)
    for index in range(entries):
        m.store(base_a + index * 8, 1000 + index)
        m.store(base_b + index * 2, 100 + index, 2)
    return base_a, base_b


class TestMerge:
    def test_stride_rounds_to_word(self, m):
        base_a, base_b = make_tables(m, 4)
        pool = m.create_pool(1 << 14)
        merged = merge_tables(m, base_a, 8, base_b, 2, 4, pool)
        assert merged.stride == 16
        assert merged.a_offset == 0
        assert merged.b_offset == 8

    def test_values_interleaved(self, m):
        base_a, base_b = make_tables(m, 8)
        pool = m.create_pool(1 << 14)
        merged = merge_tables(m, base_a, 8, base_b, 2, 8, pool)
        for index in range(8):
            assert m.load(merged.a_address(index)) == 1000 + index
            assert m.load(merged.b_address(index), 2) == 100 + index

    def test_a_entries_forward(self, m):
        """Old htab words become forwarding stubs: stray reads still work."""
        base_a, base_b = make_tables(m, 4)
        pool = m.create_pool(1 << 14)
        merged = merge_tables(m, base_a, 8, base_b, 2, 4, pool)
        assert m.load(base_a + 2 * 8) == 1002
        assert m.memory.read_fbit(base_a + 2 * 8) == 1
        # A store through the old address lands in the merged table.
        m.store(base_a + 2 * 8, 777)
        assert m.load(merged.a_address(2)) == 777

    def test_b_entries_not_forwarded(self, m):
        """Sub-word codetab entries are copied, not relocated: the old
        words keep their data and their bits stay clear (they could not
        forward to four different destinations)."""
        base_a, base_b = make_tables(m, 4)
        pool = m.create_pool(1 << 14)
        merge_tables(m, base_a, 8, base_b, 2, 4, pool)
        assert m.memory.read_fbit(base_b) == 0
        assert m.load(base_b, 2) == 100  # stale copy, by design

    def test_validation(self, m):
        base_a, base_b = make_tables(m, 4)
        pool = m.create_pool(1 << 14)
        with pytest.raises(ValueError):
            merge_tables(m, base_a, 4, base_b, 2, 4, pool)
        with pytest.raises(ValueError):
            merge_tables(m, base_a, 8, base_b, 3, 4, pool)
        with pytest.raises(ValueError):
            merge_tables(m, base_a, 8, base_b, 2, 0, pool)

    def test_paired_probe_touches_one_line_after_merge(self, m):
        """At 128 B lines, probing (a[i], b[i]) costs one miss merged
        versus two misses split -- the shape behind Figure 5's Compress."""
        from repro import MachineConfig
        machine = Machine(MachineConfig().with_line_size(128))
        entries = 512
        base_a = machine.malloc(entries * 8)
        base_b = machine.malloc(entries * 2)
        pool = machine.create_pool(1 << 16)
        merged = merge_tables(machine, base_a, 8, base_b, 2, entries, pool)

        def probe_split(index):
            machine.load(base_a + index * 8)
            machine.load(base_b + index * 2, 2)

        def probe_merged(index):
            machine.load(merged.a_address(index))
            machine.load(merged.b_address(index), 2)

        # Probe sparse indices so every probe is a fresh line.  Compare
        # *full* misses: the merged layout turns the codetab access into a
        # same-line (partial/hit) access instead of a second full miss.
        before = machine.stats().l1_load_misses_full
        for index in range(0, entries, 64):
            probe_merged(index)
        merged_misses = machine.stats().l1_load_misses_full - before
        # Split probes forward through base_a (it was relocated!), so use
        # fresh tables for a fair split baseline.
        machine2 = Machine(MachineConfig().with_line_size(128))
        a2 = machine2.malloc(entries * 8)
        b2 = machine2.malloc(entries * 2)
        before = machine2.stats().l1_load_misses_full
        for index in range(0, entries, 64):
            machine2.load(a2 + index * 8)
            machine2.load(b2 + index * 2, 2)
        split_misses = machine2.stats().l1_load_misses_full - before
        assert merged_misses < split_misses
