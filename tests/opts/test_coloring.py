"""Tests for data coloring."""

import pytest

from repro import Machine, MachineConfig
from repro.cache.hierarchy import HierarchyConfig
from repro.core.errors import AllocationError
from repro.opts.coloring import ColoredAllocator, recolor


@pytest.fixture
def m():
    return Machine()


def make_allocator(m, colors=4, line_size=32, num_sets=128, pool_size=1 << 18):
    pool = m.create_pool(pool_size)
    return ColoredAllocator(pool, line_size, num_sets, colors)


class TestColoredAllocator:
    def test_allocations_stay_in_band(self, m):
        allocator = make_allocator(m, colors=4)
        for color in range(4):
            for _ in range(10):
                addr = allocator.allocate(64, color)
                assert allocator.color_of(addr) == color

    def test_band_overflow_moves_to_next_span(self, m):
        allocator = make_allocator(m, colors=4, line_size=32, num_sets=8)
        # band = 32*8/4 = 64 bytes; two 40-byte objects cannot share it.
        a = allocator.allocate(40, 0)
        b = allocator.allocate(40, 0)
        assert allocator.color_of(a) == allocator.color_of(b) == 0
        assert b >= a + allocator.span_bytes - allocator.band_bytes

    def test_different_colors_never_conflict(self, m):
        """Objects in different colors map to disjoint cache sets."""
        line, sets = 32, 64
        allocator = make_allocator(m, colors=2, line_size=line, num_sets=sets)
        a = allocator.allocate(line, 0)
        b = allocator.allocate(line, 1)
        def set_of(addr):
            return (addr // line) % sets
        assert set_of(a) != set_of(b)

    def test_rejects_oversized_object(self, m):
        allocator = make_allocator(m, colors=4, line_size=32, num_sets=8)
        with pytest.raises(AllocationError):
            allocator.allocate(1024, 0)

    def test_rejects_bad_color(self, m):
        allocator = make_allocator(m, colors=2)
        with pytest.raises(ValueError):
            allocator.allocate(8, 2)

    def test_rejects_indivisible_colors(self, m):
        pool = m.create_pool(1 << 16)
        with pytest.raises(ValueError):
            ColoredAllocator(pool, 32, 128, 3)


class TestRecolor:
    def test_values_preserved_and_forwarded(self, m):
        allocator = make_allocator(m)
        objects = []
        for value in range(6):
            addr = m.malloc(32)
            m.store(addr, value * 11)
            objects.append((addr, 32))
        new_addresses = recolor(m, objects, allocator)
        for index, (old, _) in enumerate(objects):
            assert m.load(new_addresses[index]) == index * 11
            assert m.load(old) == index * 11  # forwarded

    def test_round_robin_colors(self, m):
        allocator = make_allocator(m, colors=4)
        objects = [(m.malloc(16), 16) for _ in range(6)]
        new_addresses = recolor(m, objects, allocator)
        colors = [allocator.color_of(addr) for addr in new_addresses]
        assert colors == [0, 1, 2, 3, 0, 1]

    def test_coloring_removes_conflict_thrash(self):
        """Direct-mapped cache + two hot conflicting blocks: coloring to
        distinct bands eliminates the ping-pong (Section 2.2)."""
        config = MachineConfig(
            hierarchy=HierarchyConfig(l1_size=1024, l1_assoc=1, line_size=32)
        )
        machine = Machine(config)
        num_sets = 1024 // 32
        # Two blocks mapping to the same set.
        a = machine.heap.allocate(32, align=1024)
        b = machine.heap.allocate(32, align=1024)
        assert (a // 32) % num_sets == (b // 32) % num_sets

        def thrash():
            # Count *full* misses, spacing iterations out so every fill
            # completes (otherwise MSHR combining reclassifies the thrash
            # as partial misses).
            before = machine.stats().l1_load_misses_full
            for _ in range(100):
                machine.load(a)
                machine.load(b)
                machine.execute(400)
            return machine.stats().l1_load_misses_full - before

        conflict_misses = thrash()
        allocator = ColoredAllocator(
            machine.create_pool(1 << 16), 32, num_sets, colors=2
        )
        new_a, new_b = recolor(machine, [(a, 32), (b, 32)], allocator)
        a, b = new_a, new_b
        colored_misses = thrash()
        assert conflict_misses > 100  # nearly every access thrashed
        assert colored_misses <= 4
