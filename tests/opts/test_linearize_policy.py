"""Tests for the counter-triggered linearization policy."""

import pytest

from repro import Machine, NULL
from repro.opts.linearize import DEFAULT_THRESHOLD, ListLinearizer
from repro.runtime.records import RecordLayout

NODE = RecordLayout("node", [("value", 8), ("next", 8)])


@pytest.fixture
def m():
    return Machine()


def build(m, values):
    head_handle = m.malloc(8)
    slot = head_handle
    for value in values:
        node = NODE.alloc(m)
        NODE.write(m, node, "value", value)
        m.store(slot, node)
        slot = node + NODE.offset("next")
    m.store(slot, NULL)
    return head_handle


def read(m, head_handle):
    out = []
    node = m.load(head_handle)
    while node != NULL:
        out.append(NODE.read(m, node, "value"))
        node = NODE.read(m, node, "next")
    return out


class TestPolicy:
    def test_default_threshold_is_50(self, m):
        lin = ListLinearizer(m, m.create_pool(4096), 8, 16)
        assert lin.threshold == DEFAULT_THRESHOLD == 50

    def test_linearizes_past_threshold(self, m):
        pool = m.create_pool(1 << 16)
        lin = ListLinearizer(m, pool, NODE.offset("next"), NODE.size, threshold=3)
        head = build(m, [1, 2, 3])
        assert not lin.note_op(head)
        assert not lin.note_op(head)
        assert not lin.note_op(head)
        assert lin.note_op(head)  # 4th op crosses threshold=3
        assert lin.linearizations == 1
        assert read(m, head) == [1, 2, 3]

    def test_counter_resets(self, m):
        pool = m.create_pool(1 << 16)
        lin = ListLinearizer(m, pool, NODE.offset("next"), NODE.size, threshold=2)
        head = build(m, [5])
        fired = [lin.note_op(head) for _ in range(9)]
        assert fired == [False, False, True, False, False, True, False, False, True]

    def test_lists_tracked_independently(self, m):
        pool = m.create_pool(1 << 16)
        lin = ListLinearizer(m, pool, NODE.offset("next"), NODE.size, threshold=2)
        a = build(m, [1])
        b = build(m, [2])
        lin.note_op(a)
        lin.note_op(a)
        assert not lin.note_op(b)  # b's counter is separate
        assert lin.note_op(a)

    def test_nodes_moved_accumulates(self, m):
        pool = m.create_pool(1 << 16)
        lin = ListLinearizer(m, pool, NODE.offset("next"), NODE.size)
        head = build(m, list(range(7)))
        lin.linearize(head)
        lin.linearize(head)
        assert lin.nodes_moved == 14

    def test_threshold_validation(self, m):
        with pytest.raises(ValueError):
            ListLinearizer(m, m.create_pool(4096), 8, 16, threshold=0)

    def test_note_op_charges_instructions(self, m):
        pool = m.create_pool(1 << 16)
        lin = ListLinearizer(m, pool, NODE.offset("next"), NODE.size)
        head = build(m, [1])
        before = m.stats().instructions
        lin.note_op(head)
        assert m.stats().instructions > before
