"""Tests for record+array packing (the Eqntott optimization)."""

import pytest

from repro import Machine
from repro.opts.packing import pack_pointer_table, pack_record_with_array
from repro.runtime.records import RecordLayout

PTERM = RecordLayout("pterm", [("ptand", 8), ("index", 8)])


@pytest.fixture
def m():
    return Machine()


def make_pterm(m, index, array_values):
    record = PTERM.alloc(m)
    array = m.malloc(len(array_values) * 2)
    for position, value in enumerate(array_values):
        m.store(array + position * 2, value, 2)
    PTERM.write(m, record, "ptand", array)
    PTERM.write(m, record, "index", index)
    return record


class TestPackRecordWithArray:
    def test_record_and_array_contiguous(self, m):
        record = make_pterm(m, 7, [1, 2, 3, 4])
        pool = m.create_pool(1 << 14)
        new_record = pack_record_with_array(m, record, PTERM, "ptand", 8, pool)
        new_array = PTERM.read(m, new_record, "ptand")
        assert new_array == new_record + PTERM.size

    def test_values_survive(self, m):
        record = make_pterm(m, 7, [10, 20, 30])
        pool = m.create_pool(1 << 14)
        new_record = pack_record_with_array(m, record, PTERM, "ptand", 6, pool)
        assert PTERM.read(m, new_record, "index") == 7
        new_array = PTERM.read(m, new_record, "ptand")
        assert [m.load(new_array + i * 2, 2) for i in range(3)] == [10, 20, 30]

    def test_stale_record_pointer_forwards(self, m):
        record = make_pterm(m, 9, [5])
        pool = m.create_pool(1 << 14)
        pack_record_with_array(m, record, PTERM, "ptand", 2, pool)
        # Old record address still reads correctly via forwarding.
        assert PTERM.read(m, record, "index") == 9
        assert m.stats().loads.forwarded >= 1

    def test_stale_array_pointer_forwards(self, m):
        record = make_pterm(m, 9, [42])
        old_array = PTERM.read(m, record, "ptand")
        pool = m.create_pool(1 << 14)
        pack_record_with_array(m, record, PTERM, "ptand", 2, pool)
        assert m.load(old_array, 2) == 42

    def test_null_array_tolerated(self, m):
        record = PTERM.alloc(m)
        PTERM.write(m, record, "index", 3)
        pool = m.create_pool(1 << 14)
        new_record = pack_record_with_array(m, record, PTERM, "ptand", 8, pool)
        assert PTERM.read(m, new_record, "index") == 3
        assert PTERM.read(m, new_record, "ptand") == 0


class TestPackPointerTable:
    def test_packs_in_index_order(self, m):
        table = m.malloc(8 * 8)
        for index in range(8):
            record = make_pterm(m, index, [index] * 4)
            m.store(table + index * 8, record)
        pool = m.create_pool(1 << 16)
        packed = pack_pointer_table(
            m, table, 8, PTERM, "ptand", lambda mm, r: 8, pool
        )
        assert packed == 8
        addresses = [m.load(table + index * 8) for index in range(8)]
        # Increasing hash-index order => strictly increasing addresses.
        assert addresses == sorted(addresses)
        # Each chunk is record + 8-byte array.
        spans = {b - a for a, b in zip(addresses, addresses[1:])}
        assert spans == {PTERM.size + 8}

    def test_table_slots_updated(self, m):
        table = m.malloc(2 * 8)
        record = make_pterm(m, 1, [9])
        m.store(table, record)
        pool = m.create_pool(1 << 14)
        pack_pointer_table(m, table, 2, PTERM, "ptand", lambda mm, r: 2, pool)
        new_record = m.load(table)
        assert new_record != record
        assert PTERM.read(m, new_record, "index") == 1

    def test_null_slots_skipped(self, m):
        table = m.malloc(4 * 8)  # all NULL
        pool = m.create_pool(1 << 14)
        assert pack_pointer_table(
            m, table, 4, PTERM, "ptand", lambda mm, r: 8, pool
        ) == 0

    def test_variable_array_sizes(self, m):
        table = m.malloc(2 * 8)
        sizes = {}
        for index, count in enumerate((2, 6)):
            record = make_pterm(m, index, list(range(count)))
            sizes[record] = count * 2
            m.store(table + index * 8, record)
        pool = m.create_pool(1 << 14)

        def size_of(mm, record):
            return sizes[record]

        pack_pointer_table(m, table, 2, PTERM, "ptand", size_of, pool)
        first = m.load(table)
        second = m.load(table + 8)
        # 2-short array rounds to one word.
        assert second - first == PTERM.size + 8
