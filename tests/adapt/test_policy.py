"""Relocation policies: trigger logic, patience, bandit determinism."""

import pytest

from repro.adapt.config import POLICIES, AdaptConfig
from repro.adapt.policy import WindowFeedback, make_policy

CANDIDATES = ["relinearize:lists", "copy:objects", "recolor:objects"]


def feedback(index=0, miss_rate=0.0, chase_rate=0.0, stall_rate=0.0):
    return WindowFeedback(
        index=index,
        refs=1024,
        miss_rate=miss_rate,
        chase_rate=chase_rate,
        stall_rate=stall_rate,
    )


def config(policy, **overrides):
    knobs = dict(
        policy=policy,
        miss_rate_threshold=0.1,
        chase_rate_threshold=0.05,
        patience=3,
    )
    knobs.update(overrides)
    return AdaptConfig(**knobs)


class TestFactory:
    @pytest.mark.parametrize("name", POLICIES)
    def test_every_policy_constructs(self, name):
        assert make_policy(config(name)).name == name


class TestThreshold:
    def test_quiet_window_holds(self):
        policy = make_policy(config("threshold"))
        assert policy.observe(feedback(miss_rate=0.09)) is None

    def test_miss_rate_crossing_fires_with_reason(self):
        policy = make_policy(config("threshold"))
        reason = policy.observe(feedback(miss_rate=0.2))
        assert reason is not None and "miss_rate" in reason

    def test_chase_rate_crossing_fires(self):
        policy = make_policy(config("threshold"))
        reason = policy.observe(feedback(chase_rate=0.06))
        assert reason is not None and "chase_rate" in reason

    def test_chooses_first_registered_candidate(self):
        policy = make_policy(config("threshold"))
        assert policy.choose(CANDIDATES) == "relinearize:lists"


class TestHysteresis:
    def test_needs_patience_consecutive_bad_windows(self):
        policy = make_policy(config("hysteresis"))
        assert policy.observe(feedback(0, miss_rate=0.2)) is None
        assert policy.observe(feedback(1, miss_rate=0.2)) is None
        reason = policy.observe(feedback(2, miss_rate=0.2))
        assert reason is not None and "3 consecutive" in reason

    def test_good_window_resets_the_streak(self):
        policy = make_policy(config("hysteresis"))
        policy.observe(feedback(0, miss_rate=0.2))
        policy.observe(feedback(1, miss_rate=0.2))
        assert policy.observe(feedback(2, miss_rate=0.0)) is None
        assert policy.observe(feedback(3, miss_rate=0.2)) is None
        assert policy.observe(feedback(4, miss_rate=0.2)) is None
        assert policy.observe(feedback(5, miss_rate=0.2)) is not None

    def test_streak_resets_after_firing(self):
        policy = make_policy(config("hysteresis", patience=2))
        policy.observe(feedback(0, miss_rate=0.2))
        assert policy.observe(feedback(1, miss_rate=0.2)) is not None
        assert policy.observe(feedback(2, miss_rate=0.2)) is None


class TestEpsilonGreedy:
    def test_tries_every_candidate_before_exploiting(self):
        policy = make_policy(config("epsilon_greedy", epsilon=0.0))
        picks = [policy.choose(CANDIDATES) for _ in range(3)]
        assert sorted(picks) == sorted(CANDIDATES)

    def test_exploits_best_observed_reward(self):
        policy = make_policy(config("epsilon_greedy", epsilon=0.0))
        for _ in range(3):
            policy.choose(CANDIDATES)
        policy.reward("copy:objects", 500.0)
        policy.reward("relinearize:lists", -100.0)
        policy.reward("recolor:objects", 10.0)
        assert policy.choose(CANDIDATES) == "copy:objects"

    def test_same_seed_same_choices(self):
        def trajectory(seed):
            policy = make_policy(
                config("epsilon_greedy", epsilon=0.5, seed=seed)
            )
            picks = []
            for step in range(20):
                pick = policy.choose(CANDIDATES)
                picks.append(pick)
                policy.reward(pick, float(step % 3))
            return picks

        assert trajectory(7) == trajectory(7)

    def test_different_seeds_can_diverge(self):
        def trajectory(seed):
            policy = make_policy(
                config("epsilon_greedy", epsilon=0.9, seed=seed)
            )
            return [policy.choose(CANDIDATES) for _ in range(40)]

        assert any(
            trajectory(1) != trajectory(seed) for seed in (2, 3, 4, 5)
        )
