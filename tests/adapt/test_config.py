"""AdaptConfig: validated frozen leaf, distinct fingerprints per knob."""

import dataclasses

import pytest

from repro.adapt.config import POLICIES, AdaptConfig


class TestValidation:
    def test_defaults_are_valid(self):
        config = AdaptConfig()
        assert config.policy in POLICIES

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown adapt policy"):
            AdaptConfig(policy="oracle")

    @pytest.mark.parametrize("bad", [0, 63, 1 << 21])
    def test_interval_bounds(self, bad):
        with pytest.raises(ValueError, match="interval"):
            AdaptConfig(interval=bad)

    @pytest.mark.parametrize(
        "field", ["miss_rate_threshold", "chase_rate_threshold"]
    )
    @pytest.mark.parametrize("bad", [0.0, -0.1, 1.5])
    def test_threshold_bounds(self, field, bad):
        with pytest.raises(ValueError, match=field):
            AdaptConfig(**{field: bad})

    @pytest.mark.parametrize("bad", [0.0, 1.01])
    def test_decay_bounds(self, bad):
        with pytest.raises(ValueError, match="decay"):
            AdaptConfig(decay=bad)

    @pytest.mark.parametrize("bad", [0, 65])
    def test_patience_bounds(self, bad):
        with pytest.raises(ValueError, match="patience"):
            AdaptConfig(patience=bad)

    @pytest.mark.parametrize("bad", [-1, 1025])
    def test_cooldown_bounds(self, bad):
        with pytest.raises(ValueError, match="cooldown"):
            AdaptConfig(cooldown=bad)

    @pytest.mark.parametrize("bad", [-0.1, 1.1])
    def test_epsilon_bounds(self, bad):
        with pytest.raises(ValueError, match="epsilon"):
            AdaptConfig(epsilon=bad)

    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError, match="seed"):
            AdaptConfig(seed=-1)

    def test_tiny_pool_rejected(self):
        with pytest.raises(ValueError, match="pool_bytes"):
            AdaptConfig(pool_bytes=1024)

    @pytest.mark.parametrize("bad", [0, 257])
    def test_max_actions_bounds(self, bad):
        with pytest.raises(ValueError, match="max_actions"):
            AdaptConfig(max_actions=bad)


class TestIdentity:
    def test_frozen(self):
        config = AdaptConfig()
        with pytest.raises(dataclasses.FrozenInstanceError):
            config.interval = 4096

    def test_asdict_round_trips_every_knob(self):
        """The cache fingerprint flows through ``asdict``: any knob
        change must be visible there or cached results would alias."""
        base = dataclasses.asdict(AdaptConfig())
        for field, value in [
            ("policy", "threshold"),
            ("interval", 4096),
            ("miss_rate_threshold", 0.5),
            ("chase_rate_threshold", 0.5),
            ("decay", 0.9),
            ("patience", 3),
            ("cooldown", 7),
            ("epsilon", 0.25),
            ("seed", 99),
            ("max_actions", 2),
        ]:
            changed = dataclasses.asdict(AdaptConfig(**{field: value}))
            assert changed != base, field
