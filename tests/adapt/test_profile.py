"""HeatProfile: cumulative-counter diffing under exponential decay."""

import pytest

from repro.adapt.profile import HeatProfile


class TestFold:
    def test_first_fold_is_raw_delta(self):
        profile = HeatProfile(decay=0.5)
        access, forwarded = profile.fold({1: 10, 2: 4}, {1: 2})
        assert (access, forwarded) == (14, 2)
        assert profile.heat == {1: 10.0, 2: 4.0}
        assert profile.forwarded_heat == {1: 2.0}

    def test_counters_are_cumulative_not_per_window(self):
        """The timeline reports running totals; the profile must diff."""
        profile = HeatProfile(decay=1.0)
        profile.fold({1: 10}, {})
        access, _ = profile.fold({1: 15}, {})
        assert access == 5
        assert profile.heat[1] == 15.0

    def test_decay_halves_old_heat(self):
        profile = HeatProfile(decay=0.5)
        profile.fold({1: 8}, {})
        profile.fold({1: 8, 2: 6}, {})  # region 1 idle this window
        assert profile.heat[1] == 4.0
        assert profile.heat[2] == 6.0

    def test_phase_shift_flips_hottest_within_windows(self):
        """Decay is what makes the profile phase-sensitive: after a
        shift the new hot region overtakes history in a few folds."""
        profile = HeatProfile(decay=0.5)
        total = 0
        for _ in range(10):  # long region-1 phase
            total += 100
            profile.fold({1: total}, {})
        assert profile.hottest(1) == [1]
        hot2 = 0
        for _ in range(3):  # short region-2 phase
            hot2 += 100
            profile.fold({1: total, 2: hot2}, {})
        assert profile.hottest(1) == [2]

    @pytest.mark.parametrize("bad", [0.0, 1.5])
    def test_bad_decay_rejected(self, bad):
        with pytest.raises(ValueError, match="decay"):
            HeatProfile(decay=bad)


class TestQueries:
    def test_hottest_orders_by_heat_then_id(self):
        profile = HeatProfile(decay=1.0)
        profile.fold({3: 5, 1: 9, 2: 5}, {})
        assert profile.hottest(3) == [1, 2, 3]

    def test_heat_of_maps_address_to_region(self):
        profile = HeatProfile(decay=1.0)
        profile.fold({2: 7}, {})
        shift = 16  # 64KB regions
        assert profile.heat_of(2 << 16, shift) == 7.0
        assert profile.heat_of((2 << 16) + 100, shift) == 7.0
        assert profile.heat_of(3 << 16, shift) == 0.0

    def test_chase_fraction(self):
        profile = HeatProfile(decay=1.0)
        assert profile.chase_fraction() == 0.0
        profile.fold({1: 10}, {1: 5})
        assert profile.chase_fraction() == 0.5

    def test_payload_shape(self):
        profile = HeatProfile(decay=1.0)
        profile.fold({r: r + 1 for r in range(12)}, {})
        payload = profile.to_payload()
        assert payload["regions"] == 12
        assert len(payload["hottest"]) == 8  # top regions only
        assert payload["hottest"][0]["region"] == 11
