"""AdaptEngine: window driver, guards, audit trail, end-to-end runs."""

from dataclasses import replace

import pytest

from repro import Machine, MachineConfig
from repro.adapt.config import AdaptConfig
from repro.apps import get_application
from repro.apps.base import Variant
from repro.experiments.config import APP_SEEDS, experiment_config

#: Huge window so real setup traffic never closes a window on its own;
#: every window in the synthetic tests is fed to ``on_window`` by hand.
INTERVAL = 1 << 20


def make_engine(**overrides):
    knobs = dict(
        policy="threshold",
        interval=INTERVAL,
        miss_rate_threshold=0.5,
        chase_rate_threshold=0.5,
        cooldown=0,
        max_actions=8,
    )
    knobs.update(overrides)
    machine = Machine(MachineConfig(adapt=AdaptConfig(**knobs)))
    return machine, machine.adapt


def register_counters(machine, engine, count=8):
    """A registered copy candidate over real heap objects."""
    objects = []
    for value in range(count):
        address = machine.malloc(32)
        machine.store(address, value)
        objects.append((address, 32))
    engine.register_objects("counters", objects)
    return objects


def window(index, refs=INTERVAL, miss_rate=0.9, chases=0, stall_slots=0):
    return {
        "index": index,
        "refs": refs,
        "miss_rate": miss_rate,
        "chases": chases,
        "stall_slots": stall_slots,
    }


class TestWindowDriver:
    def test_bad_full_window_executes_one_decision(self):
        machine, engine = make_engine()
        register_counters(machine, engine)
        engine.on_window(window(0))
        assert len(engine.decisions) == 1
        decision = engine.decisions[0]
        assert decision.action == "copy" and decision.target == "counters"
        assert decision.trigger["miss_rate"] == 0.9
        assert engine.counters["cost_cycles"] > 0

    def test_quiet_window_holds(self):
        machine, engine = make_engine()
        register_counters(machine, engine)
        engine.on_window(window(0, miss_rate=0.1))
        assert engine.decisions == []

    def test_partial_trailing_window_never_executes(self):
        """finish() flushes a short window; executing machine operations
        there would break capture/replay window parity."""
        machine, engine = make_engine()
        register_counters(machine, engine)
        engine.on_window(window(0, refs=INTERVAL - 1, miss_rate=0.9))
        assert engine.decisions == []
        assert engine.counters["windows"] == 1

    def test_no_registered_assets_no_decision(self):
        machine, engine = make_engine()
        engine.on_window(window(0))
        assert engine.decisions == []

    def test_post_decision_window_skipped_as_relocation_noise(self):
        """The engine's own relocation dominates the next window; its
        miss spike must never re-trigger."""
        machine, engine = make_engine()
        register_counters(machine, engine)
        engine.on_window(window(0))
        engine.on_window(window(1))
        assert len(engine.decisions) == 1
        assert engine.counters["skipped_relocation"] == 1

    def test_cooldown_spaces_decisions(self):
        machine, engine = make_engine(cooldown=2)
        register_counters(machine, engine)
        for index in range(6):
            engine.on_window(window(index))
        # w0 decides; w1 is relocation noise; w2/w3 cool down; w4
        # decides; w5 is relocation noise again.
        assert [d.window for d in engine.decisions] == [0, 4]
        assert engine.counters["skipped_cooldown"] == 2
        assert engine.counters["skipped_relocation"] == 2

    def test_max_actions_caps_decisions(self):
        machine, engine = make_engine(max_actions=1)
        register_counters(machine, engine)
        for index in range(6):
            engine.on_window(window(index))
        assert len(engine.decisions) == 1

    def test_benefit_settles_one_window_later(self):
        machine, engine = make_engine(max_actions=1)
        register_counters(machine, engine)
        engine.on_window(window(0, stall_slots=INTERVAL // 2))
        assert engine.counters["settled"] == 0
        engine.on_window(window(1, stall_slots=0))
        assert engine.counters["settled"] == 1
        entry = engine.ledger[0]
        assert entry.settled
        assert entry.stall_rate_before == 0.5
        assert entry.stall_rate_after == 0.0
        assert entry.benefit_cycles == pytest.approx(0.5 * INTERVAL)

    def test_duplicate_candidate_rejected(self):
        machine, engine = make_engine()
        register_counters(machine, engine)
        with pytest.raises(ValueError, match="duplicate adapt candidate"):
            register_counters(machine, engine)

    def test_copy_preserves_values_and_repairs_slots(self):
        machine, engine = make_engine()
        slots = []
        objects = []
        for value in range(4):
            slot = machine.malloc(8)
            address = machine.malloc(32)
            machine.store(address, value * 7)
            machine.store(slot, address)
            slots.append(slot)
            objects.append((address, 32))
        engine.register_objects("cells", objects, slots=slots)
        engine.on_window(window(0))
        assert len(engine.decisions) == 1
        for index, (old, _) in enumerate(objects):
            repaired = machine.load(slots[index])
            assert repaired != old  # slot now holds the new address
            assert machine.load(repaired) == index * 7
            assert machine.load(old) == index * 7  # stale pointer chases


SCALE = 0.4
LINE = 128


@pytest.fixture(scope="module")
def adaptive_run():
    """One real adaptive phase-app run (module-scoped; ~0.3s)."""
    config = replace(
        experiment_config(LINE),
        adapt=AdaptConfig(
            policy="hysteresis",
            interval=1024,
            miss_rate_threshold=0.62,
            chase_rate_threshold=0.02,
            patience=2,
            cooldown=4,
            max_actions=4,
            seed=1,
        ),
        events_capacity=4096,
    )
    app = get_application(
        "mst_phase", scale=SCALE, seed=APP_SEEDS.get("mst_phase", 1)
    )
    return app.run(Variant.L, config)


class TestEndToEnd:
    def test_decisions_fired(self, adaptive_run):
        payload = adaptive_run.extras["adapt"]
        assert payload["policy"] == "hysteresis"
        assert payload["counters"]["decisions"] >= 1

    def test_counters_reconcile_with_events_and_ledger(self, adaptive_run):
        """The acceptance contract: every RelocationDecision appears as
        an adapt.decision event, a ledger entry, and a counter tick."""
        payload = adaptive_run.extras["adapt"]
        decisions = payload["counters"]["decisions"]
        assert decisions == len(payload["decisions"])
        assert decisions == len(payload["ledger"])
        events = adaptive_run.timeline["events"]
        assert events["counts"]["adapt.decision"] == decisions
        records = [
            r for r in events["records"] if r["kind"] == "adapt.decision"
        ]
        for record, decision in zip(records, payload["decisions"]):
            assert record["args"]["window"] == decision["window"]
            assert record["args"]["action"] == decision["action"]

    def test_every_decision_carries_trigger_and_cost(self, adaptive_run):
        payload = adaptive_run.extras["adapt"]
        for decision, entry in zip(payload["decisions"], payload["ledger"]):
            assert set(decision["trigger"]) == {
                "miss_rate",
                "chase_rate",
                "stall_rate",
            }
            assert entry["window"] == decision["window"]
            assert entry["cost_cycles"] > 0

    def test_app_optimizer_windows_skipped(self, adaptive_run):
        """The L variant's own linearization pass must not trigger the
        engine: its miss spike is relocation traffic, not phase change."""
        payload = adaptive_run.extras["adapt"]
        assert payload["counters"]["skipped_relocation"] >= 1

    def test_checksum_matches_static_arms(self, adaptive_run):
        app = get_application(
            "mst_phase", scale=SCALE, seed=APP_SEEDS.get("mst_phase", 1)
        )
        static = app.run(Variant.L, experiment_config(LINE))
        unopt = app.run(Variant.N, experiment_config(LINE))
        assert adaptive_run.checksum == static.checksum == unopt.checksum

    def test_zero_cost_when_off(self):
        """No adapt config: no engine, no payload, fast path eligible."""
        from repro.trace.kernels import specializable

        config = experiment_config(LINE)
        assert config.adapt is None
        assert specializable(config)
        app = get_application(
            "mst_phase", scale=0.1, seed=APP_SEEDS.get("mst_phase", 1)
        )
        result = app.run(Variant.L, config)
        assert "adapt" not in result.extras
