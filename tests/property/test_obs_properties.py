"""Property-based tests for snapshot algebra (merge/diff/absorb)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.registry import COUNTER, EMPTY, GAUGE, HISTOGRAM, Registry, Snapshot

_NAMES = st.sampled_from(
    [
        "time.cycles",
        "core.instructions",
        "cache.l1.miss.load_full",
        "bw.l1_l2.bytes",
        "fwd.hops",
        "heap.high_water",
        "fwd.hop_histogram",
        "runs.captured",
    ]
)

# Pin each name to one kind so generated snapshots are merge-compatible.
_KIND_OF = {
    "heap.high_water": GAUGE,
    "fwd.hop_histogram": HISTOGRAM,
}

_COUNTS = st.integers(min_value=0, max_value=10**9)


def _value_for(name, draw):
    if _KIND_OF.get(name, COUNTER) == HISTOGRAM:
        return draw(
            st.dictionaries(
                st.integers(min_value=0, max_value=8), _COUNTS, max_size=4
            )
        )
    return draw(_COUNTS)


@st.composite
def snapshots(draw):
    names = draw(st.lists(_NAMES, unique=True, max_size=8))
    values = {name: _value_for(name, draw) for name in names}
    kinds = {name: _KIND_OF.get(name, COUNTER) for name in names}
    return Snapshot(values, kinds)


@given(snapshots(), snapshots())
@settings(max_examples=200)
def test_merge_commutes(a, b):
    assert a.merge(b) == b.merge(a)


@given(snapshots(), snapshots(), snapshots())
@settings(max_examples=100)
def test_merge_associates(a, b, c):
    assert a.merge(b).merge(c) == a.merge(b.merge(c))


@given(snapshots())
def test_empty_is_identity(a):
    assert a.merge(EMPTY) == a
    assert EMPTY.merge(a) == a


@given(snapshots(), snapshots())
def test_merge_loses_no_keys(a, b):
    merged = a.merge(b)
    assert set(merged) == set(a) | set(b)


@given(snapshots(), snapshots())
def test_diff_loses_no_keys(a, b):
    assert set(a.diff(b)) == set(a) | set(b)


@given(snapshots(), snapshots())
@settings(max_examples=200)
def test_diff_then_merge_roundtrips_counters(base, extra):
    """merge(base, x).diff(base) recovers x on counter/histogram keys."""
    total = base.merge(extra)
    delta = total.diff(base)
    for name in extra:
        if _KIND_OF.get(name, COUNTER) == GAUGE:
            continue  # gauges are levels: diff reports the current value
        expected = extra[name]
        if _KIND_OF.get(name, COUNTER) == HISTOGRAM:
            got = delta.get(name, {})
            assert {k: v for k, v in expected.items() if v} == {
                k: v for k, v in got.items() if v
            }
        else:
            assert delta[name] == expected

    # And no spurious deltas appear on keys extra never touched.
    for name in base:
        if name in extra or _KIND_OF.get(name, COUNTER) == GAUGE:
            continue
        value = delta.get(name, 0)
        assert value == {} or value == 0


@given(st.lists(snapshots(), max_size=6))
@settings(max_examples=100)
def test_absorb_equals_fold_merge(parts):
    """Registry.absorb over shards == functional Snapshot.merge fold."""
    registry = Registry()
    folded = EMPTY
    for part in parts:
        registry.absorb(part)
        folded = folded.merge(part)
    assert registry.snapshot() == folded
