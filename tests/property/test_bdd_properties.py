"""Property-based tests for the BDD package: boolean-algebra laws hold
on simulated memory, and linearization never changes a function."""

import itertools

from hypothesis import given, settings, strategies as st

from repro import Machine, MachineConfig
from repro.bdd.bdd import BDD, OP_AND, OP_OR, OP_XOR

NUM_VARS = 4


def fresh_bdd():
    machine = Machine(MachineConfig(heap_size=2 << 20, pool_region_size=2 << 20))
    return machine, BDD(machine, NUM_VARS, buckets=64, cache_slots=128)


#: A random formula as a nested tuple tree.
formulas = st.recursive(
    st.tuples(st.just("var"), st.integers(0, NUM_VARS - 1), st.booleans()),
    lambda children: st.tuples(
        st.sampled_from([OP_AND, OP_OR, OP_XOR]), children, children
    ),
    max_leaves=6,
)


def build(bdd, formula):
    if formula[0] == "var":
        _, index, positive = formula
        return bdd.var(index) if positive else bdd.nvar(index)
    op, left, right = formula
    return bdd.apply(op, build(bdd, left), build(bdd, right))


def evaluate_formula(formula, assignment):
    if formula[0] == "var":
        _, index, positive = formula
        return assignment[index] if positive else not assignment[index]
    op, left, right = formula
    lhs = evaluate_formula(left, assignment)
    rhs = evaluate_formula(right, assignment)
    if op == OP_AND:
        return lhs and rhs
    if op == OP_OR:
        return lhs or rhs
    return lhs != rhs


class TestBDDSemantics:
    @given(formula=formulas)
    @settings(max_examples=30, deadline=None)
    def test_bdd_agrees_with_truth_table(self, formula):
        machine, bdd = fresh_bdd()
        root = build(bdd, formula)
        for bits in itertools.product([False, True], repeat=NUM_VARS):
            assert bdd.evaluate(root, list(bits)) == evaluate_formula(
                formula, list(bits)
            )

    @given(formula=formulas)
    @settings(max_examples=30, deadline=None)
    def test_satcount_matches_enumeration(self, formula):
        machine, bdd = fresh_bdd()
        root = build(bdd, formula)
        expected = sum(
            evaluate_formula(formula, list(bits))
            for bits in itertools.product([False, True], repeat=NUM_VARS)
        )
        assert bdd.satcount(root) == expected

    @given(formula=formulas)
    @settings(max_examples=25, deadline=None)
    def test_linearization_preserves_function(self, formula):
        """The safety theorem at the BDD level: relocating the unique
        table never changes any function's truth table."""
        machine, bdd = fresh_bdd()
        root = build(bdd, formula)
        before = [
            bdd.evaluate(root, list(bits))
            for bits in itertools.product([False, True], repeat=NUM_VARS)
        ]
        pool = machine.create_pool(1 << 18)
        bdd.linearize_unique_table(pool)
        after = [
            bdd.evaluate(root, list(bits))
            for bits in itertools.product([False, True], repeat=NUM_VARS)
        ]
        assert before == after

    @given(formula=formulas)
    @settings(max_examples=20, deadline=None)
    def test_fixup_preserves_function_and_silences_forwarding(self, formula):
        machine, bdd = fresh_bdd()
        root = build(bdd, formula)
        expected = bdd.satcount(root)
        pool = machine.create_pool(1 << 18)
        bdd.linearize_unique_table(pool)
        bdd.fixup_tree_pointers()
        final_root = bdd._raw_final(root)
        hops_before = machine.stats().forwarding_hops
        assert bdd.satcount(final_root) == expected
        assert machine.stats().forwarding_hops == hops_before

    @given(formula=formulas)
    @settings(max_examples=20, deadline=None)
    def test_idempotent_construction(self, formula):
        """Building the same formula twice returns the same node."""
        machine, bdd = fresh_bdd()
        first = build(bdd, formula)
        second = build(bdd, formula)
        assert first == second
