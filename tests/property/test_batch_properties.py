"""Property-based parity of the batch replay engine.

Random *config sets* -- mixed line sizes, replacement policies, OoO
windows, speculation on/off, and miss-path mechanisms -- replayed
through the batch engine must produce per-cell stats and aggregate
metric trees bit-identical to driving ``replay_trace`` one cell at a
time.  This is the hypothesis-shaped version of the contract the
integration suite pins app by app: here the *machine space* is the
random variable, on a fixed pair of small traces (one without forwarded
references, one with, so both speculation modes of the specializer are
exercised).
"""

from dataclasses import replace

from hypothesis import given, settings, strategies as st

from repro.apps.base import Variant
from repro.experiments.config import experiment_config
from repro.trace import capture_trace, replay_trace
from repro.trace.batch import BATCH_GENERAL, replay_engine
from repro.trace.sweep import aggregate_metrics

SCALE = 0.03

_TRACES: dict = {}


def _trace(app, variant):
    """Capture-once cache (hypothesis re-enters the test many times)."""
    key = (app, variant)
    if key not in _TRACES:
        _TRACES[key], _ = capture_trace(
            app, variant, experiment_config(32), scale=SCALE, seed=1
        )
    return _TRACES[key]


#: One random machine-config cell.  ``mechanism`` is weighted toward
#: "none" (the specialized path); mechanism cells exercise the general
#: fallback inside the same batch.
CELLS = st.fixed_dictionaries(
    {
        "line_size": st.sampled_from([32, 64, 128]),
        "policy": st.sampled_from(["lru", "fifo", "random"]),
        "mechanism": st.sampled_from(
            ["none", "none", "none", "victim_cache", "stream_buffers"]
        ),
        "ooo_window": st.sampled_from([1.0, 8.0]),
        "speculate": st.booleans(),
    }
)


def _config(cell):
    config = experiment_config(cell["line_size"])
    config = replace(
        config,
        hierarchy=replace(
            config.hierarchy,
            policy=cell["policy"],
            mechanism=cell["mechanism"],
        ),
        timing=replace(config.timing, ooo_window=cell["ooo_window"]),
    )
    if not cell["speculate"]:
        config = replace(config, speculation_window=0)
    return config


class TestRandomConfigSets:
    @given(cells=st.lists(CELLS, min_size=1, max_size=6))
    @settings(max_examples=15, deadline=None)
    def test_batch_matches_sequential_replay(self, cells):
        trace = _trace("health", Variant.N)
        configs = [_config(cell) for cell in cells]
        sequential = [replay_trace(trace, config) for config in configs]
        batched = []
        for cell, config in zip(cells, configs):
            result, engine = replay_engine(trace, config)
            if cell["mechanism"] != "none":
                assert engine == BATCH_GENERAL
            batched.append(result)
        for reference, result in zip(sequential, batched):
            assert result.stats.dump() == reference.stats.dump()
        assert (
            aggregate_metrics(batched).flat()
            == aggregate_metrics(sequential).flat()
        )

    @given(cells=st.lists(CELLS, min_size=1, max_size=4))
    @settings(max_examples=10, deadline=None)
    def test_forwarded_trace_parity(self, cells):
        """The L variant's stream carries forwarded references, so the
        specializer's full speculation bookkeeping is on the line."""
        trace = _trace("health", Variant.L)
        for cell in cells:
            config = _config(cell)
            reference = replay_trace(trace, config)
            result, _engine = replay_engine(trace, config)
            assert result.stats.dump() == reference.stats.dump()
