"""Property-based invariants of the miss-path stages.

The victim cache is the delicate one -- its probe/insert swap dance
must never duplicate a line between VC and L1, overflow its capacity,
or lose a resident line -- so it gets the full treatment, driven both
directly and through random hierarchy access streams.
"""

from hypothesis import given, settings, strategies as st

from repro.cache.hierarchy import HierarchyConfig, MemoryHierarchy
from repro.cache.misspath import VictimCache

addresses = st.integers(min_value=0, max_value=(1 << 18) - 8).map(lambda a: a & ~7)
access_streams = st.lists(
    st.tuples(addresses, st.booleans()), min_size=1, max_size=150
)

#: Small L1 and VC so the stream actually exercises eviction and swap.
MECH_CONFIGS = st.fixed_dictionaries(
    {
        "mechanism": st.sampled_from(
            ["victim_cache", "miss_cache", "stream_buffers", "combined"]
        ),
        "vc_entries": st.sampled_from([1, 2, 4, 8]),
        "mc_entries": st.sampled_from([1, 4, 8]),
        "sb_count": st.sampled_from([1, 2, 4]),
        "sb_depth": st.sampled_from([1, 2, 4]),
    }
)


def _l1_lines(cache) -> set:
    """Resident L1 line addresses (the count helper isn't enough here)."""
    lines = set()
    for set_index in range(cache.num_sets):
        base = set_index * cache.associativity
        for slot in range(base, base + cache._set_len[set_index]):
            lines.add(cache._tags[slot] << cache.line_shift)
    return lines


def _drive(hierarchy, stream):
    now = 0.0
    for address, is_write in stream:
        result = hierarchy.access(address, is_write, now)
        now = result.ready + 200.0  # let every fill complete


class TestVictimCacheStage:
    @given(
        ops=st.lists(
            st.tuples(st.sampled_from(["insert", "probe", "invalidate"]),
                      addresses, st.booleans()),
            min_size=1,
            max_size=200,
        ),
        entries=st.sampled_from([1, 2, 4, 8]),
    )
    @settings(max_examples=60, deadline=None)
    def test_occupancy_and_uniqueness(self, ops, entries):
        vc = VictimCache(entries)
        for op, address, dirty in ops:
            line = address & ~31
            if op == "insert":
                vc.probe(line)  # hierarchy never inserts a resident line
                vc.insert(line, 1 if dirty else 0)
            elif op == "probe":
                vc.probe(line)
            else:
                vc.invalidate(line)
            resident = vc.resident_lines()
            assert len(resident) <= entries
            assert len(resident) == len(set(resident))


class TestHierarchyInvariants:
    @given(stream=access_streams, knobs=MECH_CONFIGS)
    @settings(max_examples=40, deadline=None)
    def test_vc_and_l1_are_disjoint(self, stream, knobs):
        hierarchy = MemoryHierarchy(
            HierarchyConfig(l1_size=1024, l1_assoc=1, **knobs)
        )
        _drive(hierarchy, stream)
        if hierarchy.misspath.victim is None:
            return
        vc_lines = set(hierarchy.misspath.victim.resident_lines())
        assert vc_lines.isdisjoint(_l1_lines(hierarchy.l1))

    @given(stream=access_streams, knobs=MECH_CONFIGS)
    @settings(max_examples=40, deadline=None)
    def test_no_duplicate_vc_tags_after_swaps(self, stream, knobs):
        hierarchy = MemoryHierarchy(
            HierarchyConfig(l1_size=1024, l1_assoc=1, **knobs)
        )
        _drive(hierarchy, stream)
        victim = hierarchy.misspath.victim
        if victim is None:
            return
        resident = victim.resident_lines()
        assert len(resident) == len(set(resident))
        assert len(resident) <= victim.entries

    @given(stream=access_streams, knobs=MECH_CONFIGS)
    @settings(max_examples=40, deadline=None)
    def test_touched_lines_are_conserved(self, stream, knobs):
        """Every line ever demanded is in L1, in a stage, or was spilled
        toward L2 / invalidated -- VC+L1 conservation: nothing held by
        the victim cache is outside the demanded set, and the last
        demanded line is always still resident in L1."""
        hierarchy = MemoryHierarchy(
            HierarchyConfig(l1_size=1024, l1_assoc=1, **knobs)
        )
        shift = hierarchy.l1.line_shift
        demanded = set()
        now = 0.0
        for address, is_write in stream:
            line = (address >> shift) << shift
            demanded.add(line)
            result = hierarchy.access(address, is_write, now)
            now = result.ready + 200.0
            assert hierarchy.l1.contains(address)
        victim = hierarchy.misspath.victim
        if victim is not None:
            assert set(victim.resident_lines()) <= demanded

    @given(stream=access_streams, knobs=MECH_CONFIGS)
    @settings(max_examples=30, deadline=None)
    def test_probe_accounting_partitions(self, stream, knobs):
        hierarchy = MemoryHierarchy(
            HierarchyConfig(l1_size=1024, l1_assoc=1, **knobs)
        )
        _drive(hierarchy, stream)
        stats = hierarchy.misspath.stats_dict()
        assert stats["hits"] <= stats["probes"]
        assert (
            stats["hits"]
            == stats["vc.hits"] + stats["mc.hits"] + stats["sb.hits"]
        )
        miss = hierarchy.miss_classes
        assert stats["probes"] == miss.load_full + miss.store_full
