"""Property-based tests (hypothesis) for the core invariants.

These encode the paper's guarantees as properties over random inputs:
relocation is semantics-preserving, forwarding resolution is idempotent
and offset-preserving, the allocator never hands out overlapping blocks,
and sub-word memory access behaves like real (little-endian) memory.
"""

from hypothesis import given, settings, strategies as st

from repro import Machine, MachineConfig, TaggedMemory, relocate
from repro.core.forwarding import ForwardingEngine
from repro.mem.allocator import HeapAllocator

def _small_machine():
    # Small machines keep each example fast.
    return Machine(MachineConfig(heap_size=1 << 20, pool_region_size=1 << 20))

word_values = st.integers(min_value=0, max_value=(1 << 64) - 1)
sizes = st.sampled_from([1, 2, 4, 8])


class TestMemoryProperties:
    @given(value=word_values, size=sizes, slot=st.integers(0, 63))
    @settings(max_examples=60, deadline=None)
    def test_subword_roundtrip_masks(self, value, size, slot):
        mem = TaggedMemory(4096)
        address = slot * 8  # word aligned; any size fits at offset 0
        mem.write_data(address, value, size)
        mask = (1 << (8 * size)) - 1
        assert mem.read_data(address, size) == value & mask

    @given(
        word=word_values,
        pieces=st.lists(
            st.tuples(st.integers(0, 7), st.integers(0, 255)), max_size=8
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_byte_writes_compose_like_memory(self, word, pieces):
        """Byte stores into a word behave exactly like a bytearray."""
        mem = TaggedMemory(64)
        mem.write_word(0, word)
        shadow = bytearray(word.to_bytes(8, "little"))
        for offset, value in pieces:
            mem.write_data(offset, value, 1)
            shadow[offset] = value
        assert mem.read_word(0) == int.from_bytes(shadow, "little")

    @given(values=st.lists(word_values, min_size=1, max_size=16))
    @settings(max_examples=40, deadline=None)
    def test_clear_region_resets_everything(self, values):
        mem = TaggedMemory(1024)
        for index, value in enumerate(values):
            mem.write_word_tagged(index * 8, value, index % 2)
        mem.clear_region(0, len(values) * 8)
        assert mem.forwarded_word_count() == 0
        assert all(mem.read_word(index * 8) == 0 for index in range(len(values)))


class TestForwardingProperties:
    @given(
        chain_length=st.integers(1, 12),
        offset=st.integers(0, 7),
        start=st.integers(0, 50),
    )
    @settings(max_examples=50, deadline=None)
    def test_resolution_is_idempotent_and_offset_preserving(
        self, chain_length, offset, start
    ):
        mem = TaggedMemory(64 * 1024)
        engine = ForwardingEngine(mem, hop_limit=32)
        # Build a chain of `chain_length` hops from `base`.
        base = 0x1000 + start * 8
        step = 0x100
        for hop in range(chain_length):
            mem.write_word_tagged(base + hop * step, base + (hop + 1) * step, 1)
        final, hops = engine.resolve(base + offset)
        assert hops == chain_length
        assert final == base + chain_length * step + offset
        # Resolving the final address is a fixed point.
        again, more_hops = engine.resolve(final)
        assert (again, more_hops) == (final, 0)

    @given(data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_chain_endpoints_agree_with_resolve(self, data):
        mem = TaggedMemory(64 * 1024)
        engine = ForwardingEngine(mem)
        length = data.draw(st.integers(0, 8))
        base = 0x2000
        for hop in range(length):
            mem.write_word_tagged(base + hop * 64, base + (hop + 1) * 64, 1)
        chain = engine.chain(base)
        assert chain[0] == base
        assert chain[-1] == engine.resolve(base)[0]
        assert len(chain) == length + 1


class TestRelocationProperties:
    @given(
        words=st.lists(word_values, min_size=1, max_size=12),
        generations=st.integers(1, 3),
    )
    @settings(max_examples=40, deadline=None)
    def test_relocation_preserves_all_words_through_any_address(
        self, words, generations
    ):
        """After any number of relocations, every generation's address of
        every word reads the original value -- the safety theorem."""
        m = _small_machine()
        pool = m.create_pool(1 << 16)
        base = m.malloc(len(words) * 8)
        for index, value in enumerate(words):
            m.store(base + index * 8, value)
        addresses = [base]
        for _ in range(generations):
            target = pool.allocate(len(words) * 8)
            relocate(m, addresses[0], target, len(words))
            addresses.append(target)
        for address in addresses:
            for index, value in enumerate(words):
                assert m.load(address + index * 8) == value

    @given(
        words=st.lists(word_values, min_size=1, max_size=8),
        store_index=st.integers(0, 7),
        new_value=word_values,
    )
    @settings(max_examples=40, deadline=None)
    def test_store_through_any_alias_visible_through_all(
        self, words, store_index, new_value
    ):
        m = _small_machine()
        pool = m.create_pool(1 << 16)
        base = m.malloc(len(words) * 8)
        for index, value in enumerate(words):
            m.store(base + index * 8, value)
        target = pool.allocate(len(words) * 8)
        relocate(m, base, target, len(words))
        index = store_index % len(words)
        m.store(base + index * 8, new_value)  # via the OLD address
        assert m.load(target + index * 8) == new_value  # seen at the new one


class TestAllocatorProperties:
    @given(
        requests=st.lists(st.integers(1, 256), min_size=1, max_size=40),
        frees=st.sets(st.integers(0, 39)),
    )
    @settings(max_examples=40, deadline=None)
    def test_live_blocks_never_overlap(self, requests, frees):
        mem = TaggedMemory(1 << 20)
        heap = HeapAllocator(mem, base=0x1000, size=(1 << 20) - 0x1000)
        live = {}
        for index, nbytes in enumerate(requests):
            address = heap.allocate(nbytes)
            live[index] = (address, heap.block_size(address))
        for index in frees:
            if index in live:
                heap.release(live.pop(index)[0])
        spans = sorted(live.values())
        for (a_start, a_size), (b_start, _) in zip(spans, spans[1:]):
            assert a_start + a_size <= b_start

    @given(requests=st.lists(st.integers(1, 64), min_size=1, max_size=20))
    @settings(max_examples=40, deadline=None)
    def test_allocate_free_allocate_is_clean(self, requests):
        """Recycled memory is always zeroed with clear forwarding bits."""
        mem = TaggedMemory(1 << 18)
        heap = HeapAllocator(mem, base=0x1000, size=(1 << 18) - 0x1000)
        for nbytes in requests:
            address = heap.allocate(nbytes)
            mem.write_word_tagged(address, 0xDEAD, 1)
            heap.release(address)
            fresh = heap.allocate(nbytes)
            assert mem.read_word(fresh) == 0
            assert mem.read_fbit(fresh) == 0
            heap.release(fresh)
