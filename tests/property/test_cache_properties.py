"""Property-based tests for the cache and timing models."""

from hypothesis import given, settings, strategies as st

from repro.cache.cache import Cache
from repro.cache.hierarchy import HierarchyConfig, MemoryHierarchy
from repro.cpu.timing import TimingConfig, TimingModel

addresses = st.integers(min_value=0, max_value=(1 << 20) - 8).map(lambda a: a & ~7)
access_streams = st.lists(
    st.tuples(addresses, st.booleans()), min_size=1, max_size=120
)


class TestCacheProperties:
    @given(stream=access_streams)
    @settings(max_examples=50, deadline=None)
    def test_capacity_never_exceeded(self, stream):
        cache = Cache(1024, 32, 2)
        for address, is_write in stream:
            if not cache.lookup(address, is_write):
                cache.fill(address, dirty=is_write)
        assert cache.resident_lines() <= 1024 // 32

    @given(stream=access_streams)
    @settings(max_examples=50, deadline=None)
    def test_immediate_reaccess_always_hits(self, stream):
        cache = Cache(2048, 64, 4)
        for address, is_write in stream:
            if not cache.lookup(address, is_write):
                cache.fill(address, dirty=is_write)
            assert cache.contains(address)

    @given(stream=access_streams)
    @settings(max_examples=50, deadline=None)
    def test_stats_partition_accesses(self, stream):
        cache = Cache(1024, 32, 2)
        for address, is_write in stream:
            if not cache.lookup(address, is_write):
                cache.fill(address, dirty=is_write)
        stats = cache.stats
        assert stats.hits + stats.misses == len(stream)

    @given(stream=access_streams, assoc=st.sampled_from([1, 2, 4]))
    @settings(max_examples=30, deadline=None)
    def test_higher_associativity_never_more_misses_lru(self, stream, assoc):
        """With LRU, doubling associativity (same capacity scaled) never
        increases misses on any access stream (stack inclusion)."""
        small = Cache(1024, 32, assoc)
        large = Cache(2048, 32, assoc * 2)
        for cache in (small, large):
            for address, is_write in stream:
                if not cache.lookup(address, is_write):
                    cache.fill(address, dirty=is_write)
        assert large.stats.misses <= small.stats.misses


class TestHierarchyProperties:
    @given(stream=access_streams)
    @settings(max_examples=40, deadline=None)
    def test_miss_classes_partition_l1_misses(self, stream):
        hierarchy = MemoryHierarchy(HierarchyConfig())
        now = 0.0
        for address, is_write in stream:
            hierarchy.access(address, is_write, now)
            now += 1.0
        classes = hierarchy.miss_classes
        total = (
            classes.load_full + classes.load_partial
            + classes.store_full + classes.store_partial
        )
        hits = hierarchy.l1.stats.load_hits + hierarchy.l1.stats.store_hits
        # partial path also performs an L1 lookup, so hits may overcount;
        # the invariant is that every access was classified exactly once.
        assert total + hits >= len(stream)

    @given(stream=access_streams)
    @settings(max_examples=40, deadline=None)
    def test_ready_times_never_precede_issue(self, stream):
        hierarchy = MemoryHierarchy(HierarchyConfig())
        now = 0.0
        for address, is_write in stream:
            result = hierarchy.access(address, is_write, now)
            assert result.ready >= now
            now += 2.0

    @given(stream=access_streams)
    @settings(max_examples=40, deadline=None)
    def test_traffic_only_grows(self, stream):
        hierarchy = MemoryHierarchy(HierarchyConfig())
        last = 0
        now = 0.0
        for address, is_write in stream:
            hierarchy.access(address, is_write, now)
            now += 1.0
            total = hierarchy.traffic.total_bytes
            assert total >= last
            last = total


class TestTimingProperties:
    events = st.lists(
        st.one_of(
            st.tuples(st.just("exec"), st.integers(1, 50)),
            st.tuples(st.just("load"), st.floats(0, 500)),
            st.tuples(st.just("store"), st.floats(0, 500)),
            st.tuples(st.just("trap"), st.integers(1, 4)),
        ),
        max_size=60,
    )

    @given(events=events)
    @settings(max_examples=50, deadline=None)
    def test_time_is_monotonic_and_slots_consistent(self, events):
        timing = TimingModel(TimingConfig())
        last = 0.0
        for kind, value in events:
            if kind == "exec":
                timing.execute(value)
            elif kind == "load":
                timing.load_completes(timing.cycle + value)
            elif kind == "store":
                timing.store_completes(timing.cycle + value)
            else:
                timing.forwarding_trap(value)
            assert timing.cycle >= last
            last = timing.cycle
        slots = timing.slot_breakdown()
        assert slots.total <= timing.cycle * timing.config.width + 1e-6
        assert min(slots.busy, slots.load_stall,
                   slots.store_stall, slots.inst_stall) >= 0.0
