"""Tests for the SMP machine and the false-sharing experiment."""

import pytest

from repro.smp import (
    CoherenceConfig,
    SMPConfig,
    SMPMachine,
    run_false_sharing_experiment,
)


@pytest.fixture
def smp():
    return SMPMachine(SMPConfig(coherence=CoherenceConfig(cpus=2)))


class TestSMPMachine:
    def test_shared_memory_visible_across_cpus(self, smp):
        addr = smp.malloc(8)
        smp.store(0, addr, 1234)
        assert smp.load(1, addr) == 1234

    def test_forwarding_works_across_cpus(self, smp):
        """Forwarding bits live in memory, so CPU 1 follows a chain that
        CPU 0 created."""
        obj = smp.malloc(16)
        smp.store(0, obj, 7)
        pool = smp.create_pool(4096)
        target = pool.allocate(16)
        smp.relocate(obj, target, 2, cpu=0)
        assert smp.load(1, obj) == 7          # stale address, other CPU
        assert smp.load(1, target) == 7

    def test_store_through_stale_address_coherent(self, smp):
        obj = smp.malloc(16)
        pool = smp.create_pool(4096)
        target = pool.allocate(16)
        smp.relocate(obj, target, 2, cpu=0)
        smp.store(1, obj, 55)                 # forwarded store by CPU 1
        assert smp.load(0, target) == 55      # CPU 0 sees it coherently

    def test_per_cpu_clocks_advance_independently(self, smp):
        addr = smp.malloc(64)
        smp.load(0, addr)
        assert smp.cycles[0] > 0
        assert smp.cycles[1] == 0
        smp.compute(1, 100.0)
        assert smp.cycles[1] == 100.0

    def test_max_cycles_is_parallel_time(self, smp):
        smp.compute(0, 10.0)
        smp.compute(1, 30.0)
        assert smp.max_cycles == 30.0


class TestFalseSharingExperiment:
    @pytest.fixture(scope="class")
    def outcome(self):
        return run_false_sharing_experiment(cpus=2, per_cpu_records=16, rounds=10)

    def test_checksums_identical(self, outcome):
        before, after = outcome
        assert before.checksum == after.checksum

    def test_relocation_eliminates_coherence_misses(self, outcome):
        """Distinct-line ownership means zero ping-pong traffic."""
        before, after = outcome
        assert before.coherence_misses > 100
        assert after.coherence_misses == 0

    def test_dramatic_speedup(self, outcome):
        """Paper: false sharing 'can hurt performance dramatically'."""
        before, after = outcome
        assert before.cycles > 3 * after.cycles

    def test_scales_with_cpu_count(self):
        two = run_false_sharing_experiment(cpus=2, per_cpu_records=8, rounds=5)
        four = run_false_sharing_experiment(cpus=4, per_cpu_records=8, rounds=5)
        # More CPUs contending for the same lines -> more ping-ponging.
        assert four[0].coherence_misses > two[0].coherence_misses


class TestAdaptiveFalseSharing:
    @pytest.fixture(scope="class")
    def triple(self):
        from repro.smp.false_sharing import run_adaptive_false_sharing

        return run_adaptive_false_sharing(
            cpus=2, per_cpu_records=16, rounds=20, policy="hysteresis"
        )

    def test_checksums_identical_across_arms(self, triple):
        assert triple.checksums_equal

    def test_policy_triggers_on_coherence_feedback(self, triple):
        """The first rounds' ping-pong miss rate crosses the threshold
        within the policy's patience."""
        assert triple.trigger_round is not None
        assert triple.trigger_round <= 3
        assert triple.segregation_cost > 0

    def test_adaptive_lands_between_static_arms(self, triple):
        """Adaptive pays for the bad pre-trigger rounds plus the
        relocation itself, then runs at static-once speed."""
        assert triple.once.cycles < triple.adaptive.cycles
        assert triple.adaptive.cycles < triple.never.cycles
        assert triple.once.coherence_misses <= triple.adaptive.coherence_misses
        assert triple.adaptive.coherence_misses < triple.never.coherence_misses

    def test_threshold_policy_fires_immediately(self):
        from repro.smp.false_sharing import run_adaptive_false_sharing

        triple = run_adaptive_false_sharing(
            cpus=2, per_cpu_records=16, rounds=10, policy="threshold"
        )
        assert triple.trigger_round == 0
        assert triple.checksums_equal
