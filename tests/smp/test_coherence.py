"""Unit tests for the MSI coherence layer."""

import pytest

from repro.smp.coherence import CoherenceConfig, CoherentMemorySystem, LineState


def make(cpus=2, line=32):
    return CoherentMemorySystem(CoherenceConfig(cpus=cpus, line_size=line))


class TestBasicProtocol:
    def test_read_miss_then_hit(self):
        system = make()
        miss = system.access(0, 0x100, is_write=False)
        hit = system.access(0, 0x108, is_write=False)
        assert miss > hit
        assert system.stats[0].plain_misses == 1
        assert system.stats[0].load_hits == 1

    def test_write_hit_in_modified(self):
        system = make()
        system.access(0, 0x100, is_write=True)
        latency = system.access(0, 0x100, is_write=True)
        assert latency == system.config.hit_latency
        assert system.stats[0].store_hits == 1

    def test_two_readers_share(self):
        system = make()
        system.access(0, 0x100, False)
        system.access(1, 0x100, False)
        assert system._state(0, 0x100) is LineState.SHARED or (
            system._state(0, 0x100) is not None
        )
        assert system._state(1, 0x100) is not None
        # The second reader's miss counts as a coherence transfer.
        assert system.stats[1].coherence_misses == 1

    def test_write_invalidates_remote_copies(self):
        system = make(cpus=3)
        for cpu in range(3):
            system.access(cpu, 0x100, False)
        system.access(0, 0x100, True)  # upgrade
        assert system._state(1, 0x100) is None
        assert system._state(2, 0x100) is None
        assert system._state(0, 0x100) is LineState.MODIFIED
        assert system.stats[1].invalidations_received == 1
        assert system.stats[2].invalidations_received == 1

    def test_read_of_modified_demotes_to_shared(self):
        system = make()
        system.access(0, 0x100, True)
        system.access(1, 0x100, False)
        assert system._state(0, 0x100) is LineState.SHARED
        assert system._state(1, 0x100) is LineState.SHARED

    def test_dirty_intervention_costs_more(self):
        system = make()
        system.access(0, 0x100, True)           # M in CPU 0
        dirty_fetch = system.access(1, 0x100, False)
        system2 = make()
        clean_fetch = system2.access(1, 0x100, False)
        assert dirty_fetch > clean_fetch

    def test_upgrade_cheaper_than_miss(self):
        system = make()
        system.access(0, 0x100, False)
        system.access(1, 0x100, False)
        upgrade = system.access(0, 0x100, True)
        assert upgrade == system.config.upgrade_latency
        assert upgrade < system.config.miss_latency


class TestPingPong:
    def test_false_sharing_ping_pong(self):
        """Two CPUs writing distinct words of one line: every access is
        a coherence miss after the first."""
        system = make()
        for _ in range(10):
            system.access(0, 0x100, True)   # word 0 of the line
            system.access(1, 0x108, True)   # word 1, same line
        total = system.total_coherence_misses()
        assert total >= 18  # all but the two cold misses

    def test_distinct_lines_never_ping_pong(self):
        system = make(line=32)
        for _ in range(10):
            system.access(0, 0x100, True)
            system.access(1, 0x200, True)   # different line
        assert system.total_coherence_misses() == 0


class TestHousekeeping:
    def test_eviction_clears_state(self):
        system = make()
        cache = system.caches[0]
        # Fill one set beyond associativity to force an eviction.
        lines = [0x0, 0x0 + cache.num_sets * 32, 0x0 + 2 * cache.num_sets * 32]
        for address in lines:
            system.access(0, address, True)
        evicted = [line for line in lines if system._state(0, line) is None]
        assert len(evicted) == 1

    def test_bad_cpu_rejected(self):
        system = make()
        with pytest.raises(ValueError):
            system.access(5, 0x100, False)

    def test_bad_config_rejected(self):
        with pytest.raises(ValueError):
            CoherentMemorySystem(CoherenceConfig(cpus=0))

    def test_bus_transfers_counted(self):
        system = make()
        system.access(0, 0x100, False)
        system.access(1, 0x100, False)
        assert system.bus_transfers == 2
