"""Per-application behaviour tests: each app exhibits the paper's story."""

from repro.apps import get_application
from repro.apps.base import Variant
from repro.experiments.config import APP_SEEDS, experiment_config

SCALE = 0.25


def run(name, variant, line=32, scale=SCALE):
    app = get_application(name, scale=scale, seed=APP_SEEDS[name])
    return app.run(variant, experiment_config(line))


class TestHealth:
    def test_patients_flow_through_system(self):
        # Scale must allow at least one full treatment (10 steps).
        result = run("health", Variant.N, scale=0.45)
        assert result.extras["discharged"] > 0
        assert result.extras["population"] > 0

    def test_optimized_linearizes_periodically(self):
        result = run("health", Variant.L)
        assert result.extras["linearizations"] >= 2

    def test_forwarding_rare_after_updates(self):
        """Health updates its pointers well: forwarding is a rare event."""
        stats = run("health", Variant.L).stats
        assert stats.loads.forwarded_fraction < 0.02

    def test_prefetch_variant_issues_prefetches(self):
        stats = run("health", Variant.NP).stats
        assert stats.prefetch_instructions > 0


class TestMST:
    def test_mst_weight_deterministic(self):
        a = run("mst", Variant.N)
        b = run("mst", Variant.L)
        assert a.extras["mst_weight"] == b.extras["mst_weight"] > 0

    def test_linearization_is_one_shot(self):
        """MST's structure is static: everything moves exactly once."""
        result = run("mst", Variant.L)
        stats = result.stats
        assert result.extras["nodes_linearized"] > 0
        # No re-relocation: words moved equals one generation of moves.
        assert stats.forwarding_hops == 0 or stats.loads.forwarded == 0


class TestVIS:
    def test_library_linearizes_many_lists(self):
        result = run("vis", Variant.L)
        assert result.extras["linearizations"] > 5

    def test_stray_cursors_forwarded(self):
        stats = run("vis", Variant.L).stats
        assert stats.loads.forwarded > 0

    def test_optimized_traversals_cheaper(self):
        # Needs a working set beyond the caches for layout to matter.
        n = run("vis", Variant.N, scale=0.75).stats.cycles
        opt = run("vis", Variant.L, scale=0.75).stats.cycles
        assert opt < n


class TestRadiosity:
    def test_energy_accumulates(self):
        assert run("radiosity", Variant.N).checksum != 0

    def test_periodic_linearization(self):
        assert run("radiosity", Variant.L).extras["linearizations"] > 0


class TestEqntott:
    def test_packing_touches_every_term(self):
        result = run("eqntott", Variant.L)
        assert result.stats.relocation.relocations >= result.extras["terms"]

    def test_stray_pterm_pointers_forwarded(self):
        stats = run("eqntott", Variant.L).stats
        assert stats.loads.forwarded > 0

    def test_sweep_is_the_dominant_phase(self):
        stats = run("eqntott", Variant.N).stats
        assert stats.loads.count > 3_000


class TestBH:
    def test_tree_holds_all_bodies(self):
        result = run("bh", Variant.N)
        assert result.extras["bodies"] > 0
        assert result.checksum > 0

    def test_clustering_moves_internal_nodes(self):
        result = run("bh", Variant.L)
        assert 0 < result.extras["cells_clustered"]

    def test_clustering_wins_at_256B(self):
        # Full scale: the tree must outgrow the caches (paper: clustering
        # is only meaningful at 256 B lines and realistic tree sizes).
        n = run("bh", Variant.N, line=256, scale=1.0).stats.cycles
        opt = run("bh", Variant.L, line=256, scale=1.0).stats.cycles
        assert opt < n


class TestCompress:
    def test_compression_emits_codes(self):
        result = run("compress", Variant.N)
        assert 0 < result.extras["codes_emitted"] < result.extras["probes"]

    def test_merged_table_loses_at_32B(self):
        """The paper's negative result: merging hurts at short lines."""
        n = run("compress", Variant.N, line=32).stats.cycles
        opt = run("compress", Variant.L, line=32).stats.cycles
        assert opt > n

    def test_stray_htab_reads_forwarded(self):
        stats = run("compress", Variant.L).stats
        assert stats.loads.forwarded > 0


class TestSMV:
    def test_forwarding_fires_in_l_scheme(self):
        stats = run("smv", Variant.L).stats
        assert stats.loads.forwarded_fraction > 0.01
        assert stats.stores.forwarded_fraction > 0.001

    def test_perf_scheme_never_forwards(self):
        stats = run("smv", Variant.PERF).stats
        assert stats.loads.forwarded == 0
        assert stats.stores.forwarded == 0
        assert stats.relocation.words_relocated > 0  # it DID relocate

    def test_l_slower_than_perf(self):
        """Figure 10(a): forwarding overhead separates L from Perf."""
        scheme_l = run("smv", Variant.L, scale=0.5).stats.cycles
        perf = run("smv", Variant.PERF, scale=0.5).stats.cycles
        assert perf < scheme_l

    def test_forwarding_latency_attributed(self):
        stats = run("smv", Variant.L).stats
        assert stats.loads.forwarding_cycles > 0
        assert stats.loads.avg_forwarding > 0
