"""The reproduction's central safety theorem, checked end to end:

data relocation under memory forwarding NEVER changes program results.

Every application is run in every variant it supports, at a reduced
scale, and all variants must produce bit-identical checksums.  The
optimized variants really do relocate data (asserted via the relocation
counters), so the equality is meaningful.
"""

import pytest

from repro.apps import APPLICATIONS, get_application
from repro.apps.base import Variant
from repro.experiments.config import APP_SEEDS, experiment_config

SCALE = 0.2

_app_names = sorted(APPLICATIONS)


@pytest.fixture(scope="module")
def results():
    """Run every app in every supported variant once (module-scoped)."""
    outcomes = {}
    for name in _app_names:
        app = get_application(name, scale=SCALE, seed=APP_SEEDS[name])
        for variant in app.variants():
            outcomes[(name, variant)] = app.run(variant, experiment_config(32))
    return outcomes


@pytest.mark.parametrize("name", _app_names)
class TestChecksumEquality:
    def test_all_variants_agree(self, results, name):
        app = get_application(name, scale=SCALE, seed=APP_SEEDS[name])
        checksums = {
            variant: results[(name, variant)].checksum for variant in app.variants()
        }
        assert len(set(checksums.values())) == 1, checksums

    def test_optimized_variant_really_relocated(self, results, name):
        stats = results[(name, Variant.L)].stats
        assert stats.relocation.words_relocated > 0
        assert stats.relocation.pool_bytes > 0

    def test_unoptimized_variant_never_forwards(self, results, name):
        stats = results[(name, Variant.N)].stats
        assert stats.loads.forwarded == 0
        assert stats.stores.forwarded == 0
        assert stats.relocation.relocations == 0

    def test_simulation_produced_work(self, results, name):
        stats = results[(name, Variant.N)].stats
        assert stats.cycles > 0
        assert stats.loads.count > 100
        assert stats.instructions > stats.loads.count

    def test_no_misspeculation_in_unoptimized(self, results, name):
        """Without relocation, initial==final, so no collisions exist."""
        assert results[(name, Variant.N)].stats.misspeculations == 0


class TestDeterminism:
    def test_same_seed_same_checksum(self):
        app1 = get_application("health", scale=0.1, seed=5)
        app2 = get_application("health", scale=0.1, seed=5)
        r1 = app1.run(Variant.L, experiment_config(32))
        r2 = app2.run(Variant.L, experiment_config(32))
        assert r1.checksum == r2.checksum
        assert r1.stats.cycles == r2.stats.cycles

    def test_different_seed_different_checksum(self):
        r1 = get_application("vis", scale=0.1, seed=1).run(Variant.N)
        r2 = get_application("vis", scale=0.1, seed=2).run(Variant.N)
        assert r1.checksum != r2.checksum

    def test_checksum_stable_across_line_sizes(self):
        """Cache geometry is invisible to program semantics."""
        app = get_application("mst", scale=0.15, seed=APP_SEEDS["mst"])
        r32 = app.run(Variant.L, experiment_config(32))
        r128 = app.run(Variant.L, experiment_config(128))
        assert r32.checksum == r128.checksum


class TestRegistry:
    def test_all_applications_registered(self):
        assert set(_app_names) == {
            "bh", "compress", "eqntott", "health", "mst",
            "radiosity", "smv", "vis",
            "health_phase", "mst_phase",
        }

    def test_unknown_application_rejected(self):
        with pytest.raises(ValueError):
            get_application("doom")

    def test_unsupported_variant_rejected(self):
        app = get_application("health", scale=0.1)
        with pytest.raises(ValueError):
            app.run(Variant.PERF)

    def test_smv_supports_perf(self):
        app = get_application("smv", scale=0.1)
        assert Variant.PERF in app.variants()
        assert Variant.NP not in app.variants()

    def test_scale_validation(self):
        with pytest.raises(ValueError):
            get_application("health", scale=0.0)
