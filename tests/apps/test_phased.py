"""Phase-changing app variants: deterministic flips, checksum safety."""

from dataclasses import replace

import pytest

from repro import Machine
from repro.adapt.config import AdaptConfig
from repro.apps import get_application
from repro.apps.phased import HealthPhase, MSTPhase, permute_list
from repro.apps.base import Variant
from repro.core.machine import NULL
from repro.experiments.config import APP_SEEDS, experiment_config
from repro.runtime.rng import DeterministicRNG

SCALE = 0.2


def run_app(name, variant, seed=None, adapt=None, scale=SCALE):
    config = experiment_config(32)
    if adapt is not None:
        config = replace(config, adapt=adapt)
    app = get_application(
        name, scale=scale, seed=seed if seed is not None else APP_SEEDS[name]
    )
    return app.run(variant, config)


class TestPermuteList:
    def _build(self, machine, values):
        head = machine.malloc(8)
        previous = head
        nodes = []
        for value in values:
            node = machine.malloc(16)
            machine.store(node, value)
            machine.store(previous, node)
            previous = node + 8
            nodes.append(node)
        machine.store(previous, NULL)
        return head

    def _contents(self, machine, head):
        out = []
        node = machine.load(head)
        while node != NULL:
            out.append(machine.load(node))
            node = machine.load(node + 8)
        return out

    def test_permutation_preserves_contents(self):
        machine = Machine()
        head = self._build(machine, list(range(10)))
        moved = permute_list(machine, head, 8, DeterministicRNG(42))
        assert moved == 10
        permuted = self._contents(machine, head)
        assert sorted(permuted) == list(range(10))
        assert permuted != list(range(10))  # it really shuffled

    def test_same_seed_same_order(self):
        orders = []
        for _ in range(2):
            machine = Machine()
            head = self._build(machine, list(range(12)))
            permute_list(machine, head, 8, DeterministicRNG(7))
            orders.append(self._contents(machine, head))
        assert orders[0] == orders[1]

    def test_short_lists_untouched(self):
        machine = Machine()
        head = self._build(machine, [5])
        assert permute_list(machine, head, 8, DeterministicRNG(1)) == 1
        assert self._contents(machine, head) == [5]


class TestPhaseBoundary:
    def test_mst_flip_iteration_deterministic(self):
        assert MSTPhase.PHASE_AT == 0.25
        app = get_application("mst_phase", scale=SCALE, seed=3)
        assert app.flip_iteration(100) == app.flip_iteration(100) == 24

    def test_health_flip_step_deterministic(self):
        app = get_application("health_phase", scale=SCALE, seed=3)
        assert app.flip_step(200) == 100

    @pytest.mark.parametrize("name", ["mst_phase", "health_phase"])
    def test_flip_recorded_in_extras(self, name):
        result = run_app(name, Variant.N)
        phase = result.extras["phase"]
        assert phase  # the flip fired
        assert sum(v for k, v in phase.items() if k.endswith("permuted")) > 1

    @pytest.mark.parametrize("name", ["mst_phase", "health_phase"])
    def test_same_seed_bit_identical(self, name):
        a = run_app(name, Variant.N, seed=11)
        b = run_app(name, Variant.N, seed=11)
        assert a.checksum == b.checksum
        assert a.stats.cycles == b.stats.cycles
        assert a.extras["phase"] == b.extras["phase"]

    @pytest.mark.parametrize("name", ["mst_phase", "health_phase"])
    def test_different_seed_different_work(self, name):
        a = run_app(name, Variant.N, seed=11)
        b = run_app(name, Variant.N, seed=12)
        assert a.checksum != b.checksum


class TestChecksumSafety:
    @pytest.mark.parametrize("name", ["mst_phase", "health_phase"])
    def test_all_arms_agree(self, name):
        """N, L, and L+engine all compute the same answer: neither the
        flip nor any engine relocation may change logical order."""
        adapt = AdaptConfig(
            policy="threshold",
            interval=512,
            miss_rate_threshold=0.62,
            chase_rate_threshold=0.02,
            cooldown=4,
            max_actions=4,
        )
        checksums = {
            run_app(name, Variant.N).checksum,
            run_app(name, Variant.L).checksum,
            run_app(name, Variant.L, adapt=adapt).checksum,
        }
        assert len(checksums) == 1

    def test_adaptive_run_registers_candidates(self):
        adapt = AdaptConfig(policy="hysteresis", interval=1024)
        result = run_app("mst_phase", Variant.L, adapt=adapt)
        payload = result.extras["adapt"]
        assert payload["candidates"] == [
            "relinearize:vertices",
            "copy:adjacency",
            "recolor:adjacency",
        ]
