"""Unit tests for the BDD package (the SMV substrate)."""

import itertools

import pytest

from repro import Machine
from repro.bdd.bdd import BDD, BDD_NODE


@pytest.fixture
def m():
    return Machine()


@pytest.fixture
def bdd(m):
    return BDD(m, num_vars=4, buckets=64, cache_slots=128)


def brute_force_count(bdd, root, num_vars):
    """Count satisfying assignments by full enumeration."""
    total = 0
    for bits in itertools.product([False, True], repeat=num_vars):
        if bdd.evaluate(root, list(bits)):
            total += 1
    return total


class TestConstruction:
    def test_terminals_distinct(self, bdd):
        assert bdd.zero != bdd.one

    def test_var_node(self, bdd, m):
        f = bdd.var(1)
        assert BDD_NODE.read(m, f, "var") == 1
        assert BDD_NODE.read(m, f, "low") == bdd.zero
        assert BDD_NODE.read(m, f, "high") == bdd.one

    def test_mk_is_unique(self, bdd):
        a = bdd.mk(2, bdd.zero, bdd.one)
        b = bdd.mk(2, bdd.zero, bdd.one)
        assert a == b
        assert bdd.node_count == 3  # two terminals + one variable node

    def test_mk_reduces_equal_children(self, bdd):
        assert bdd.mk(1, bdd.one, bdd.one) == bdd.one

    def test_var_range_checked(self, bdd):
        with pytest.raises(ValueError):
            bdd.var(4)
        with pytest.raises(ValueError):
            bdd.nvar(-1)

    def test_num_vars_validated(self, m):
        with pytest.raises(ValueError):
            BDD(m, num_vars=0)


class TestApply:
    def test_and_truth_table(self, bdd):
        f = bdd.apply_and(bdd.var(0), bdd.var(1))
        assert bdd.evaluate(f, [True, True, False, False])
        assert not bdd.evaluate(f, [True, False, False, False])
        assert not bdd.evaluate(f, [False, True, False, False])

    def test_or_truth_table(self, bdd):
        f = bdd.apply_or(bdd.var(0), bdd.var(1))
        assert bdd.evaluate(f, [False, True, False, False])
        assert not bdd.evaluate(f, [False, False, False, False])

    def test_xor_truth_table(self, bdd):
        f = bdd.apply_xor(bdd.var(0), bdd.var(1))
        assert bdd.evaluate(f, [True, False, False, False])
        assert not bdd.evaluate(f, [True, True, False, False])

    def test_negation(self, bdd):
        f = bdd.ite_not(bdd.var(2))
        assert bdd.evaluate(f, [False, False, False, False])
        assert not bdd.evaluate(f, [False, False, True, False])

    def test_terminal_shortcuts(self, bdd):
        f = bdd.var(0)
        assert bdd.apply_and(f, bdd.zero) == bdd.zero
        assert bdd.apply_and(f, bdd.one) == f
        assert bdd.apply_or(f, bdd.one) == bdd.one
        assert bdd.apply_or(f, bdd.zero) == f
        assert bdd.apply_xor(f, f) == bdd.zero

    def test_unknown_op_rejected(self, bdd):
        with pytest.raises(ValueError):
            bdd.apply(99, bdd.var(0), bdd.var(1))

    def test_computed_cache_hits(self, bdd):
        f, g = bdd.var(0), bdd.var(1)
        bdd.apply_and(f, g)
        misses = bdd.cache_misses
        bdd.apply_and(f, g)
        assert bdd.cache_hits >= 1
        assert bdd.cache_misses == misses

    def test_canonicity_across_formulas(self, bdd):
        """(a AND b) OR (a AND b) must be the same node as (a AND b)."""
        ab1 = bdd.apply_and(bdd.var(0), bdd.var(1))
        ab2 = bdd.apply_or(ab1, ab1)
        assert ab1 == ab2


class TestSatcount:
    def test_terminals(self, bdd):
        assert bdd.satcount(bdd.zero) == 0
        assert bdd.satcount(bdd.one) == 16

    def test_single_variable(self, bdd):
        assert bdd.satcount(bdd.var(0)) == 8
        assert bdd.satcount(bdd.var(3)) == 8

    def test_matches_brute_force(self, bdd):
        f = bdd.apply_or(
            bdd.apply_and(bdd.var(0), bdd.nvar(1)),
            bdd.apply_xor(bdd.var(2), bdd.var(3)),
        )
        assert bdd.satcount(f) == brute_force_count(bdd, f, 4)

    def test_skipped_levels(self, bdd):
        f = bdd.apply_and(bdd.var(0), bdd.var(3))  # levels 1, 2 skipped
        assert bdd.satcount(f) == 4

    def test_count_nodes(self, bdd):
        f = bdd.apply_xor(bdd.var(0), bdd.var(1))
        # XOR of two variables: 1 node for var0, 2 for var1.
        assert bdd.count_nodes(f) == 3


class TestLinearization:
    def build_formula(self, bdd):
        f = bdd.apply_or(
            bdd.apply_and(bdd.var(0), bdd.var(1)),
            bdd.apply_and(bdd.nvar(2), bdd.var(3)),
        )
        return f

    def test_function_preserved_after_linearization(self, bdd, m):
        f = self.build_formula(bdd)
        expected = brute_force_count(bdd, f, 4)
        pool = m.create_pool(1 << 18)
        moved = bdd.linearize_unique_table(pool)
        assert moved == bdd.node_count - 2  # all but the terminals
        assert brute_force_count(bdd, f, 4) == expected

    def test_tree_pointers_forward_after_linearization(self, bdd, m):
        f = self.build_formula(bdd)
        pool = m.create_pool(1 << 18)
        bdd.linearize_unique_table(pool)
        before = m.stats().loads.forwarded
        bdd.count_nodes(f)
        assert m.stats().loads.forwarded > before

    def test_fixup_eliminates_forwarding(self, bdd, m):
        """Perf: after the magic pointer fixup, traversals take no hops."""
        f = self.build_formula(bdd)
        expected = brute_force_count(bdd, f, 4)
        pool = m.create_pool(1 << 18)
        bdd.linearize_unique_table(pool)
        patched = bdd.fixup_tree_pointers()
        assert patched > 0
        before = m.stats().loads.forwarded
        # Traverse from the root's final address.
        root = bdd._raw_final(f)
        bdd.count_nodes(root)
        assert m.stats().loads.forwarded == before
        assert brute_force_count(bdd, root, 4) == expected

    def test_new_mk_after_linearization_still_unique(self, bdd, m):
        f = bdd.apply_and(bdd.var(0), bdd.var(1))
        pool = m.create_pool(1 << 18)
        bdd.linearize_unique_table(pool)
        nodes_before = bdd.node_count
        # Rebuilding the same formula finds the relocated nodes (the keys
        # stored in the table are unchanged pointer values).
        g = bdd.apply_and(bdd.var(0), bdd.var(1))
        assert bdd.evaluate(g, [True, True, False, False])
        assert bdd.node_count <= nodes_before + 1
