"""Unit tests for the software block prefetcher."""

import pytest

from repro.cache.hierarchy import AccessKind, HierarchyConfig, MemoryHierarchy
from repro.cpu.prefetch import SoftwarePrefetcher


def make(line=32, max_block=8):
    hierarchy = MemoryHierarchy(HierarchyConfig(line_size=line))
    return hierarchy, SoftwarePrefetcher(hierarchy, max_block)


class TestBlockPrefetch:
    def test_rejects_bad_block_limit(self):
        hierarchy = MemoryHierarchy(HierarchyConfig())
        with pytest.raises(ValueError):
            SoftwarePrefetcher(hierarchy, 0)

    def test_single_line(self):
        hierarchy, pf = make()
        assert pf.prefetch_block(0x1000, 1, 0.0) == 1
        assert pf.stats.instructions_issued == 1

    def test_block_covers_consecutive_lines(self):
        hierarchy, pf = make(line=32)
        pf.prefetch_block(0x1000, 4, 0.0)
        for index in range(4):
            result = hierarchy.access(0x1000 + index * 32, False, 500.0)
            assert result.kind is AccessKind.L1_HIT
        # The line after the block was not prefetched.
        assert hierarchy.access(0x1000 + 4 * 32, False, 600.0).is_miss

    def test_block_clamped_to_max(self):
        hierarchy, pf = make(max_block=2)
        started = pf.prefetch_block(0x1000, 10, 0.0)
        assert started == 2
        assert pf.stats.lines_requested == 2

    def test_one_instruction_per_block(self):
        """Block prefetching: one instruction regardless of block size."""
        hierarchy, pf = make()
        pf.prefetch_block(0x1000, 8, 0.0)
        assert pf.stats.instructions_issued == 1

    def test_unaligned_address_prefetches_containing_line(self):
        hierarchy, pf = make(line=64)
        pf.prefetch_block(0x1030, 1, 0.0)
        assert hierarchy.access(0x1000, False, 500.0).kind is AccessKind.L1_HIT

    def test_resident_lines_not_refetched(self):
        hierarchy, pf = make()
        hierarchy.access(0x1000, False, 0.0)
        started = pf.prefetch_block(0x1000, 2, 500.0)
        assert started == 1  # only the second line fills
        assert pf.stats.fills_started == 1


class TestTimelinessModel:
    def test_late_prefetch_gives_partial_miss(self):
        """A demand access racing an in-flight prefetch combines with it."""
        hierarchy, pf = make()
        pf.prefetch_block(0x1000, 1, 0.0)
        result = hierarchy.access(0x1000, False, 10.0)
        assert result.kind is AccessKind.PARTIAL
        assert result.ready > 10.0

    def test_timely_prefetch_fully_hides_latency(self):
        hierarchy, pf = make()
        pf.prefetch_block(0x1000, 1, 0.0)
        latency = hierarchy.config.full_miss_latency
        result = hierarchy.access(0x1000, False, latency + 1.0)
        assert result.kind is AccessKind.L1_HIT
