"""Unit tests for data-dependence speculation with forwarding."""

import pytest

from repro.cpu.speculation import DependenceSpeculator


class TestBasic:
    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            DependenceSpeculator(0)

    def test_no_stores_no_misspeculation(self):
        spec = DependenceSpeculator()
        assert not spec.on_load(0x100, 0x100)

    def test_same_initial_same_final_is_safe(self):
        """Ordinary dependence: the store queue handles it, no flush."""
        spec = DependenceSpeculator()
        spec.on_store(0x100, 0x100)
        assert not spec.on_load(0x100, 0x100)

    def test_different_finals_are_independent(self):
        spec = DependenceSpeculator()
        spec.on_store(0x100, 0x100)
        assert not spec.on_load(0x200, 0x200)

    def test_forwarded_collision_detected(self):
        """Store to old address, load to new: initials differ, finals match."""
        spec = DependenceSpeculator()
        spec.on_store(0x100, 0x800)  # store was forwarded
        assert spec.on_load(0x800, 0x800)
        assert spec.stats.misspeculations == 1

    def test_forwarded_load_collision_detected(self):
        spec = DependenceSpeculator()
        spec.on_store(0x800, 0x800)
        assert spec.on_load(0x100, 0x800)  # load forwarded to same final

    def test_word_granularity(self):
        """Sub-word accesses within the same word still collide."""
        spec = DependenceSpeculator()
        spec.on_store(0x100, 0x804)
        assert spec.on_load(0x800, 0x800)


class TestWindow:
    def test_old_stores_age_out(self):
        spec = DependenceSpeculator(window=2)
        spec.on_store(0x100, 0x800)
        spec.on_store(0x200, 0x200)
        spec.on_store(0x300, 0x300)  # evicts the 0x100 -> 0x800 store
        assert not spec.on_load(0x800, 0x800)

    def test_younger_duplicate_final_survives_eviction(self):
        spec = DependenceSpeculator(window=2)
        spec.on_store(0x100, 0x800)  # older store to final 0x800
        spec.on_store(0x300, 0x800)  # younger store, same final
        spec.on_store(0x400, 0x400)  # evicts the older one
        # The younger store (initial 0x300) must still be visible.
        assert spec.on_load(0x800, 0x800)

    def test_eviction_restores_older_mapping_correctness(self):
        spec = DependenceSpeculator(window=3)
        spec.on_store(0x100, 0x800)
        spec.on_store(0x800, 0x800)  # same-initial store (safe w.r.t. loads at 0x800)
        spec.on_store(0x400, 0x400)
        spec.on_store(0x500, 0x500)  # evicts the 0x100 store
        # Youngest store to 0x800 has initial 0x800 -> load at 0x800 is safe.
        assert not spec.on_load(0x800, 0x800)

    def test_reset(self):
        spec = DependenceSpeculator()
        spec.on_store(0x100, 0x800)
        spec.reset()
        assert not spec.on_load(0x800, 0x800)


class TestStats:
    def test_counters(self):
        spec = DependenceSpeculator()
        spec.on_store(0x100, 0x800)
        spec.on_load(0x800, 0x800)
        spec.on_load(0x900, 0x900)
        assert spec.stats.stores_tracked == 1
        assert spec.stats.loads_checked == 2
        assert spec.stats.misspeculations == 1
