"""Unit tests for the graduation-slot timing model."""

import pytest

from repro.cpu.timing import TimingConfig, TimingModel


def make(**overrides):
    return TimingModel(TimingConfig(**overrides))


class TestExecute:
    def test_width_sets_ideal_throughput(self):
        t = make(width=4, inst_overhead=0.0)
        t.execute(100)
        assert t.cycle == pytest.approx(25.0)
        assert t.instructions == 100

    def test_inst_overhead_charged_to_inst_stall(self):
        t = make(width=4, inst_overhead=0.1)
        t.execute(10)
        assert t.inst_stall_cycles == pytest.approx(1.0)
        assert t.cycle == pytest.approx(2.5 + 1.0)


class TestLoads:
    def test_ready_in_window_costs_nothing(self):
        t = make(ooo_window=8.0, inst_overhead=0.0)
        t.execute(4)  # cycle = 1
        t.load_completes(ready=5.0)
        assert t.load_stall_cycles == 0.0
        assert t.cycle == pytest.approx(1.0)

    def test_residual_beyond_window_stalls(self):
        t = make(ooo_window=8.0, inst_overhead=0.0)
        t.load_completes(ready=50.0)
        assert t.load_stall_cycles == pytest.approx(42.0)
        assert t.cycle == pytest.approx(42.0)

    def test_forwarding_flag_routes_to_forwarding_cycles(self):
        t = make(ooo_window=0.0)
        t.load_completes(ready=10.0, forwarding=True)
        assert t.forwarding_cycles == pytest.approx(10.0)
        assert t.load_stall_cycles == pytest.approx(10.0)


class TestStores:
    def test_buffer_absorbs_store_misses(self):
        t = make(store_buffer_depth=4, inst_overhead=0.0)
        for _ in range(4):
            t.store_completes(ready=100.0)
        assert t.store_stall_cycles == 0.0

    def test_full_buffer_stalls_until_drain(self):
        t = make(store_buffer_depth=2, inst_overhead=0.0)
        t.store_completes(ready=50.0)
        t.store_completes(ready=60.0)
        t.store_completes(ready=70.0)  # buffer full -> wait for 50
        assert t.store_stall_cycles == pytest.approx(50.0)
        assert t.cycle == pytest.approx(50.0)

    def test_drained_entries_free_slots(self):
        t = make(store_buffer_depth=1, inst_overhead=0.0)
        t.store_completes(ready=10.0)
        t.stall(20.0)  # time passes beyond ready
        before = t.store_stall_cycles
        t.store_completes(ready=40.0)
        assert t.store_stall_cycles == before


class TestPenalties:
    def test_forwarding_trap_cost_scales_with_hops(self):
        t = make(forwarding_trap_cycles=4.0, forwarding_hop_cycles=2.0)
        assert t.forwarding_trap_cost(1) == pytest.approx(6.0)
        assert t.forwarding_trap_cost(3) == pytest.approx(10.0)

    def test_forwarding_trap_charges_inst_stall(self):
        t = make(forwarding_trap_cycles=4.0, forwarding_hop_cycles=2.0)
        t.forwarding_trap(2)
        assert t.inst_stall_cycles == pytest.approx(8.0)
        assert t.forwarding_cycles == pytest.approx(8.0)
        assert t.cycle == pytest.approx(8.0)

    def test_misspeculation_flush(self):
        t = make(misspeculation_penalty=20.0)
        t.misspeculation_flush()
        assert t.misspeculations == 1
        assert t.cycle == pytest.approx(20.0)

    @pytest.mark.parametrize("category,attr", [
        ("load", "load_stall_cycles"),
        ("store", "store_stall_cycles"),
        ("inst", "inst_stall_cycles"),
    ])
    def test_explicit_stall_categories(self, category, attr):
        t = make()
        t.stall(5.0, category)
        assert getattr(t, attr) == pytest.approx(5.0)

    def test_negative_stall_ignored(self):
        t = make()
        t.stall(-1.0)
        assert t.cycle == 0.0


class TestBreakdown:
    def test_slots_sum_matches_components(self):
        t = make(width=4, inst_overhead=0.1)
        t.execute(100)
        t.load_completes(ready=t.cycle + 50.0)
        t.store_completes(ready=t.cycle + 5.0)
        slots = t.slot_breakdown()
        assert slots.busy == 100
        assert slots.load_stall == pytest.approx(42.0 * 4)
        assert slots.total == pytest.approx(
            slots.busy + slots.load_stall + slots.store_stall + slots.inst_stall
        )
