"""SimulationService end to end (thread-mode workers, real simulations)."""

import asyncio
import time

import pytest

from repro.obs import validate_manifest
from repro.serve import (
    DONE,
    FAILED,
    JobSpec,
    ServiceClosed,
    SimulationService,
)
from repro.trace import run_task

SCALE = 0.05


def _payload(**overrides):
    payload = {
        "app": "health",
        "variant": "N",
        "line_size": 32,
        "scale": SCALE,
        "seed": 1,
    }
    payload.update(overrides)
    return payload


def _service(tmp_path, **overrides):
    kwargs = dict(
        trace_dir=str(tmp_path / "store"), workers=2, mode="thread"
    )
    kwargs.update(overrides)
    return SimulationService(**kwargs)


async def _submit_and_wait(service, payload, timeout=60.0):
    job, outcome = await service.submit(payload)
    assert await job.wait(timeout), "job did not finish in time"
    return job, outcome


class TestLifecycle:
    def test_submit_runs_to_validated_manifest(self, tmp_path):
        async def scenario():
            service = _service(tmp_path)
            await service.start()
            try:
                job, outcome = await _submit_and_wait(service, _payload())
                assert outcome == "queued"
                assert job.state == DONE
                assert job.how == "captured"
                validate_manifest(job.manifest)
                assert job.manifest["summary"]["how"] == "captured"
                assert job.manifest["cells"][0]["id"] == "health/32B/N"
                spans = job.manifest["spans"]
                names = [span["name"] for span in spans]
                # The request trace crosses every tier: admission root,
                # probe, queue wait, worker round-trip, worker-side
                # capture (a cold cell's result comes from the capture
                # run itself; replay spans appear on warm replays).
                for expected in (
                    "serve.request",
                    "serve.probe",
                    "serve.queue.wait",
                    "serve.execute",
                    "worker.execute",
                    "trace.capture",
                ):
                    assert expected in names, names
                root = next(s for s in spans if s["name"] == "serve.request")
                assert "error" not in root
                assert root["trace_id"] == job.trace_id
                assert job.manifest["summary"]["trace_id"] == job.trace_id
            finally:
                await service.drain(timeout=10.0)

        asyncio.run(scenario())

    def test_second_identical_submit_is_a_warm_hit(self, tmp_path):
        async def scenario():
            service = _service(tmp_path)
            await service.start()
            try:
                first, _ = await _submit_and_wait(service, _payload())
                second, outcome = await service.submit(_payload())
                # Warm hit: terminal immediately, no queue round-trip.
                assert outcome == "cached"
                assert second.state == DONE and second.how == "cached"
                assert second.manifest["metrics"] == first.manifest["metrics"]
                assert (
                    second.manifest["cells"][0]["checksum"]
                    == first.manifest["cells"][0]["checksum"]
                )
                snapshot = service.obs.snapshot()
                assert snapshot["serve.cache.hit"] == 1
            finally:
                await service.drain(timeout=10.0)

        asyncio.run(scenario())

    def test_warm_store_from_batch_sweep_is_visible(self, tmp_path):
        """A cell the batch path already simulated serves without a worker."""
        async def scenario():
            service = _service(tmp_path)
            # Batch-side write into the same store.
            run_task(JobSpec.from_payload(_payload()).task(), service.store)
            await service.start()
            try:
                job, outcome = await service.submit(_payload())
                assert outcome == "cached"
                assert job.how == "cached"
            finally:
                await service.drain(timeout=10.0)

        asyncio.run(scenario())

    def test_duplicate_concurrent_submits_trigger_one_simulation(self, tmp_path):
        async def scenario():
            service = _service(tmp_path, workers=4)
            await service.start()
            try:
                jobs = [
                    (await service.submit(_payload(seed=99)))[0]
                    for _ in range(6)
                ]
                assert len({id(job) for job in jobs}) == 1
                assert jobs[0].subscribers == 6
                assert await jobs[0].wait(60.0)
                assert jobs[0].how == "captured"
                snapshot = service.obs.snapshot()
                assert snapshot["serve.jobs.submitted"] == 1
                assert snapshot["serve.jobs.coalesced"] == 5
                assert snapshot["serve.jobs.completed"] == 1
            finally:
                await service.drain(timeout=10.0)

        asyncio.run(scenario())

    def test_drain_stops_admission(self, tmp_path):
        async def scenario():
            service = _service(tmp_path)
            await service.start()
            assert await service.drain(timeout=10.0)
            with pytest.raises(ServiceClosed):
                await service.submit(_payload())
            assert service.healthz()["status"] == "draining"

        asyncio.run(scenario())


class TestFailure:
    def test_worker_exception_fails_job_with_span_error(
        self, tmp_path, monkeypatch
    ):
        import repro.trace.sweep as sweep_mod

        def _explode(task, store, traces=None, **kwargs):
            raise RuntimeError("simulated worker failure")

        monkeypatch.setattr(sweep_mod, "run_task", _explode)

        async def scenario():
            service = _service(tmp_path)
            await service.start()
            try:
                job, _ = await _submit_and_wait(service, _payload())
                assert job.state == FAILED
                assert "simulated worker failure" in job.error
                validate_manifest(job.manifest)
                root = next(
                    span
                    for span in job.manifest["spans"]
                    if span["name"] == "serve.request"
                )
                # The batch executor names the exact failing cell.
                assert "health/32B/N" in root["error"]
                assert root["error"].endswith(
                    "RuntimeError: simulated worker failure"
                )
                assert job.manifest["summary"]["error"] == root["error"]
                snapshot = service.obs.snapshot()
                assert snapshot["serve.jobs.failed"] == 1
                # The failed job released its scheduling state.
                assert service.scheduler.inflight == 0
            finally:
                await service.drain(timeout=10.0)

        asyncio.run(scenario())

    def test_job_timeout_fails_with_timeouts_counter(
        self, tmp_path, monkeypatch
    ):
        import repro.trace.sweep as sweep_mod

        def _stall(task, store, traces=None, **kwargs):
            time.sleep(0.8)
            raise AssertionError("unreachable in a passing test")

        monkeypatch.setattr(sweep_mod, "run_task", _stall)

        async def scenario():
            service = _service(tmp_path, job_timeout=0.1)
            await service.start()
            try:
                job, _ = await _submit_and_wait(service, _payload())
                assert job.state == FAILED
                assert "exceeded" in job.error
                root = next(
                    span
                    for span in job.manifest["spans"]
                    if span["name"] == "serve.request"
                )
                assert root["error"].startswith("JobTimeout")
                snapshot = service.obs.snapshot()
                assert snapshot["serve.jobs.timeouts"] == 1
            finally:
                await service.drain(timeout=10.0)

        asyncio.run(scenario())

    def test_broken_pool_is_rebuilt_and_job_retried(self, tmp_path):
        from concurrent.futures import BrokenExecutor, Future

        async def scenario():
            service = _service(tmp_path, workers=1)
            pool = service.pool
            real_submit = pool._submit_batch
            calls = {"n": 0}

            def _flaky_submit(tasks, ctxs=None, tokens=None):
                calls["n"] += 1
                if calls["n"] == 1:
                    future = Future()
                    future.set_exception(BrokenExecutor("worker died"))
                    return future
                return real_submit(tasks, ctxs, tokens)

            pool._submit_batch = _flaky_submit
            await service.start()
            try:
                job, _ = await _submit_and_wait(service, _payload())
                assert job.state == DONE
                assert job.attempts == 2
                assert pool.restarts == 1
            finally:
                await service.drain(timeout=10.0)

        asyncio.run(scenario())


class TestObservability:
    def test_metrics_payload_shape(self, tmp_path):
        async def scenario():
            service = _service(tmp_path)
            await service.start()
            try:
                await _submit_and_wait(service, _payload())
                await service.submit(_payload())  # warm hit
                payload = service.metrics_payload()
                metrics = payload["metrics"]["serve"]
                assert metrics["jobs"]["submitted"] == 1
                assert metrics["cache"]["hit"] == 1
                assert metrics["cache"]["miss"] == 1
                assert payload["jobs_by_state"]["done"] == 2
                assert "captured" in payload["latency"]
                captured = payload["latency"]["captured"]
                assert set(captured) == {"p50_ms", "p99_ms"}
                assert payload["uptime_seconds"] >= 0
            finally:
                await service.drain(timeout=10.0)

        asyncio.run(scenario())


class TestBatchFold:
    def test_queued_jobs_sharing_a_stream_run_as_one_batch(self, tmp_path):
        async def scenario():
            service = _service(tmp_path, workers=1)
            # Queue three cells on one trace key before any consumer
            # runs, so the first pop folds them into a single batch.
            jobs = [
                (await service.submit(_payload(line_size=size)))[0]
                for size in (32, 64, 128)
            ]
            await service.start()
            try:
                for job in jobs:
                    assert await job.wait(60.0)
                    assert job.state == DONE
                # The leader captured the stream; the folded cells
                # replayed it through the specialized kernel.
                assert jobs[0].how == "captured"
                assert jobs[0].manifest["summary"]["engine"] == "sequential"
                for job in jobs[1:]:
                    assert job.how == "replayed"
                    assert (
                        job.manifest["summary"]["engine"]
                        == "batch+specialized"
                    )
                    validate_manifest(job.manifest)
                snapshot = service.obs.snapshot()
                assert snapshot["serve.jobs.batch_folded"] == 2
                assert snapshot["serve.jobs.completed"] == 3
            finally:
                await service.drain(timeout=10.0)

        asyncio.run(scenario())

    def test_batch_disabled_still_serves(self, tmp_path):
        async def scenario():
            service = _service(tmp_path, batch=False)
            await service.start()
            try:
                job, _ = await _submit_and_wait(service, _payload())
                assert job.state == DONE
                assert "engine" not in job.manifest["summary"]
                snapshot = service.obs.snapshot()
                assert snapshot["serve.jobs.batch_folded"] == 0
            finally:
                await service.drain(timeout=10.0)

        asyncio.run(scenario())


class TestAdaptiveJobs:
    """Adaptive cells served over the job API stay fully auditable."""

    @staticmethod
    def _adaptive_payload(**overrides):
        payload = {
            "app": "mst_phase",
            "variant": "L",
            "line_size": 128,
            "scale": 0.4,
            "seed": 3,
            "adapt_policy": "hysteresis",
            "adapt_interval": 1024,
            "adapt_miss_rate_threshold": 0.62,
            "adapt_chase_rate_threshold": 0.02,
            "adapt_patience": 2,
            "adapt_cooldown": 4,
        }
        payload.update(overrides)
        return payload

    def test_manifest_carries_policy_and_audit_counters(self, tmp_path):
        async def scenario():
            service = _service(tmp_path)
            await service.start()
            try:
                job, _ = await _submit_and_wait(
                    service, self._adaptive_payload()
                )
                assert job.state == DONE
                manifest = job.manifest
                validate_manifest(manifest)
                run = manifest["run"]
                assert run["adapt_policy"] == "hysteresis"
                assert run["adapt_interval"] == 1024
                entry = manifest["cells"][0]
                assert entry["id"] == "mst_phase/128B/L/hysteresis"
                assert entry["labels"]["policy"] == "hysteresis"
                # At this scale hysteresis fires exactly one decision;
                # the cell values expose the engine's audit counters.
                values = entry["values"]
                assert values["adapt_decisions"] >= 1
                assert values["adapt_windows"] > 0
                assert values["adapt_cost_cycles"] > 0
            finally:
                await service.drain(timeout=10.0)

        asyncio.run(scenario())

    def test_warm_replay_preserves_audit_counters(self, tmp_path):
        async def scenario():
            service = _service(tmp_path)
            await service.start()
            try:
                cold, _ = await _submit_and_wait(
                    service, self._adaptive_payload()
                )
                warm, outcome = await service.submit(
                    self._adaptive_payload()
                )
                assert outcome == "cached"
                cold_values = cold.manifest["cells"][0]["values"]
                warm_values = warm.manifest["cells"][0]["values"]
                assert warm_values == cold_values
                assert warm_values["adapt_decisions"] >= 1
            finally:
                await service.drain(timeout=10.0)

        asyncio.run(scenario())

    def test_plain_job_has_no_adapt_values(self, tmp_path):
        async def scenario():
            service = _service(tmp_path)
            await service.start()
            try:
                job, _ = await _submit_and_wait(service, _payload())
                entry = job.manifest["cells"][0]
                assert "policy" not in entry["labels"]
                assert not any(
                    key.startswith("adapt_") for key in entry["values"]
                )
                assert "adapt_policy" not in job.manifest["run"]
            finally:
                await service.drain(timeout=10.0)

        asyncio.run(scenario())
