"""The HTTP front end: routing, status codes, backpressure, long-poll,
server-sent-event streaming, and Prometheus exposition."""

import asyncio
import json
import threading
import time

from repro.obs import validate_manifest
from repro.obs.prom import parse_prometheus
from repro.serve import HttpServer, SimulationService

SCALE = 0.05


def _payload(**overrides):
    payload = {
        "app": "health",
        "variant": "N",
        "line_size": 32,
        "scale": SCALE,
        "seed": 1,
    }
    payload.update(overrides)
    return payload


async def _request(port, method, path, body=None, raw=None):
    """One-shot HTTP exchange against localhost; returns (status, json)."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        if raw is not None:
            writer.write(raw)
        else:
            payload = b"" if body is None else json.dumps(body).encode()
            writer.write(
                (
                    f"{method} {path} HTTP/1.1\r\n"
                    f"Host: x\r\nContent-Length: {len(payload)}\r\n"
                    "Connection: close\r\n\r\n"
                ).encode()
                + payload
            )
        await writer.drain()
        status_line = await reader.readline()
        status = int(status_line.split(b" ", 2)[1])
        headers = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode().partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0"))
        decoded = json.loads(await reader.readexactly(length)) if length else {}
        return status, decoded, headers
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


def _run(scenario, tmp_path, **service_overrides):
    """Boot a real server on an ephemeral port, run scenario(port), stop."""

    async def wrapper():
        kwargs = dict(
            trace_dir=str(tmp_path / "store"), workers=2, mode="thread"
        )
        kwargs.update(service_overrides)
        service = SimulationService(**kwargs)
        server = HttpServer(service, port=0)
        await server.start()
        try:
            await scenario(server.port, service)
        finally:
            await server.stop(drain_timeout=10.0)

    asyncio.run(wrapper())


class TestEndpoints:
    def test_healthz(self, tmp_path):
        async def scenario(port, service):
            status, body, _ = await _request(port, "GET", "/healthz")
            assert status == 200
            assert body["status"] == "ok"
            assert body["mode"] == "thread"

        _run(scenario, tmp_path)

    def test_submit_poll_manifest_round_trip(self, tmp_path):
        async def scenario(port, service):
            status, body, _ = await _request(port, "POST", "/jobs", _payload())
            assert status == 202
            assert body["state"] in ("queued", "running")
            job_id = body["id"]
            while body["state"] not in ("done", "failed"):
                status, body, _ = await _request(
                    port, "GET", f"/jobs/{job_id}?wait=10"
                )
                assert status == 200
            assert body["state"] == "done"
            assert body["how"] == "captured"
            validate_manifest(body["manifest"])
            # Identical resubmission: served warm, manifest inline, 200.
            status, body, _ = await _request(port, "POST", "/jobs", _payload())
            assert status == 200
            assert body["outcome"] == "cached"
            assert body["manifest"]["summary"]["how"] == "cached"
            # The listing knows both jobs (no manifests in listings).
            status, listing, _ = await _request(port, "GET", "/jobs")
            assert status == 200
            assert len(listing["jobs"]) == 2
            assert all("manifest" not in job for job in listing["jobs"])
            # Metrics reflect the traffic.
            status, metrics, _ = await _request(port, "GET", "/metrics")
            assert status == 200
            assert metrics["metrics"]["serve"]["cache"]["hit"] == 1

        _run(scenario, tmp_path)

    def test_bad_spec_is_400(self, tmp_path):
        async def scenario(port, service):
            status, body, _ = await _request(
                port, "POST", "/jobs", _payload(app="doom")
            )
            assert status == 400
            assert "unknown app" in body["error"]
            status, body, _ = await _request(
                port, "POST", "/jobs", raw=(
                    b"POST /jobs HTTP/1.1\r\nHost: x\r\n"
                    b"Content-Length: 9\r\nConnection: close\r\n\r\n{not json"
                ),
            )
            assert status == 400
            assert "not valid JSON" in body["error"]

        _run(scenario, tmp_path)

    def test_unknown_routes_and_methods(self, tmp_path):
        async def scenario(port, service):
            status, body, _ = await _request(port, "GET", "/nope")
            assert status == 404
            status, body, _ = await _request(port, "DELETE", "/metrics")
            assert status == 405
            status, body, _ = await _request(port, "GET", "/jobs/job-999")
            assert status == 404
            assert "unknown job" in body["error"]
            status, body, _ = await _request(
                port, "GET", "/jobs/job-1?wait=abc"
            )
            # Unknown job wins over the bad wait here; submit one first.
            assert status in (400, 404)

        _run(scenario, tmp_path)

    def test_malformed_request_line_is_400(self, tmp_path):
        async def scenario(port, service):
            status, body, _ = await _request(
                port, "GET", "/", raw=b"garbage\r\n\r\n"
            )
            assert status == 400

        _run(scenario, tmp_path)

    def test_oversized_body_is_413(self, tmp_path):
        async def scenario(port, service):
            raw = (
                b"POST /jobs HTTP/1.1\r\nHost: x\r\n"
                b"Content-Length: 9999999999\r\nConnection: close\r\n\r\n"
            )
            status, body, _ = await _request(port, "POST", "/jobs", raw=raw)
            assert status == 413

        _run(scenario, tmp_path)


class TestBackpressure:
    def test_full_queue_gets_429_with_retry_after(self, tmp_path, monkeypatch):
        import repro.serve.workers as workers_mod

        release = threading.Event()
        real_run_task = workers_mod.run_task

        def _blocked(task, store, traces=None):
            release.wait(30.0)
            return real_run_task(task, store, traces)

        monkeypatch.setattr(workers_mod, "run_task", _blocked)

        async def scenario(port, service):
            try:
                # One worker, queue bound 1: first runs, second queues,
                # third sheds.
                seen = []
                for seed in (101, 102, 103):
                    status, body, headers = await _request(
                        port, "POST", "/jobs", _payload(seed=seed)
                    )
                    seen.append((status, headers.get("retry-after")))
                assert seen[0][0] == 202
                assert seen[1][0] == 202
                assert seen[2][0] == 429
                assert float(seen[2][1]) > 0
                snapshot = service.obs.snapshot()
                assert snapshot["serve.jobs.rejected"] == 1
            finally:
                release.set()

        _run(
            scenario,
            tmp_path,
            workers=1,
            queue_limit=1,
            retry_after=2.5,
        )

    def test_draining_service_returns_503(self, tmp_path):
        async def scenario(port, service):
            await service.drain(timeout=5.0)
            status, body, headers = await _request(
                port, "POST", "/jobs", _payload()
            )
            assert status == 503
            assert headers.get("retry-after") == "5"
            status, body, _ = await _request(port, "GET", "/healthz")
            assert body["status"] == "draining"

        _run(scenario, tmp_path)


async def _read_sse(port, path, limit=200):
    """Consume an SSE stream until its ``end`` event; returns the events."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    events = []
    try:
        writer.write(
            f"GET {path} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n".encode()
        )
        await writer.drain()
        status = int((await reader.readline()).split(b" ", 2)[1])
        while (await reader.readline()) not in (b"\r\n", b"\n", b""):
            pass
        if status != 200:
            return status, events
        while len(events) < limit:
            line = await asyncio.wait_for(reader.readline(), 30.0)
            if not line:
                break
            if not line.startswith(b"data: "):
                continue  # comment heartbeats, blank separators
            event = json.loads(line[len(b"data: "):])
            events.append(event)
            if event.get("event") == "end":
                break
        return status, events
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


class TestStreaming:
    def test_timeline_job_streams_windows_live(self, tmp_path, monkeypatch):
        # Pace the cell so windows drain to subscribers while it is
        # still running: the acceptance bar is >= 2 window events
        # observed strictly before the job's terminal state event.
        import repro.serve.workers as workers_mod

        real_run_task = workers_mod.run_task

        def _paced(task, store, tracer=None, on_window=None):
            paced = None
            if on_window is not None:
                def paced(window, _push=on_window):
                    _push(window)
                    time.sleep(0.02)
            return real_run_task(task, store, tracer=tracer, on_window=paced)

        monkeypatch.setattr(workers_mod, "run_task", _paced)

        async def scenario(port, service):
            status, body, _ = await _request(
                port, "POST", "/jobs", _payload(timeline_interval=100)
            )
            assert status == 202
            job_id = body["id"]
            status, events = await _read_sse(port, f"/jobs/{job_id}/stream")
            assert status == 200
            assert events[0]["event"] == "state"
            done_at = next(
                i for i, e in enumerate(events)
                if e["event"] == "state" and e.get("state") == "done"
            )
            windows_before_done = sum(
                1 for e in events[:done_at] if e["event"] == "window"
            )
            assert windows_before_done >= 2
            assert events[-1]["event"] == "end"
            assert isinstance(events[-1]["dropped"], int)
            # Window payloads carry the timeline series.
            window = next(e for e in events if e["event"] == "window")
            assert {"refs", "cycles", "miss_rate"} <= set(window)

        _run(scenario, tmp_path)

    def test_stream_after_completion_still_terminates(self, tmp_path):
        async def scenario(port, service):
            status, body, _ = await _request(
                port, "POST", "/jobs", _payload(timeline_interval=100)
            )
            job_id = body["id"]
            status, body, _ = await _request(
                port, "GET", f"/jobs/{job_id}?wait=30"
            )
            assert body["state"] == "done"
            # A late subscriber gets state + end, never hangs.
            status, events = await _read_sse(port, f"/jobs/{job_id}/stream")
            assert status == 200
            assert events[0] == {
                "event": "state", "state": "done", "job": job_id,
                "trace_id": events[0]["trace_id"],
            }
            assert events[-1]["event"] == "end"

        _run(scenario, tmp_path)

    def test_stream_unknown_job_is_404(self, tmp_path):
        async def scenario(port, service):
            status, events = await _read_sse(port, "/jobs/job-999/stream")
            assert status == 404
            assert events == []

        _run(scenario, tmp_path)


class TestPrometheus:
    def test_metrics_prometheus_round_trip(self, tmp_path):
        async def scenario(port, service):
            status, body, _ = await _request(port, "POST", "/jobs", _payload())
            job_id = body["id"]
            status, body, _ = await _request(
                port, "GET", f"/jobs/{job_id}?wait=30"
            )
            assert body["state"] == "done"
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            try:
                writer.write(
                    b"GET /metrics?format=prometheus HTTP/1.1\r\n"
                    b"Host: x\r\nConnection: close\r\n\r\n"
                )
                await writer.drain()
                status = int((await reader.readline()).split(b" ", 2)[1])
                headers = {}
                while True:
                    line = await reader.readline()
                    if line in (b"\r\n", b"\n", b""):
                        break
                    name, _, value = line.decode().partition(":")
                    headers[name.strip().lower()] = value.strip()
                text = (
                    await reader.readexactly(int(headers["content-length"]))
                ).decode()
            finally:
                writer.close()
                await writer.wait_closed()
            assert status == 200
            assert headers["content-type"].startswith("text/plain")
            parsed = parse_prometheus(text)
            names = {name for name, _, _ in parsed["samples"]}
            assert "repro_serve_jobs_completed" in names
            completed = [
                value for name, _, value in parsed["samples"]
                if name == "repro_serve_jobs_completed"
            ]
            assert completed == [1.0]

        _run(scenario, tmp_path)

    def test_metrics_unknown_format_is_400(self, tmp_path):
        async def scenario(port, service):
            status, body, _ = await _request(
                port, "GET", "/metrics?format=xml"
            )
            assert status == 400
            assert "format" in body["error"]

        _run(scenario, tmp_path)


class TestLongPoll:
    def test_wait_returns_early_on_completion(self, tmp_path):
        async def scenario(port, service):
            status, body, _ = await _request(port, "POST", "/jobs", _payload())
            job_id = body["id"]
            # A generous wait returns as soon as the job lands, not after
            # the full wait window.
            loop = asyncio.get_running_loop()
            started = loop.time()
            status, body, _ = await _request(
                port, "GET", f"/jobs/{job_id}?wait=25"
            )
            elapsed = loop.time() - started
            assert status == 200
            assert body["state"] == "done"
            assert elapsed < 20.0

        _run(scenario, tmp_path)
