"""Wire-level job specs: strict validation and deterministic identity."""

import pytest

from repro.serve import JobSpec, ProtocolError


def _payload(**overrides):
    payload = {"app": "health", "variant": "N", "line_size": 32}
    payload.update(overrides)
    return payload


class TestValidation:
    def test_minimal_payload_fills_defaults(self):
        spec = JobSpec.from_payload(_payload())
        assert spec.app == "health"
        assert spec.scale == 1.0
        assert spec.timeline_interval == 0

    def test_seed_defaults_to_app_seed(self):
        from repro.experiments.config import APP_SEEDS

        spec = JobSpec.from_payload(_payload(app="mst"))
        assert spec.seed == APP_SEEDS.get("mst", 1)

    def test_non_object_body_rejected(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            JobSpec.from_payload([1, 2, 3])

    def test_unknown_field_rejected(self):
        with pytest.raises(ProtocolError, match="unknown field"):
            JobSpec.from_payload(_payload(frobnicate=1))

    def test_missing_required_field_rejected(self):
        with pytest.raises(ProtocolError, match="missing required"):
            JobSpec.from_payload({"app": "health"})

    def test_unknown_app_rejected(self):
        with pytest.raises(ProtocolError, match="app"):
            JobSpec.from_payload(_payload(app="doom"))

    def test_unknown_variant_rejected(self):
        with pytest.raises(ProtocolError, match="variant"):
            JobSpec.from_payload(_payload(variant="X"))

    @pytest.mark.parametrize("bad", [0, 3, 48, 8192, "32", True])
    def test_bad_line_size_rejected(self, bad):
        with pytest.raises(ProtocolError, match="line_size"):
            JobSpec.from_payload(_payload(line_size=bad))

    @pytest.mark.parametrize("bad", [0, -1, 100.0, "big", None])
    def test_bad_scale_rejected(self, bad):
        with pytest.raises(ProtocolError, match="scale"):
            JobSpec.from_payload(_payload(scale=bad))

    @pytest.mark.parametrize("bad", [-1, 1.5, "7", False])
    def test_bad_seed_rejected(self, bad):
        with pytest.raises(ProtocolError, match="seed"):
            JobSpec.from_payload(_payload(seed=bad))

    def test_bad_timeline_knobs_rejected(self):
        with pytest.raises(ProtocolError, match="timeline_interval"):
            JobSpec.from_payload(_payload(timeline_interval=-5))
        with pytest.raises(ProtocolError, match="events_capacity"):
            JobSpec.from_payload(_payload(events_capacity="lots"))

    def test_unknown_mechanism_rejected(self):
        with pytest.raises(ProtocolError, match="unknown mechanism"):
            JobSpec.from_payload(_payload(mechanism="teleporter"))

    def test_irrelevant_misspath_knob_rejected(self):
        # vc_entries without a victim cache in the pipeline.
        with pytest.raises(ProtocolError, match="only meaningful"):
            JobSpec.from_payload(_payload(vc_entries=16))
        with pytest.raises(ProtocolError, match="only meaningful"):
            JobSpec.from_payload(
                _payload(mechanism="victim_cache", sb_depth=8)
            )

    @pytest.mark.parametrize("bad", [0, -1, 2048, "8", True, 1.5])
    def test_out_of_range_misspath_knob_rejected(self, bad):
        with pytest.raises(ProtocolError, match="vc_entries"):
            JobSpec.from_payload(
                _payload(mechanism="victim_cache", vc_entries=bad)
            )

    def test_unknown_adapt_policy_rejected(self):
        with pytest.raises(ProtocolError, match="unknown policy"):
            JobSpec.from_payload(_payload(adapt_policy="oracle"))

    def test_adapt_knob_without_policy_rejected(self):
        with pytest.raises(ProtocolError, match="only meaningful"):
            JobSpec.from_payload(_payload(adapt_interval=1024))
        with pytest.raises(ProtocolError, match="only meaningful"):
            JobSpec.from_payload(_payload(adapt_epsilon=0.5))

    @pytest.mark.parametrize("bad", [0, 63, 1 << 21, "1024", True, 1.5])
    def test_out_of_range_adapt_interval_rejected(self, bad):
        with pytest.raises(ProtocolError, match="adapt_interval"):
            JobSpec.from_payload(
                _payload(adapt_policy="hysteresis", adapt_interval=bad)
            )

    @pytest.mark.parametrize("bad", [0, 65, True, "2"])
    def test_out_of_range_adapt_patience_rejected(self, bad):
        with pytest.raises(ProtocolError, match="adapt_patience"):
            JobSpec.from_payload(
                _payload(adapt_policy="hysteresis", adapt_patience=bad)
            )

    @pytest.mark.parametrize("bad", [0.0, -0.1, 1.5, "high", True])
    def test_out_of_range_adapt_threshold_rejected(self, bad):
        with pytest.raises(ProtocolError, match="adapt_miss_rate_threshold"):
            JobSpec.from_payload(
                _payload(
                    adapt_policy="hysteresis", adapt_miss_rate_threshold=bad
                )
            )

    @pytest.mark.parametrize("bad", [-0.1, 1.5, "greedy", True])
    def test_out_of_range_adapt_epsilon_rejected(self, bad):
        with pytest.raises(ProtocolError, match="adapt_epsilon"):
            JobSpec.from_payload(
                _payload(adapt_policy="epsilon_greedy", adapt_epsilon=bad)
            )

    @pytest.mark.parametrize("bad", [100, 3000, 1 << 31, "64K", True])
    def test_bad_heatmap_region_rejected(self, bad):
        with pytest.raises(ProtocolError, match="heatmap_region"):
            JobSpec.from_payload(
                _payload(adapt_policy="hysteresis", heatmap_region=bad)
            )

    def test_heatmap_region_requires_timeline_or_adapt(self):
        with pytest.raises(ProtocolError, match="only meaningful"):
            JobSpec.from_payload(_payload(heatmap_region=4096))
        spec = JobSpec.from_payload(
            _payload(timeline_interval=1000, heatmap_region=4096)
        )
        assert spec.heatmap_region == 4096


class TestIdentity:
    def test_job_key_is_deterministic(self):
        a = JobSpec.from_payload(_payload(scale=0.5))
        b = JobSpec.from_payload(_payload(scale=0.5))
        assert a.job_key == b.job_key

    def test_job_key_tracks_every_field(self):
        base = JobSpec.from_payload(_payload()).job_key
        assert JobSpec.from_payload(_payload(line_size=64)).job_key != base
        assert JobSpec.from_payload(_payload(seed=12345)).job_key != base
        assert JobSpec.from_payload(_payload(scale=0.5)).job_key != base
        assert (
            JobSpec.from_payload(_payload(timeline_interval=100)).job_key != base
        )

    def test_cell_id_and_task_round_trip(self):
        spec = JobSpec.from_payload(_payload(line_size=64, scale=0.25))
        assert spec.cell_id == "health/64B/N"
        task = spec.task()
        assert (task.app, task.variant, task.line_size) == ("health", "N", 64)
        assert task.scale == 0.25

    def test_mechanism_separates_job_keys(self):
        base = JobSpec.from_payload(_payload())
        mech = JobSpec.from_payload(_payload(mechanism="victim_cache"))
        assert mech.job_key != base.job_key
        assert mech.cell_id == "health/32B/N/victim_cache"
        assert base.cell_id == "health/32B/N"
        sized = JobSpec.from_payload(
            _payload(mechanism="victim_cache", vc_entries=16)
        )
        assert sized.job_key != mech.job_key

    def test_unused_knobs_pin_to_defaults_without_aliasing(self):
        # A knob the mechanism doesn't read can't be set, so every spec
        # carries the canonical default and identical work shares a key.
        explicit = JobSpec.from_payload(
            _payload(mechanism="victim_cache", vc_entries=8)
        )
        implicit = JobSpec.from_payload(_payload(mechanism="victim_cache"))
        assert explicit.job_key == implicit.job_key
        assert implicit.mc_entries == 8 and implicit.sb_count == 4

    def test_mechanism_travels_into_task(self):
        spec = JobSpec.from_payload(
            _payload(mechanism="combined", vc_entries=4, sb_count=2)
        )
        task = spec.task()
        assert task.mechanism == "combined"
        assert (task.vc_entries, task.sb_count) == (4, 2)
        assert task.sb_depth == 4  # pinned default

    def test_adapt_policy_separates_job_keys_and_cell_id(self):
        base = JobSpec.from_payload(_payload())
        adaptive = JobSpec.from_payload(_payload(adapt_policy="hysteresis"))
        assert adaptive.job_key != base.job_key
        assert adaptive.cell_id == "health/32B/N/hysteresis"
        assert base.cell_id == "health/32B/N"
        tuned = JobSpec.from_payload(
            _payload(adapt_policy="hysteresis", adapt_interval=4096)
        )
        assert tuned.job_key != adaptive.job_key

    def test_adapt_knobs_pin_to_defaults_without_aliasing(self):
        explicit = JobSpec.from_payload(
            _payload(adapt_policy="hysteresis", adapt_interval=2048)
        )
        implicit = JobSpec.from_payload(_payload(adapt_policy="hysteresis"))
        assert explicit.job_key == implicit.job_key

    def test_adapt_config_travels_into_task(self):
        spec = JobSpec.from_payload(
            _payload(
                adapt_policy="epsilon_greedy",
                adapt_epsilon=0.25,
                adapt_interval=1024,
                seed=9,
            )
        )
        task = spec.task()
        assert task.adapt is not None
        assert task.adapt.policy == "epsilon_greedy"
        assert task.adapt.epsilon == 0.25
        assert task.adapt.interval == 1024
        assert task.adapt.seed == 9  # engine RNG follows the job seed
        plain = JobSpec.from_payload(_payload()).task()
        assert plain.adapt is None

    def test_heatmap_region_travels_into_task(self):
        spec = JobSpec.from_payload(
            _payload(timeline_interval=500, heatmap_region=8192)
        )
        assert spec.task().heatmap_region == 8192
