"""Wire-level job specs: strict validation and deterministic identity."""

import pytest

from repro.serve import JobSpec, ProtocolError


def _payload(**overrides):
    payload = {"app": "health", "variant": "N", "line_size": 32}
    payload.update(overrides)
    return payload


class TestValidation:
    def test_minimal_payload_fills_defaults(self):
        spec = JobSpec.from_payload(_payload())
        assert spec.app == "health"
        assert spec.scale == 1.0
        assert spec.timeline_interval == 0

    def test_seed_defaults_to_app_seed(self):
        from repro.experiments.config import APP_SEEDS

        spec = JobSpec.from_payload(_payload(app="mst"))
        assert spec.seed == APP_SEEDS.get("mst", 1)

    def test_non_object_body_rejected(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            JobSpec.from_payload([1, 2, 3])

    def test_unknown_field_rejected(self):
        with pytest.raises(ProtocolError, match="unknown field"):
            JobSpec.from_payload(_payload(frobnicate=1))

    def test_missing_required_field_rejected(self):
        with pytest.raises(ProtocolError, match="missing required"):
            JobSpec.from_payload({"app": "health"})

    def test_unknown_app_rejected(self):
        with pytest.raises(ProtocolError, match="app"):
            JobSpec.from_payload(_payload(app="doom"))

    def test_unknown_variant_rejected(self):
        with pytest.raises(ProtocolError, match="variant"):
            JobSpec.from_payload(_payload(variant="X"))

    @pytest.mark.parametrize("bad", [0, 3, 48, 8192, "32", True])
    def test_bad_line_size_rejected(self, bad):
        with pytest.raises(ProtocolError, match="line_size"):
            JobSpec.from_payload(_payload(line_size=bad))

    @pytest.mark.parametrize("bad", [0, -1, 100.0, "big", None])
    def test_bad_scale_rejected(self, bad):
        with pytest.raises(ProtocolError, match="scale"):
            JobSpec.from_payload(_payload(scale=bad))

    @pytest.mark.parametrize("bad", [-1, 1.5, "7", False])
    def test_bad_seed_rejected(self, bad):
        with pytest.raises(ProtocolError, match="seed"):
            JobSpec.from_payload(_payload(seed=bad))

    def test_bad_timeline_knobs_rejected(self):
        with pytest.raises(ProtocolError, match="timeline_interval"):
            JobSpec.from_payload(_payload(timeline_interval=-5))
        with pytest.raises(ProtocolError, match="events_capacity"):
            JobSpec.from_payload(_payload(events_capacity="lots"))


class TestIdentity:
    def test_job_key_is_deterministic(self):
        a = JobSpec.from_payload(_payload(scale=0.5))
        b = JobSpec.from_payload(_payload(scale=0.5))
        assert a.job_key == b.job_key

    def test_job_key_tracks_every_field(self):
        base = JobSpec.from_payload(_payload()).job_key
        assert JobSpec.from_payload(_payload(line_size=64)).job_key != base
        assert JobSpec.from_payload(_payload(seed=12345)).job_key != base
        assert JobSpec.from_payload(_payload(scale=0.5)).job_key != base
        assert (
            JobSpec.from_payload(_payload(timeline_interval=100)).job_key != base
        )

    def test_cell_id_and_task_round_trip(self):
        spec = JobSpec.from_payload(_payload(line_size=64, scale=0.25))
        assert spec.cell_id == "health/64B/N"
        task = spec.task()
        assert (task.app, task.variant, task.line_size) == ("health", "N", 64)
        assert task.scale == 0.25
