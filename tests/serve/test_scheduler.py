"""Scheduler policies: coalescing, backpressure, cache-aware pop order."""

import asyncio

import pytest

from repro.serve import JobSpec, JobTable, QueueFull, Scheduler
from repro.trace import ArtifactStore, run_task

SCALE = 0.05


def _spec(app="health", variant="N", line_size=32, seed=1):
    return JobSpec.from_payload(
        {
            "app": app,
            "variant": variant,
            "line_size": line_size,
            "scale": SCALE,
            "seed": seed,
        }
    )


def _submit(scheduler, table, spec):
    return scheduler.submit(lambda: table.create(spec), spec.job_key)


class TestCoalescing:
    def test_identical_specs_share_one_job(self, tmp_path):
        async def scenario():
            scheduler = Scheduler(ArtifactStore(tmp_path))
            table = JobTable()
            spec = _spec()
            first, outcome_first = _submit(scheduler, table, spec)
            second, outcome_second = _submit(scheduler, table, spec)
            assert outcome_first == "queued"
            assert outcome_second == "coalesced"
            assert second is first
            assert first.subscribers == 2
            assert scheduler.depth == 1
            assert scheduler.inflight == 1

        asyncio.run(scenario())

    def test_running_job_still_coalesces(self, tmp_path):
        async def scenario():
            scheduler = Scheduler(ArtifactStore(tmp_path))
            table = JobTable()
            spec = _spec()
            job, _ = _submit(scheduler, table, spec)
            popped = await scheduler.pop()
            assert popped is job
            attached, outcome = _submit(scheduler, table, spec)
            assert outcome == "coalesced" and attached is job
            # Once released, an identical spec is a fresh job again.
            scheduler.finished(job, captured=True)
            fresh, outcome = _submit(scheduler, table, spec)
            assert outcome == "queued" and fresh is not job

        asyncio.run(scenario())


class TestBackpressure:
    def test_queue_bound_raises_queue_full(self, tmp_path):
        async def scenario():
            scheduler = Scheduler(
                ArtifactStore(tmp_path), queue_limit=2, retry_after=3.0
            )
            table = JobTable()
            _submit(scheduler, table, _spec(seed=1))
            _submit(scheduler, table, _spec(seed=2))
            with pytest.raises(QueueFull) as excinfo:
                _submit(scheduler, table, _spec(seed=3))
            assert excinfo.value.retry_after == 3.0
            assert excinfo.value.depth == 2
            # Rejected submissions must not leak into the coalescing index.
            assert scheduler.inflight == 2

        asyncio.run(scenario())

    def test_rejected_factory_never_runs(self, tmp_path):
        async def scenario():
            scheduler = Scheduler(ArtifactStore(tmp_path), queue_limit=1)
            table = JobTable()
            _submit(scheduler, table, _spec(seed=1))
            with pytest.raises(QueueFull):
                scheduler.submit(
                    lambda: pytest.fail("factory ran on rejection"),
                    _spec(seed=2).job_key,
                )

        asyncio.run(scenario())


class TestCacheAwareOrdering:
    def test_warm_cells_pop_before_cold(self, tmp_path):
        store = ArtifactStore(tmp_path)
        warm_spec = _spec(app="health", line_size=32)
        run_task(warm_spec.task(), store)  # make health's trace warm

        async def scenario():
            scheduler = Scheduler(store)
            table = JobTable()
            cold, _ = _submit(scheduler, table, _spec(app="mst"))
            warm, _ = _submit(scheduler, table, warm_spec)
            assert await scheduler.pop() is warm
            assert await scheduler.pop() is cold

        asyncio.run(scenario())

    def test_cold_cells_sharing_a_stream_are_gated(self, tmp_path):
        async def scenario():
            scheduler = Scheduler(ArtifactStore(tmp_path))
            table = JobTable()
            # Same workload identity, different line sizes: one trace key.
            first, _ = _submit(scheduler, table, _spec(line_size=32))
            second, _ = _submit(scheduler, table, _spec(line_size=64))
            popped = await scheduler.pop()
            assert popped is first
            # The second cell needs the stream being captured: pop blocks.
            with pytest.raises(asyncio.TimeoutError):
                await asyncio.wait_for(scheduler.pop(), 0.1)
            # Capture lands -> the gated cell is released (and now warm).
            scheduler.finished(first, captured=True)
            assert await asyncio.wait_for(scheduler.pop(), 1.0) is second

        asyncio.run(scenario())

    def test_failed_capture_lifts_the_gate(self, tmp_path):
        async def scenario():
            scheduler = Scheduler(ArtifactStore(tmp_path))
            table = JobTable()
            first, _ = _submit(scheduler, table, _spec(line_size=32))
            second, _ = _submit(scheduler, table, _spec(line_size=64))
            await scheduler.pop()
            scheduler.finished(first, captured=False)
            # The retry is allowed through (still cold, gate released).
            assert await asyncio.wait_for(scheduler.pop(), 1.0) is second

        asyncio.run(scenario())


class TestBatchFold:
    def test_pop_batch_folds_jobs_sharing_a_stream(self, tmp_path):
        async def scenario():
            scheduler = Scheduler(ArtifactStore(tmp_path))
            table = JobTable()
            # Three cells on one trace key, one on another.
            a32, _ = _submit(scheduler, table, _spec(line_size=32))
            other, _ = _submit(scheduler, table, _spec(app="mst"))
            a64, _ = _submit(scheduler, table, _spec(line_size=64))
            a128, _ = _submit(scheduler, table, _spec(line_size=128))
            batch = await scheduler.pop_batch()
            # Leader plus every queued cell sharing its stream, in order;
            # the folded cells are exactly the ones the capture gate
            # would otherwise have held back.
            assert batch == [a32, a64, a128]
            assert scheduler.depth == 1
            assert (await scheduler.pop_batch()) == [other]

        asyncio.run(scenario())

    def test_pop_batch_warm_leader_still_folds(self, tmp_path):
        store = ArtifactStore(tmp_path)
        warm_spec = _spec(line_size=32)
        run_task(warm_spec.task(), store)

        async def scenario():
            scheduler = Scheduler(store)
            table = JobTable()
            cold, _ = _submit(scheduler, table, _spec(app="mst"))
            warm, _ = _submit(scheduler, table, warm_spec)
            sibling, _ = _submit(scheduler, table, _spec(line_size=64))
            # Warm-first pop order holds; the warm leader's sibling rides
            # along even though it was queued behind the cold job.
            assert (await scheduler.pop_batch()) == [warm, sibling]
            assert (await scheduler.pop_batch()) == [cold]

        asyncio.run(scenario())
