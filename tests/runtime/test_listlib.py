"""Unit tests for the generic list library and its auto-linearization."""

import pytest

from repro import Machine
from repro.runtime.listlib import DEFAULT_LINEARIZE_THRESHOLD, ListLib


@pytest.fixture
def m():
    return Machine()


@pytest.fixture
def lib(m):
    return ListLib(m)


class TestBasicOperations:
    def test_new_list_is_empty(self, lib):
        lst = lib.new_list()
        assert lib.to_list(lst) == []
        assert lib.length(lst) == 0

    def test_push_front_order(self, lib):
        lst = lib.new_list()
        for value in (1, 2, 3):
            lib.push_front(lst, value)
        assert lib.to_list(lst) == [3, 2, 1]
        assert lib.length(lst) == 3

    def test_insert_at(self, lib):
        lst = lib.new_list()
        for value in (1, 2, 3):
            lib.push_front(lst, value)  # [3, 2, 1]
        lib.insert_at(lst, 1, 99)
        assert lib.to_list(lst) == [3, 99, 2, 1]

    def test_insert_at_end(self, lib):
        lst = lib.new_list()
        lib.push_front(lst, 1)
        lib.insert_at(lst, 10, 2)  # index beyond length appends
        assert lib.to_list(lst) == [1, 2]

    def test_remove_at(self, lib):
        lst = lib.new_list()
        for value in (1, 2, 3):
            lib.push_front(lst, value)
        assert lib.remove_at(lst, 1) == 2
        assert lib.to_list(lst) == [3, 1]
        assert lib.length(lst) == 2

    def test_remove_at_out_of_range(self, lib):
        lst = lib.new_list()
        lib.push_front(lst, 1)
        assert lib.remove_at(lst, 5) is None

    def test_remove_value(self, lib):
        lst = lib.new_list()
        for value in (1, 2, 3):
            lib.push_front(lst, value)
        assert lib.remove_value(lst, 2)
        assert not lib.remove_value(lst, 42)
        assert lib.to_list(lst) == [3, 1]

    def test_node_extra_words(self, m):
        lib = ListLib(m, node_extra_words=4)
        assert lib.node_bytes == 16 + 32
        lst = lib.new_list()
        lib.push_front(lst, 5)
        assert lib.to_list(lst) == [5]

    def test_parameter_validation(self, m):
        with pytest.raises(ValueError):
            ListLib(m, threshold=0)
        with pytest.raises(ValueError):
            ListLib(m, node_extra_words=-1)


class TestLinearization:
    def test_manual_linearize_preserves_contents(self, m):
        pool = m.create_pool(1 << 16)
        lib = ListLib(m, pool=pool)
        lst = lib.new_list()
        for value in range(10):
            lib.push_front(lst, value)
        expected = lib.to_list(lst)
        lib.linearize(lst)
        assert lib.to_list(lst) == expected

    def test_linearize_without_pool_raises(self, lib):
        lst = lib.new_list()
        with pytest.raises(ValueError):
            lib.linearize(lst)

    def test_auto_linearize_at_threshold(self, m):
        pool = m.create_pool(1 << 16)
        lib = ListLib(m, pool=pool, threshold=10)
        lst = lib.new_list()
        for value in range(10):
            lib.push_front(lst, value)
        assert lib.linearizations == 0
        lib.push_front(lst, 10)  # 11th op crosses the threshold
        assert lib.linearizations == 1

    def test_counter_resets_after_linearize(self, m):
        pool = m.create_pool(1 << 16)
        lib = ListLib(m, pool=pool, threshold=5)
        lst = lib.new_list()
        for value in range(14):
            lib.push_front(lst, value)
        assert lib.linearizations == 2  # at ops 6 and 12

    def test_default_threshold_matches_paper(self, lib):
        assert DEFAULT_LINEARIZE_THRESHOLD == 50
        assert lib.threshold == 50

    def test_unoptimized_build_never_linearizes(self, lib):
        lst = lib.new_list()
        for value in range(200):
            lib.push_front(lst, value)
        assert lib.linearizations == 0

    def test_removal_after_linearization(self, m):
        """Nodes relocated into the pool can still be unlinked and freed."""
        pool = m.create_pool(1 << 16)
        lib = ListLib(m, pool=pool, threshold=4)
        lst = lib.new_list()
        for value in range(8):
            lib.push_front(lst, value)   # triggers linearization
        assert lib.linearizations >= 1
        assert lib.remove_value(lst, 3)
        assert 3 not in lib.to_list(lst)

    def test_interleaved_lists_linearize_independently(self, m):
        pool = m.create_pool(1 << 18)
        lib = ListLib(m, pool=pool, threshold=6)
        a = lib.new_list()
        b = lib.new_list()
        for value in range(10):
            lib.push_front(a, value)
            lib.push_front(b, value + 100)
        assert lib.to_list(a) == list(reversed(range(10)))
        assert lib.to_list(b) == list(reversed(range(100, 110)))
        assert lib.linearizations == 2

    def test_linearized_traversal_is_cheaper(self, m):
        """Spatially local traversal should cost fewer cycles."""
        pool = m.create_pool(1 << 18)
        plain = ListLib(m)
        opt = ListLib(m, pool=pool)
        a = plain.new_list()
        b = opt.new_list()
        # Interleave to scatter both lists identically.
        for value in range(300):
            plain.push_front(a, value)
            opt.push_front(b, value)
        opt.linearize(b)

        def traversal_cycles(lib, lst):
            start = m.cycles
            lib.to_list(lst)
            return m.cycles - start

        # Second traversals (steady state, both post-warmup).
        traversal_cycles(plain, a)
        traversal_cycles(opt, b)
        plain_cost = traversal_cycles(plain, a)
        opt_cost = traversal_cycles(opt, b)
        assert opt_cost < plain_cost
