"""Unit tests for the chained hash table."""

import pytest

from repro import Machine
from repro.runtime.hashtab import HashTable, default_hash


@pytest.fixture
def m():
    return Machine()


@pytest.fixture
def table(m):
    return HashTable(m, buckets=16)


class TestHashFunction:
    def test_in_range(self):
        for key in range(1000):
            assert 0 <= default_hash(key, 37) < 37

    def test_deterministic(self):
        assert default_hash(12345, 64) == default_hash(12345, 64)

    def test_spreads_sequential_keys(self):
        hits = {default_hash(key, 64) for key in range(64)}
        assert len(hits) > 32  # sequential keys should not collide badly

    def test_rejects_bad_bucket_count(self):
        with pytest.raises(ValueError):
            default_hash(1, 0)


class TestBasicOperations:
    def test_insert_lookup(self, table):
        table.insert(1, 100)
        table.insert(2, 200)
        assert table.lookup(1) == 100
        assert table.lookup(2) == 200
        assert table.lookup(3) is None
        assert table.count == 2

    def test_collision_chains(self, m):
        table = HashTable(m, buckets=1)  # everything collides
        for key in range(20):
            table.insert(key, key * 10)
        for key in range(20):
            assert table.lookup(key) == key * 10

    def test_update(self, table):
        table.insert(5, 1)
        assert table.update(5, 2)
        assert table.lookup(5) == 2
        assert not table.update(99, 0)

    def test_remove(self, table):
        table.insert(7, 70)
        assert table.remove(7)
        assert table.lookup(7) is None
        assert not table.remove(7)
        assert table.count == 0

    def test_remove_middle_of_chain(self, m):
        table = HashTable(m, buckets=1)
        for key in (1, 2, 3):
            table.insert(key, key)
        assert table.remove(2)
        assert table.lookup(1) == 1
        assert table.lookup(3) == 3

    def test_iter_items_covers_everything(self, table):
        inserted = {(key, key * 3) for key in range(30)}
        for key, value in inserted:
            table.insert(key, value)
        assert set(table.iter_items()) == inserted

    def test_rejects_bad_bucket_count(self, m):
        with pytest.raises(ValueError):
            HashTable(m, buckets=0)


class TestLinearization:
    def test_linearize_preserves_contents(self, m):
        table = HashTable(m, buckets=4)
        inserted = {(key, key + 1000) for key in range(40)}
        for key, value in inserted:
            table.insert(key, value)
        pool = m.create_pool(1 << 16)
        moved = table.linearize_all(pool)
        assert moved == 40
        assert set(table.iter_items()) == inserted

    def test_stale_node_pointer_forwards(self, m):
        """A direct pointer to a chain node (like SMV's tree pointers)
        keeps working after the chains are linearized."""
        table = HashTable(m, buckets=2)
        node = table.insert(1, 111)
        table.insert(3, 333)
        pool = m.create_pool(1 << 16)
        table.linearize_all(pool)
        from repro.runtime.hashtab import HASH_NODE
        # The stale pointer still reads the node's value via forwarding.
        assert HASH_NODE.read(m, node, "value") == 111
        assert m.stats().loads.forwarded >= 1

    def test_bucket_chain_contiguous_after_linearize(self, m):
        table = HashTable(m, buckets=1)
        for key in range(8):
            table.insert(key, key)
        pool = m.create_pool(1 << 16)
        table.linearize_bucket(0, pool)
        addresses = [node for node, _, _ in table.iter_bucket(0)]
        spans = [b - a for a, b in zip(addresses, addresses[1:])]
        from repro.runtime.hashtab import HASH_NODE
        assert all(span == HASH_NODE.size for span in spans)
