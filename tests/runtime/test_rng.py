"""Unit tests for the deterministic RNG."""

import pytest

from repro.runtime.rng import DeterministicRNG


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = DeterministicRNG(42)
        b = DeterministicRNG(42)
        assert [a.next_u64() for _ in range(50)] == [b.next_u64() for _ in range(50)]

    def test_different_seeds_differ(self):
        a = DeterministicRNG(1)
        b = DeterministicRNG(2)
        assert [a.next_u64() for _ in range(10)] != [b.next_u64() for _ in range(10)]

    def test_zero_seed_survives(self):
        rng = DeterministicRNG(0)
        assert rng.next_u64() != 0

    def test_split_streams_are_independent(self):
        rng = DeterministicRNG(7)
        child = rng.split()
        parent_seq = [rng.next_u64() for _ in range(10)]
        child_seq = [child.next_u64() for _ in range(10)]
        assert parent_seq != child_seq


class TestDistributions:
    def test_randint_in_range(self):
        rng = DeterministicRNG(3)
        for _ in range(1000):
            assert 0 <= rng.randint(17) < 17

    def test_randint_covers_range(self):
        rng = DeterministicRNG(3)
        seen = {rng.randint(8) for _ in range(500)}
        assert seen == set(range(8))

    def test_randint_validation(self):
        with pytest.raises(ValueError):
            DeterministicRNG().randint(0)

    def test_randrange(self):
        rng = DeterministicRNG(5)
        for _ in range(200):
            assert 10 <= rng.randrange(10, 20) < 20
        with pytest.raises(ValueError):
            rng.randrange(5, 5)

    def test_random_unit_interval(self):
        rng = DeterministicRNG(9)
        values = [rng.random() for _ in range(1000)]
        assert all(0.0 <= value < 1.0 for value in values)
        assert 0.4 < sum(values) / len(values) < 0.6  # roughly uniform

    def test_chance_extremes(self):
        rng = DeterministicRNG(11)
        assert not any(rng.chance(0.0) for _ in range(100))
        assert all(rng.chance(1.0) for _ in range(100))

    def test_shuffle_is_permutation(self):
        rng = DeterministicRNG(13)
        items = list(range(20))
        shuffled = items[:]
        rng.shuffle(shuffled)
        assert sorted(shuffled) == items
        assert shuffled != items  # overwhelmingly likely with 20 elements
