"""Unit tests for record layouts."""

import pytest

from repro import Machine
from repro.runtime.records import RecordLayout


class TestLayout:
    def test_sequential_offsets(self):
        layout = RecordLayout("r", [("a", 8), ("b", 8), ("c", 8)])
        assert layout.offset("a") == 0
        assert layout.offset("b") == 8
        assert layout.offset("c") == 16
        assert layout.size == 24
        assert layout.words == 3

    def test_natural_alignment_inserts_padding(self):
        layout = RecordLayout("r", [("flag", 1), ("count", 4), ("ptr", 8)])
        assert layout.offset("flag") == 0
        assert layout.offset("count") == 4
        assert layout.offset("ptr") == 8

    def test_size_rounds_to_word(self):
        layout = RecordLayout("r", [("a", 4)])
        assert layout.size == 8
        layout = RecordLayout("r", [("a", 8), ("b", 2)])
        assert layout.size == 16

    def test_mixed_small_fields_pack(self):
        layout = RecordLayout("r", [("a", 2), ("b", 2), ("c", 4)])
        assert layout.offset("b") == 2
        assert layout.offset("c") == 4
        assert layout.size == 8

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            RecordLayout("r", [("a", 3)])
        with pytest.raises(ValueError):
            RecordLayout("r", [("a", 16)])

    def test_rejects_duplicates_and_empty(self):
        with pytest.raises(ValueError):
            RecordLayout("r", [("a", 8), ("a", 8)])
        with pytest.raises(ValueError):
            RecordLayout("r", [])

    def test_field_names(self):
        layout = RecordLayout("r", [("x", 8), ("y", 4)])
        assert layout.field_names == ["x", "y"]


class TestAccessors:
    @pytest.fixture
    def m(self):
        return Machine()

    def test_read_write_roundtrip(self, m):
        layout = RecordLayout("node", [("value", 8), ("next", 8)])
        addr = layout.alloc(m)
        layout.write(m, addr, "value", 99)
        layout.write(m, addr, "next", 0x2000)
        assert layout.read(m, addr, "value") == 99
        assert layout.read(m, addr, "next") == 0x2000

    def test_subword_fields_respect_size(self, m):
        layout = RecordLayout("r", [("small", 2), ("big", 8)])
        addr = layout.alloc(m)
        layout.write(m, addr, "small", 0x1FFFF)  # truncated to 16 bits
        assert layout.read(m, addr, "small") == 0xFFFF

    def test_accessors_are_timed(self, m):
        layout = RecordLayout("r", [("a", 8)])
        addr = layout.alloc(m)
        before = m.stats().loads.count
        layout.read(m, addr, "a")
        assert m.stats().loads.count == before + 1

    def test_unknown_field_raises(self, m):
        layout = RecordLayout("r", [("a", 8)])
        addr = layout.alloc(m)
        with pytest.raises(KeyError):
            layout.read(m, addr, "zzz")
