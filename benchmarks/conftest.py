"""Shared fixtures for the benchmark/figure-reproduction suite.

The benchmarks run the paper's experiments at a reduced (but
shape-preserving) scale and assert the paper's qualitative results --
who wins, by roughly what factor, where the crossovers fall.  One shared
runner memoises simulations so each (app, variant, line size) is
simulated once per session.
"""

import pytest

from repro.experiments.runner import ExperimentRunner

#: Scale used by the benchmark suite: large enough that working sets
#: exceed the scaled caches (the regime every paper shape depends on).
BENCH_SCALE = 0.6


@pytest.fixture(scope="session")
def runner():
    return ExperimentRunner(scale=BENCH_SCALE)


@pytest.fixture(scope="session")
def full_runner():
    """Full-scale runner for the shapes that need the complete workload."""
    return ExperimentRunner(scale=1.0)
