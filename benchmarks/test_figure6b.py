"""Benchmark/reproduction of Figure 6(b): memory-system bandwidth."""

import pytest

from repro.apps import FIGURE5_APPS
from repro.apps.base import Variant
from repro.experiments import figure6, line_sizes_for


@pytest.fixture(scope="module")
def fig6(full_runner):
    return figure6.run(full_runner, scale=1.0)


def _total(fig6, app, line, variant):
    return fig6.bandwidth_cell(app, line, variant).total


def test_figure6b_regeneration(benchmark, full_runner):
    result = benchmark.pedantic(
        lambda: figure6.run(full_runner, scale=1.0), rounds=1, iterations=1
    )
    _run_shape_checks(result, TestPaperShapes)
    assert len(result.bandwidth) == len(FIGURE5_APPS) * 3 * 2


class TestPaperShapes:
    def test_bandwidth_reduced_in_nearly_all_cases(self, fig6):
        """Paper: locality optimizations conserve bandwidth nearly
        everywhere (Compress is the known exception)."""
        reduced = 0
        cases = 0
        for app in FIGURE5_APPS:
            if app == "compress":
                continue
            for line in line_sizes_for(app):
                cases += 1
                if _total(fig6, app, line, Variant.L) < _total(fig6, app, line, Variant.N):
                    reduced += 1
        assert reduced >= cases - 1

    def test_twofold_reduction_exists(self, fig6):
        """Paper: 'a bandwidth reduction of twofold or more in a few cases'."""
        big = sum(
            1
            for app in FIGURE5_APPS
            for line in line_sizes_for(app)
            if _total(fig6, app, line, Variant.N)
            >= 2 * _total(fig6, app, line, Variant.L)
        )
        assert big >= 2

    def test_unoptimized_bandwidth_grows_with_line_size(self, fig6):
        """Long lines waste bandwidth when spatial locality is poor."""
        for app in FIGURE5_APPS:
            sizes = line_sizes_for(app)
            first = _total(fig6, app, sizes[0], Variant.N)
            last = _total(fig6, app, sizes[-1], Variant.N)
            assert last > first, app

    def test_optimized_bandwidth_grows_slower(self, fig6):
        """With real spatial locality, longer lines cost much less extra."""
        for app in ("health", "vis", "eqntott"):
            sizes = line_sizes_for(app)
            n_growth = _total(fig6, app, sizes[-1], Variant.N) / _total(
                fig6, app, sizes[0], Variant.N
            )
            l_growth = _total(fig6, app, sizes[-1], Variant.L) / _total(
                fig6, app, sizes[0], Variant.L
            )
            assert l_growth < n_growth, app

    def test_both_interfaces_accounted(self, fig6):
        for app in FIGURE5_APPS:
            cell = fig6.bandwidth_cell(app, line_sizes_for(app)[0], Variant.N)
            assert cell.l1_l2_bytes > 0
            assert cell.l2_mem_bytes > 0


def _run_shape_checks(result, shapes_cls):
    """Invoke every test_* method of a shape-check class on ``result``.

    Under ``--benchmark-only`` the non-benchmark tests are skipped, so the
    benchmarked regeneration test re-runs the same assertions itself.
    """
    instance = shapes_cls()
    for name in dir(instance):
        if name.startswith("test_"):
            getattr(instance, name)(result)
