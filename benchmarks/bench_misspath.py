#!/usr/bin/env python
"""Miss-path mechanism benchmark: zero-cost disablement + absorption.

Two claims, measured end to end and written to ``BENCH_PR6.json`` next
to this file (override with ``--out``):

1. **Baseline throughput is unchanged.**  With ``mechanism="none"`` the
   42-cell Figure 5 sweep runs the exact pre-PR fused fast path -- the
   miss-path hook is a single ``is None`` test at machine build time.
   The sweep here reuses :func:`bench_hotpath.bench_sweep` verbatim and
   is gated against the pinned ``BENCH_PR4.json`` throughput
   (``--baseline``/``--max-regression``, default 2%).  At scale 1.0 the
   aggregate simulated metrics must additionally be *bit-identical* to
   the pinned values -- that part of the gate is immune to wall-clock
   drift across machines.

2. **Headline absorption table.**  The mechanism matrix
   (:mod:`repro.experiments.misspath`) at ``--absorption-scale``:
   per (mechanism, variant) mean absorbed-miss fraction and normalized
   execution time, N vs L.  This is the paper-facing number: layout
   optimization (L) reshuffles memory and manufactures conflict misses,
   and the table shows how much of that self-inflicted miss stream each
   Jouppi-style stage soaks up.

Usage::

    PYTHONPATH=src python benchmarks/bench_misspath.py [--scale S]
        [--absorption-scale S] [--out FILE] [--skip-sweep]
        [--skip-absorption] [--baseline FILE] [--max-regression R]
        [--note KEY=VALUE ...]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from bench_hotpath import bench_sweep, check_regression

from repro.cache.misspath import MECHANISMS
from repro.experiments import ExperimentRunner, misspath

#: The throughput pin this PR must not regress: the PR-4 fused fast
#: path, 42 cells at scale 1.0 (see BENCH_PR4.json "sweep").
PINNED = Path(__file__).parent / "BENCH_PR4.json"


def check_metrics_identical(sweep: dict, baseline_path: Path) -> str | None:
    """Bit-identity gate: simulated metrics vs the pinned sweep.

    Only meaningful when the scales match; wall-clock may drift across
    machines, simulated cycle counts may not.
    """
    pinned = json.loads(baseline_path.read_text())["sweep"]
    if sweep["scale"] != pinned["scale"]:
        return None
    for key, expected in pinned["metrics"].items():
        if sweep["metrics"][key] != expected:
            return (
                f"simulated metric {key} moved: "
                f"{sweep['metrics'][key]} != pinned {expected}"
            )
    return None


def bench_absorption(scale: float, verbose: bool = True) -> dict:
    """Run the full mechanism matrix and distill the headline table."""
    runner = ExperimentRunner(scale=scale)
    started = time.perf_counter()
    result = misspath.run(runner, scale=scale, mechanisms=MECHANISMS)
    seconds = time.perf_counter() - started
    if verbose:
        print(result.render(), file=sys.stderr)
    table: dict[str, dict] = {}
    for (mechanism, variant), absorbed in sorted(result.mean_absorption.items()):
        table.setdefault(mechanism, {})[variant] = {
            "mean_absorption": round(absorbed, 4),
            "mean_normalized_cycles": round(
                result.mean_normalized_cycles[(mechanism, variant)], 4
            ),
        }
    cells = len(result.cells)
    return {
        "scale": scale,
        "cells": cells,
        "cells_per_mechanism": cells // len(MECHANISMS),
        "seconds": round(seconds, 3),
        "mechanisms": table,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=1.0,
                        help="disabled-sweep workload scale (default 1.0)")
    parser.add_argument("--absorption-scale", type=float, default=1.0,
                        metavar="S",
                        help="mechanism-matrix workload scale (default 1.0)")
    parser.add_argument("--out", default=None, metavar="FILE",
                        help="output JSON path (default BENCH_PR6.json "
                             "next to this script)")
    parser.add_argument("--skip-sweep", action="store_true",
                        help="skip the disabled-mechanism throughput sweep")
    parser.add_argument("--skip-absorption", action="store_true",
                        help="skip the mechanism absorption matrix")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress progress and tables on stderr")
    parser.add_argument("--baseline", default=str(PINNED), metavar="FILE",
                        help="pinned benchmark JSON to gate the disabled "
                             "sweep against (default BENCH_PR4.json; "
                             "empty string disables the gate)")
    parser.add_argument("--max-regression", type=float, default=0.02,
                        metavar="R",
                        help="allowed fractional throughput loss vs "
                             "--baseline (default 0.02)")
    parser.add_argument("--note", action="append", default=[],
                        metavar="KEY=VALUE",
                        help="embed a measurement-context note in the "
                             "report (repeatable)")
    args = parser.parse_args(argv)

    report: dict = {
        "bench": "miss-path mechanisms",
        "python": sys.version.split()[0],
        "pinned_baseline": str(Path(args.baseline).name) if args.baseline else None,
    }
    notes = dict(note.split("=", 1) for note in args.note if "=" in note)
    if notes:
        report["notes"] = notes

    failures: list[str] = []
    if not args.skip_sweep:
        print(
            f"== disabled-mechanism Figure 5 sweep (scale {args.scale}) ==",
            file=sys.stderr,
        )
        sweep = bench_sweep(args.scale, verbose=not args.quiet)
        report["sweep_disabled"] = sweep
        if args.baseline:
            pin = Path(args.baseline)
            identity_error = check_metrics_identical(sweep, pin)
            sweep["metrics_bit_identical_to_pin"] = (
                identity_error is None and sweep["scale"] == 1.0
            )
            if identity_error:
                failures.append(identity_error)
            regression = check_regression(sweep, pin, args.max_regression)
            if regression:
                failures.append(regression)

    if not args.skip_absorption:
        print(
            f"== mechanism absorption matrix "
            f"(scale {args.absorption_scale}) ==",
            file=sys.stderr,
        )
        report["absorption"] = bench_absorption(
            args.absorption_scale, verbose=not args.quiet
        )

    out_path = (
        Path(args.out) if args.out else Path(__file__).parent / "BENCH_PR6.json"
    )
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    print(f"wrote {out_path}", file=sys.stderr)
    for failure in failures:
        print(f"REGRESSION: {failure}", file=sys.stderr)
    if failures:
        return 1
    if args.baseline and not args.skip_sweep:
        print("regression gate passed", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
