"""Benchmark: capture-once-replay-many vs direct simulation of a sweep.

The workload is a Figure 5-style matrix -- every Figure 5 app at N and L
across its three line sizes (42 cells).  Direct simulation runs the
application 42 times; the trace path captures each distinct reference
stream once (16 captures: one per app/variant, plus one per line size
for BH's line-size-sensitive optimized stream) and replays the remaining
26 cells, which is measurably cheaper.  A second invocation over the
warm artifact store runs no simulator at all and must be faster still.

Every replayed/cached cell is also checked for *exact* stats equality
with its direct run -- the benchmark doubles as the full-matrix fidelity
gate at benchmark scale.
"""

import time

from repro.apps import FIGURE5_APPS, get_application
from repro.apps.base import Variant
from repro.experiments import line_sizes_for
from repro.experiments.config import experiment_config
from repro.trace import ArtifactStore, SweepTask, execute_sweep

#: Smaller than BENCH_SCALE: this test simulates the matrix twice (once
#: directly, once through the trace engine), so it pays 2x the cells.
SWEEP_SCALE = 0.3


def _matrix():
    return [
        SweepTask(app, variant, line_size, SWEEP_SCALE, 1)
        for app in FIGURE5_APPS
        for variant in ("N", "L")
        for line_size in line_sizes_for(app)
    ]


def test_trace_sweep_beats_direct(benchmark, tmp_path):
    tasks = _matrix()
    assert len(tasks) == len(FIGURE5_APPS) * 2 * 3

    started = time.perf_counter()
    direct = {
        task: get_application(task.app, scale=task.scale, seed=task.seed).run(
            Variant(task.variant), experiment_config(task.line_size)
        )
        for task in tasks
    }
    direct_seconds = time.perf_counter() - started

    store = ArtifactStore(tmp_path)
    cold = benchmark.pedantic(
        lambda: execute_sweep(tasks, store), rounds=1, iterations=1
    )
    cold_seconds = benchmark.stats.stats.total

    started = time.perf_counter()
    warm = execute_sweep(tasks, ArtifactStore(tmp_path))
    warm_seconds = time.perf_counter() - started

    # Fidelity first: every trace-engine cell matches its direct run.
    for task in tasks:
        assert cold[task][0].stats.dump() == direct[task].stats.dump(), task
        assert warm[task][0].stats.dump() == direct[task].stats.dump(), task

    # Capture-once-replay-many: 16 captures, 26 replays, zero simulations
    # on the warm pass.
    hows = sorted(how for _, how in cold.values())
    assert hows.count("captured") == 16
    assert hows.count("replayed") == 26
    assert all(how == "cached" for _, how in warm.values())

    benchmark.extra_info["direct_seconds"] = round(direct_seconds, 3)
    benchmark.extra_info["warm_seconds"] = round(warm_seconds, 3)
    assert cold_seconds < direct_seconds, (cold_seconds, direct_seconds)
    assert warm_seconds < cold_seconds * 0.5, (warm_seconds, cold_seconds)
