"""Benchmark/reproduction of Figure 7: prefetching x locality."""

import pytest

from repro.apps import FIGURE5_APPS
from repro.apps.base import Variant
from repro.experiments import figure7

#: The list-processing applications whose prefetching the paper says is
#: limited by pointer chasing until linearization removes it.
LIST_APPS = ("health", "mst", "radiosity", "vis")


@pytest.fixture(scope="module")
def fig7(full_runner):
    return figure7.run(full_runner, scale=1.0)


def test_figure7_regeneration(benchmark, full_runner):
    result = benchmark.pedantic(
        lambda: figure7.run(full_runner, scale=1.0), rounds=1, iterations=1
    )
    _run_shape_checks(result, TestPaperShapes)
    assert len(result.cells) == len(FIGURE5_APPS) * 4


class TestPaperShapes:
    def test_locality_improves_prefetching_in_five_apps(self, fig7):
        """Paper: prefetching performance improves with the layout
        optimizations in five applications (LP beats NP)."""
        improved = sum(
            1
            for app in FIGURE5_APPS
            if fig7.cell(app, Variant.LP).cycles < fig7.cell(app, Variant.NP).cycles
        )
        assert improved >= 5

    def test_health_and_vis_gain_over_forty_percent(self, fig7):
        """Paper: two applications enjoy >40% speedups of LP over NP."""
        for app in ("health", "vis"):
            np_cycles = fig7.cell(app, Variant.NP).cycles
            lp_cycles = fig7.cell(app, Variant.LP).cycles
            assert np_cycles / lp_cycles > 1.4, app

    def test_combining_beats_either_alone(self, fig7):
        """Paper: in four of the five improved apps, LP beats both L and
        NP individually -- the techniques are complementary."""
        both_better = sum(
            1
            for app in LIST_APPS + ("eqntott",)
            if fig7.cell(app, Variant.LP).cycles
            < min(fig7.cell(app, Variant.L).cycles, fig7.cell(app, Variant.NP).cycles)
        )
        assert both_better >= 4

    def test_pointer_chasing_limits_unoptimized_prefetch(self, fig7):
        """One-node-ahead is all NP can do on scattered lists, so its
        gains are modest next to LP's block prefetching."""
        for app in ("health", "vis"):
            n = fig7.cell(app, Variant.N).cycles
            np_gain = n / fig7.cell(app, Variant.NP).cycles
            lp_gain = n / fig7.cell(app, Variant.LP).cycles
            assert np_gain < lp_gain, app

    def test_prefetches_actually_issued(self, fig7):
        for app in FIGURE5_APPS:
            assert fig7.cell(app, Variant.NP).prefetch_instructions > 0
            assert fig7.cell(app, Variant.LP).prefetch_instructions > 0


def _run_shape_checks(result, shapes_cls):
    """Invoke every test_* method of a shape-check class on ``result``.

    Under ``--benchmark-only`` the non-benchmark tests are skipped, so the
    benchmarked regeneration test re-runs the same assertions itself.
    """
    instance = shapes_cls()
    for name in dir(instance):
        if name.startswith("test_"):
            getattr(instance, name)(result)
