#!/usr/bin/env python
"""Adaptive-relocation benchmark: the static-vs-adaptive headline matrix.

Runs the full ``python -m repro adapt`` matrix (static-never /
static-once / one arm per policy, both phase apps, 128-byte lines) at
scale 1.0 and writes the result to ``BENCH_PR10.json`` next to this
file (override with ``--out``).

The pinned numbers are *simulated* cycles, so they are bit-exact across
machines: re-running with ``--baseline BENCH_PR10.json`` gates every
cell's cycles and checksum against the pin and fails on any drift.
The headline claims the gate enforces:

1. **Adaptive beats static-once under phase change.**  At least one
   adaptive arm finishes in fewer cycles than the app's own one-shot
   optimizer (``mst_phase``: threshold and hysteresis both win; the
   epsilon-greedy arm pays an honest exploration tax and loses).
2. **Relocation never changes results.**  Every arm of an app computes
   the identical checksum.
3. **Do-no-harm on self-healing workloads.**  ``health_phase``'s
   periodic linearizer already recovers from the flip; every adaptive
   arm must tie static-once exactly (zero decisions, zero cost).

Usage::

    PYTHONPATH=src python benchmarks/bench_adapt.py [--scale S]
        [--out FILE] [--baseline FILE] [--quiet] [--note KEY=VALUE ...]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.adapt import experiment as adapt_experiment
from repro.adapt.config import POLICIES
from repro.adapt.experiment import STATIC_ONCE
from repro.experiments import ExperimentRunner

DEFAULT_OUT = Path(__file__).parent / "BENCH_PR10.json"


def bench_matrix(scale: float, verbose: bool = True) -> dict:
    """Run the policy matrix and distill the pinnable report."""
    runner = ExperimentRunner(scale=scale)
    started = time.perf_counter()
    result = adapt_experiment.run(runner, scale=scale, policies=POLICIES)
    seconds = time.perf_counter() - started
    if verbose:
        print(result.render(), file=sys.stderr)
    cells: dict[str, dict] = {}
    for cell in result.cells:
        cells.setdefault(cell.app, {})[cell.arm] = {
            "cycles": cell.cycles,
            "l1_misses": cell.l1_misses,
            "normalized_cycles": round(cell.normalized_cycles, 6),
            "decisions": cell.decisions,
            "cost_cycles": cell.cost_cycles,
            "benefit_cycles": cell.benefit_cycles,
            "checksum": cell.checksum,
        }
    return {
        "scale": scale,
        "line_size": adapt_experiment.LINE_SIZE,
        "policies": list(POLICIES),
        "seconds": round(seconds, 3),
        "checksums_equal": result.checksums_equal,
        "adaptive_wins": [list(win) for win in result.adaptive_wins],
        "cells": cells,
    }


def check_headline(matrix: dict) -> list[str]:
    """The claims this benchmark exists to defend."""
    failures: list[str] = []
    if not matrix["checksums_equal"]:
        failures.append("checksums differ across arms: relocation changed results")
    if not matrix["adaptive_wins"]:
        failures.append("no adaptive arm beat static-once anywhere")
    for arm in POLICIES:
        adaptive = matrix["cells"]["health_phase"][arm]
        static = matrix["cells"]["health_phase"][STATIC_ONCE]
        if adaptive["cycles"] != static["cycles"] or adaptive["decisions"]:
            failures.append(
                f"health_phase/{arm} did not tie static-once "
                f"({adaptive['cycles']} vs {static['cycles']}, "
                f"{adaptive['decisions']} decisions)"
            )
    return failures


def check_bit_identical(matrix: dict, baseline_path: Path) -> list[str]:
    """Every cell's simulated cycles and checksum vs the pin."""
    pinned = json.loads(baseline_path.read_text())["matrix"]
    if matrix["scale"] != pinned["scale"]:
        return []
    failures = []
    for app, arms in pinned["cells"].items():
        for arm, expected in arms.items():
            got = matrix["cells"][app][arm]
            for key in ("cycles", "checksum", "decisions"):
                if got[key] != expected[key]:
                    failures.append(
                        f"{app}/{arm} {key} moved: "
                        f"{got[key]} != pinned {expected[key]}"
                    )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=1.0,
                        help="workload scale (default 1.0; the pin gate "
                             "only applies at the pinned scale)")
    parser.add_argument("--out", default=str(DEFAULT_OUT), metavar="FILE",
                        help="output JSON path (default BENCH_PR10.json "
                             "next to this script)")
    parser.add_argument("--baseline", default=None, metavar="FILE",
                        help="pinned benchmark JSON to gate bit-identity "
                             "against (e.g. BENCH_PR10.json)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the matrix table on stderr")
    parser.add_argument("--note", action="append", default=[],
                        metavar="KEY=VALUE",
                        help="embed a measurement-context note in the "
                             "report (repeatable)")
    args = parser.parse_args(argv)

    report: dict = {
        "bench": "adaptive relocation",
        "python": sys.version.split()[0],
    }
    notes = dict(note.split("=", 1) for note in args.note if "=" in note)
    if notes:
        report["notes"] = notes

    print(f"== adaptive relocation matrix (scale {args.scale}) ==",
          file=sys.stderr)
    matrix = bench_matrix(args.scale, verbose=not args.quiet)
    report["matrix"] = matrix

    failures = check_headline(matrix)
    if args.baseline:
        failures += check_bit_identical(matrix, Path(args.baseline))
    report["headline_ok"] = not failures

    out = Path(args.out)
    out.write_text(json.dumps(report, indent=1, sort_keys=True) + "\n")
    print(f"wrote {out}", file=sys.stderr)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
