"""Benchmark/reproduction of Figure 6(a): load D-cache miss counts."""

import pytest

from repro.apps import FIGURE5_APPS
from repro.apps.base import Variant
from repro.experiments import figure6, line_sizes_for


@pytest.fixture(scope="module")
def fig6(full_runner):
    return figure6.run(full_runner, scale=1.0)


def test_figure6a_regeneration(benchmark, full_runner):
    result = benchmark.pedantic(
        lambda: figure6.run(full_runner, scale=1.0), rounds=1, iterations=1
    )
    _run_shape_checks(result, TestPaperShapes)
    assert len(result.misses) == len(FIGURE5_APPS) * 3 * 2


class TestPaperShapes:
    def test_substantial_reductions_exist(self, fig6):
        """Paper: >35% miss reduction in a sizable share of the 21
        (app, line) cases; our coarser model clears >=30% in several."""
        big_cuts = sum(
            1
            for app in FIGURE5_APPS
            for line in line_sizes_for(app)
            if fig6.miss_reduction(app, line) >= 0.30
        )
        assert big_cuts >= 4

    def test_optimized_cuts_misses_at_long_lines(self, fig6):
        """At 128 B lines the packing pays off for the list-heavy apps."""
        for app in ("health", "mst", "vis", "eqntott"):
            assert fig6.miss_reduction(app, 128) > 0.15, app

    def test_vis_miss_reduction_over_half(self, fig6):
        assert fig6.miss_reduction("vis", 128) > 0.5

    def test_full_misses_fall_with_optimization(self, fig6):
        """Across apps, L converts full misses into partials or hits."""
        for app in ("health", "mst", "vis", "eqntott", "bh"):
            for line in line_sizes_for(app)[1:]:
                n = fig6.miss_cell(app, line, Variant.N).full
                opt = fig6.miss_cell(app, line, Variant.L).full
                assert opt < n, (app, line)

    def test_partial_and_full_classes_both_populated(self, fig6):
        for app in FIGURE5_APPS:
            cell = fig6.miss_cell(app, line_sizes_for(app)[0], Variant.N)
            assert cell.full > 0
            assert cell.partial >= 0

    def test_compress_misses_increase(self, fig6):
        """The negative result shows up in misses too."""
        assert fig6.miss_reduction("compress", 32) < 0.0


def _run_shape_checks(result, shapes_cls):
    """Invoke every test_* method of a shape-check class on ``result``.

    Under ``--benchmark-only`` the non-benchmark tests are skipped, so the
    benchmarked regeneration test re-runs the same assertions itself.
    """
    instance = shapes_cls()
    for name in dir(instance):
        if name.startswith("test_"):
            getattr(instance, name)(result)
