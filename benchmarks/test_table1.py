"""Benchmark/reproduction of Table 1: the application inventory."""

from repro.experiments import table1


def test_table1(benchmark, full_runner):
    result = benchmark.pedantic(
        lambda: table1.run(full_runner, scale=1.0), rounds=1, iterations=1
    )
    apps = {row.app for row in result.rows}
    assert apps == {
        "bh", "compress", "eqntott", "health", "mst", "radiosity", "smv", "vis",
    }
    for row in result.rows:
        # Every optimized application genuinely relocates data and pays
        # pool space for it (the paper's "Space Overhead" column).
        assert row.words_relocated > 0, row.app
        assert row.space_overhead_bytes > 0, row.app

    by_app = {row.app: row for row in result.rows}
    # One-shot optimizations are invoked exactly once...
    assert by_app["eqntott"].optimizer_invocations == 1
    assert by_app["bh"].optimizer_invocations == 1
    assert by_app["compress"].optimizer_invocations == 1
    # ...while the periodic linearizers fire many times.
    assert by_app["health"].optimizer_invocations > 10
    assert by_app["vis"].optimizer_invocations > 10
    assert by_app["radiosity"].optimizer_invocations > 10
