"""Benchmarks for the design-choice ablations (beyond the paper's figures)."""

from repro.experiments import ablations


def test_hop_limit_sweep(benchmark):
    result = benchmark.pedantic(
        lambda: ablations.hop_limit_sweep(scale=0.5), rounds=1, iterations=1
    )
    rows = {row[0]: row for row in result.rows}
    # A hop limit of 1 triggers false-alarm cycle checks (every 1-hop
    # chain overflows the counter); sane limits never do.
    assert rows[1][2] > 0
    assert rows[16][2] == 0
    # No genuine cycles exist in real workloads.
    assert all(row[3] == 0 for row in result.rows)
    # Performance is limit-insensitive: checks are cheap and rare.
    cycles = [float(row[1]) for row in result.rows]
    assert max(cycles) < min(cycles) * 1.05


def test_speculation_ablation(benchmark):
    result = benchmark.pedantic(
        lambda: ablations.speculation_ablation(scale=0.5), rounds=1, iterations=1
    )
    # Section 3.2's observation: misspeculation almost never occurs --
    # in this workload, never.
    assert all(row[4] == 0 for row in result.rows)


def test_linearize_threshold_sweep(benchmark):
    result = benchmark.pedantic(
        lambda: ablations.linearize_threshold_sweep(scale=0.5), rounds=1, iterations=1
    )
    linearizations = [row[2] for row in result.rows]
    # Monotone: lower thresholds linearize at least as often.
    assert linearizations == sorted(linearizations, reverse=True)
    # Aggressive linearization beats none at this working-set size.
    aggressive = float(result.rows[0][1])
    never = float(result.rows[-1][1])
    assert aggressive < never


def test_prefetch_block_sweep(benchmark):
    result = benchmark.pedantic(
        lambda: ablations.prefetch_block_sweep(scale=0.5), rounds=1, iterations=1
    )
    # Larger blocks fetch further ahead on linearized lists: the best
    # block size is bigger than one line (the paper reports choosing the
    # best size per case).
    cycles = {row[0]: float(row[1]) for row in result.rows}
    assert min(cycles, key=cycles.get) > 1
