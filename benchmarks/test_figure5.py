"""Benchmark/reproduction of Figure 5: locality-optimization speedups.

Asserts the paper's qualitative results:

* the layout optimizations beat the unoptimized code at every line size
  for every application except Compress (the paper's explicit exception);
* speedups grow with line size;
* unoptimized performance degrades as lines get longer (poor spatial
  locality makes long lines pure overhead);
* the instruction overhead of the optimizations is low.
"""

import pytest

from repro.apps import FIGURE5_APPS
from repro.apps.base import Variant
from repro.experiments import figure5, line_sizes_for

WINNING_APPS = tuple(app for app in FIGURE5_APPS if app != "compress")


@pytest.fixture(scope="module")
def fig5(full_runner):
    return figure5.run(full_runner, scale=1.0)


def test_figure5_regeneration(benchmark, full_runner):
    result = benchmark.pedantic(
        lambda: figure5.run(full_runner, scale=1.0), rounds=1, iterations=1
    )
    _run_shape_checks(result, TestPaperShapes)
    assert len(result.cells) == len(FIGURE5_APPS) * 3 * 2


class TestPaperShapes:
    def test_optimized_wins_everywhere_except_compress(self, fig5):
        for app in WINNING_APPS:
            for line in line_sizes_for(app):
                assert fig5.speedups[(app, line)] > 1.0, (app, line)

    def test_compress_is_the_exception(self, fig5):
        """Section 5.1: merging hurts Compress at 32B and 64B lines."""
        assert fig5.speedups[("compress", 32)] < 1.0
        assert fig5.speedups[("compress", 64)] < 1.0

    def test_speedups_increase_with_line_size(self, fig5):
        for app in WINNING_APPS:
            sizes = line_sizes_for(app)
            first = fig5.speedups[(app, sizes[0])]
            last = fig5.speedups[(app, sizes[-1])]
            assert last > first * 0.98, (app, first, last)

    def test_vis_exceeds_twofold(self, fig5):
        """The paper's headline: more-than-2x for the list-heavy apps."""
        sizes = line_sizes_for("vis")
        assert fig5.speedups[("vis", sizes[-1])] > 2.0

    def test_health_gains_are_large(self, fig5):
        assert fig5.speedups[("health", 128)] > 1.4

    def test_unoptimized_degrades_with_line_size(self, fig5):
        degrading = 0
        for app in FIGURE5_APPS:
            sizes = line_sizes_for(app)
            first = fig5.cell(app, sizes[0], Variant.N).cycles
            last = fig5.cell(app, sizes[-1], Variant.N).cycles
            if last >= first * 0.99:
                degrading += 1
        assert degrading >= 5  # "performance generally degrades"

    def test_instruction_overhead_is_low(self, fig5):
        """The optimized busy section grows by only a few percent."""
        for app in WINNING_APPS:
            line = line_sizes_for(app)[0]
            n_busy = fig5.cell(app, line, Variant.N).slots.busy
            l_busy = fig5.cell(app, line, Variant.L).slots.busy
            assert l_busy < n_busy * 1.15, app

    def test_load_stall_dominates_unoptimized_time(self, fig5):
        """These are memory-bound pointer codes: load stall is the top
        section of the N bars, which is what the optimization attacks."""
        for app in ("health", "mst", "vis"):
            cell = fig5.cell(app, 32, Variant.N)
            assert cell.slots.load_stall > cell.slots.busy


def _run_shape_checks(result, shapes_cls):
    """Invoke every test_* method of a shape-check class on ``result``.

    Under ``--benchmark-only`` the non-benchmark tests are skipped, so the
    benchmarked regeneration test re-runs the same assertions itself.
    """
    instance = shapes_cls()
    for name in dir(instance):
        if name.startswith("test_"):
            getattr(instance, name)(result)
