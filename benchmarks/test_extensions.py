"""Benchmarks for the Section 2.2 extensions the paper did not evaluate:

* false-sharing avoidance on a coherent multiprocessor, and
* out-of-core list linearization through a paging layer.

Both are relocation-based optimizations that memory forwarding makes
safe; both are asserted to deliver the dramatic wins the paper predicts.
"""

from repro.smp import run_false_sharing_experiment
from repro.vm import run_out_of_core_experiment


def test_false_sharing_avoidance(benchmark):
    before, after = benchmark.pedantic(
        lambda: run_false_sharing_experiment(cpus=4, per_cpu_records=32, rounds=40),
        rounds=1,
        iterations=1,
    )
    assert before.checksum == after.checksum
    # The paper: false sharing "can hurt performance dramatically as the
    # line ping-pongs between processors despite the fact that no real
    # communication is taking place."
    assert before.coherence_misses > 1000
    assert after.coherence_misses == 0
    assert before.cycles > 5 * after.cycles


def test_out_of_core_linearization(benchmark):
    scattered, linearized = benchmark.pedantic(
        lambda: run_out_of_core_experiment(
            nodes=300, span_pages=64, resident_pages=8, traversals=3
        ),
        rounds=1,
        iterations=1,
    )
    assert scattered.checksum == linearized.checksum
    # "We can apply data relocation to improve the spatial locality
    # within pages (and hence on disk) for out-of-core applications."
    assert linearized.page_faults < scattered.page_faults / 20
    assert linearized.cycles < scattered.cycles / 20
