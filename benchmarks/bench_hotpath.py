#!/usr/bin/env python
"""Hot-path benchmark harness for the simulator kernel.

Times the end-to-end Figure 5 sweep (42 cells, direct mode -- no trace
cache) plus per-layer microbenchmarks of the structures the fused fast
path touches, and writes the results to ``BENCH_PR2.json`` next to this
file (override with ``--out``; the current pinned artifact is
``BENCH_PR4.json``).

The pinned baseline below was measured at the pre-PR-2 commit on the
machine that produced the committed ``BENCH_PR2.json``; ``speedup``
fields compare against it and are only meaningful at ``--scale 1.0`` on
comparable hardware.  Wall-clock numbers drift across machines, so
overhead claims (e.g. the timeline layer's <=2% disabled budget) should
always be A/B'd on one machine in one sitting -- gate with
``--baseline`` against a fresh pre-change run, and record the
measurement context in the artifact with ``--note``.

``--timeline-interval N`` runs the sweep with windowed sampling enabled
(see ``repro.obs.timeline``), which measures the *enabled* sampling
cost end to end; the default 0 keeps the reference hot path unwrapped.

Usage::

    PYTHONPATH=src python benchmarks/bench_hotpath.py [--scale S]
        [--out FILE] [--skip-sweep] [--skip-micro]
        [--timeline-interval N] [--note KEY=VALUE ...]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.apps import FIGURE5_APPS, Variant, get_application
from repro.cache.cache import Cache
from repro.core.machine import Machine, MachineConfig
from repro.cpu.timing import TimingModel
from repro.experiments.config import APP_SEEDS, experiment_config, line_sizes_for
from repro.obs import Registry
from repro.trace.recorder import capture_trace
from repro.trace.replay import replay_trace

#: Pre-PR measurement of the same 42-cell sweep at scale 1.0 (direct
#: mode, single process) on the machine that produced the committed
#: BENCH_PR2.json.  Re-pin when re-baselining on different hardware.
BASELINE = {
    "commit": "1222d6e",
    "scale": 1.0,
    "cells": 42,
    "seconds": 48.167,
    "refs": 9047230,
    "refs_per_sec": 187832,
    "cells_per_sec": 0.872,
}


# ----------------------------------------------------------------------
# End-to-end: the Figure 5 sweep, direct mode
# ----------------------------------------------------------------------
def bench_sweep(
    scale: float,
    verbose: bool = True,
    timeline_interval: int = 0,
    aggregate_out: dict | None = None,
) -> dict:
    """Run all 42 Figure 5 cells directly and time them.

    The sweep is instrumented the same way the experiment runner is:
    every cell's stats snapshot is absorbed into a :class:`Registry`, so
    the timed loop includes the snapshot/merge cost and the ``<=2%``
    overhead budget of the instrumentation layer is measured end to end
    rather than asserted.  ``timeline_interval`` > 0 additionally
    enables windowed sampling on every cell, timing the sampler's
    enabled cost the same way.
    """
    from dataclasses import replace

    registry = Registry()
    cells = 0
    started = time.perf_counter()
    for app_name in FIGURE5_APPS:
        for line_size in line_sizes_for(app_name):
            config = experiment_config(line_size)
            if timeline_interval:
                config = replace(config, timeline_interval=timeline_interval)
            for variant in (Variant.N, Variant.L):
                app = get_application(
                    app_name, scale=scale, seed=APP_SEEDS[app_name]
                )
                result = app.run(variant, config)
                registry.counter("runs.captured").inc()
                registry.absorb(result.stats.to_snapshot())
                cells += 1
                if verbose:
                    print(
                        f"  {app_name:10s} {line_size:4d}B {variant.value}  "
                        f"({time.perf_counter() - started:7.1f}s elapsed)",
                        file=sys.stderr,
                    )
    seconds = time.perf_counter() - started
    aggregate = registry.snapshot()
    refs = int(aggregate["ref.load.count"] + aggregate["ref.store.count"])
    out = {
        "scale": scale,
        "timeline_interval": timeline_interval,
        "cells": cells,
        "seconds": round(seconds, 3),
        "refs": refs,
        "refs_per_sec": int(refs / seconds),
        "cells_per_sec": round(cells / seconds, 3),
        "metrics": {
            "time.cycles": aggregate["time.cycles"],
            "core.instructions": int(aggregate["core.instructions"]),
            "cache.l2.miss.total": int(aggregate["cache.l2.miss.total"]),
        },
    }
    if scale == BASELINE["scale"]:
        out["speedup_vs_baseline"] = round(BASELINE["seconds"] / seconds, 2)
    if aggregate_out is not None:
        aggregate_out.update(
            (key, value)
            for key, value in aggregate.flat().items()
            if not key.startswith("runs.")
        )
    return out


def _figure5_tasks(scale: float) -> list:
    from repro.trace.sweep import SweepTask

    return [
        SweepTask(app_name, variant.value, line_size, scale, APP_SEEDS[app_name])
        for app_name in FIGURE5_APPS
        for line_size in line_sizes_for(app_name)
        for variant in (Variant.N, Variant.L)
    ]


def _clear_results(store) -> None:
    """Drop cached per-cell results, keeping traces (and their sidecars)."""
    import shutil

    shutil.rmtree(store.results_dir, ignore_errors=True)
    store.results_dir.mkdir(parents=True, exist_ok=True)


def _timed_sweep(
    tasks: list,
    store,
    jobs: int,
    batch: bool,
    verbose: bool,
    aggregate_out: dict | None = None,
) -> dict:
    """Time one ``execute_sweep`` pass; returns a measurement record.

    The aggregate metric tree is absorbed in *task order* (not result
    arrival order) so float summation happens in the same order in every
    arm -- a prerequisite for the bit-identical comparison.
    """
    from repro.trace.sweep import execute_sweep

    engines: dict = {}
    started = time.perf_counter()
    results = execute_sweep(
        tasks, store, jobs=jobs, verbose=verbose, batch=batch, engines=engines
    )
    seconds = time.perf_counter() - started
    registry = Registry()
    for task in tasks:
        result, _how = results[task]
        registry.absorb(result.stats.to_snapshot())
    aggregate = registry.snapshot()
    refs = int(aggregate["ref.load.count"] + aggregate["ref.store.count"])
    engine_counts: dict[str, int] = {}
    for label in engines.values():
        engine_counts[label] = engine_counts.get(label, 0) + 1
    if aggregate_out is not None:
        aggregate_out.update(aggregate.flat())
    return {
        "jobs": jobs,
        "seconds": round(seconds, 3),
        "refs": refs,
        "refs_per_sec": int(refs / seconds),
        "cells_per_sec": round(len(results) / seconds, 3),
        "engines": engine_counts,
    }


def bench_batch_sweep(
    scale: float,
    jobs: int = 1,
    verbose: bool = True,
    aggregates_out: dict | None = None,
    repeats: int = 1,
    direct: "callable | None" = None,
) -> dict:
    """Run the 42 cells through the replay pipelines, three ways.

    One throwaway store, three timed arms:

    * ``cold`` -- empty store: group by trace key, capture each group's
      stream once, replay the rest.  Dominated by the captures (a direct
      run of each group representative), so it bounds the first-ever
      sweep cost.
    * ``warm`` -- traces (and their resolved-stream sidecars) on disk,
      result cache cleared: the steady state the batch engine exists
      for, e.g. re-running the sweep after a config or simulator change.
      This is the headline number.
    * ``sequential_replay`` -- the same warm store through the legacy
      per-cell path (``batch=False``): load trace, decode, general-path
      replay, one cell at a time.  The like-for-like "one-at-a-time"
      alternative to the warm batch arm.

    ``repeats`` > 1 re-runs the warm arm that many times -- interleaved
    with the ``direct`` callable (the direct sweep) when given, so both
    sides of the headline ratio sample the same machine-load drift --
    and reports the minimum wall clock (the repeat least contaminated by
    interference), with every repeat's seconds kept alongside.

    All arms and repeats simulate the same 42 cells; the caller compares
    their aggregate metric trees (and the direct sweep's) bit for bit.
    """
    import shutil
    import tempfile

    from repro.trace.store import ArtifactStore

    tasks = _figure5_tasks(scale)
    tmp = tempfile.mkdtemp(prefix="bench-batch-")
    aggregates: dict[str, dict] = {"cold": {}, "warm": {}, "sequential": {}}
    warm_runs = []
    try:
        store = ArtifactStore(tmp)
        if verbose:
            print("  -- cold (captures + batch replays)", file=sys.stderr)
        cold = _timed_sweep(
            tasks, store, jobs, True, verbose, aggregates["cold"]
        )
        _clear_results(store)
        if verbose:
            print("  -- warm (batch replays only)", file=sys.stderr)
        warm_runs.append(
            _timed_sweep(tasks, store, jobs, True, verbose, aggregates["warm"])
        )
        _clear_results(store)
        if verbose:
            print("  -- warm (sequential general-path replays)", file=sys.stderr)
        sequential = _timed_sweep(
            tasks, store, 1, False, verbose, aggregates["sequential"]
        )
        for repeat in range(2, repeats + 1):
            if direct is not None:
                direct(repeat)
            _clear_results(store)
            if verbose:
                print(f"  -- warm repeat {repeat}/{repeats}", file=sys.stderr)
            warm_runs.append(
                _timed_sweep(
                    tasks, store, jobs, True, verbose,
                    aggregates.setdefault(f"warm#{repeat}", {}),
                )
            )
    finally:
        shutil.rmtree(tmp, ignore_errors=True)
    if aggregates_out is not None:
        aggregates_out.update(aggregates)
    warm = dict(min(warm_runs, key=lambda run: run["seconds"]))
    if len(warm_runs) > 1:
        warm["repeat_seconds"] = [run["seconds"] for run in warm_runs]
    refs = warm["refs"]
    return {
        "scale": scale,
        "jobs": jobs,
        "cells": len(tasks),
        "refs": refs,
        "cold": cold,
        "warm": warm,
        "sequential_replay": sequential,
    }


#: Child process for the peak-RSS A/B: one warm batch sweep against a
#: pre-warmed store, reporting its own peak resident set and a digest
#: of every cell's stats tree (so the arms can be compared bit for
#: bit).  Peak RSS is sampled from ``/proc/self/statm`` by a thread
#: rather than read from ``ru_maxrss``: the rusage high-water mark is
#: inherited across ``fork`` from the (large) bench parent, which would
#: mask both arms behind the parent's footprint.
_RSS_CHILD = """
import hashlib, json, os, sys, threading, time

from repro.apps import FIGURE5_APPS, Variant
from repro.experiments.config import APP_SEEDS, line_sizes_for
from repro.trace.store import ArtifactStore
from repro.trace.sweep import SweepTask, execute_sweep

page_kib = os.sysconf("SC_PAGE_SIZE") // 1024
peak = [0]
stop = threading.Event()

def sample() -> None:
    with open("/proc/self/statm") as handle:
        handle.seek(0)
        resident = int(handle.read().split()[1]) * page_kib
    if resident > peak[0]:
        peak[0] = resident

def poll() -> None:
    while not stop.is_set():
        sample()
        time.sleep(0.02)

threading.Thread(target=poll, daemon=True).start()
store_dir, scale = sys.argv[1], float(sys.argv[2])
tasks = [
    SweepTask(app, variant.value, line_size, scale, APP_SEEDS[app])
    for app in FIGURE5_APPS
    for line_size in line_sizes_for(app)
    for variant in (Variant.N, Variant.L)
]
results = execute_sweep(
    tasks, ArtifactStore(store_dir), jobs=1, verbose=False, batch=True
)
stop.set()
sample()
digest = hashlib.sha256()
for task in sorted(results, key=repr):
    result, _how = results[task]
    digest.update(
        json.dumps(result.stats.dump(), sort_keys=True, default=str).encode()
    )
print(json.dumps({
    "peak_rss_kib": peak[0],
    "cells": len(results),
    "digest": digest.hexdigest(),
}))
"""


def bench_rss(scale: float, verbose: bool = True) -> dict:
    """Peak-RSS A/B of the warm batch sweep: streaming vs materialized.

    Warms one throwaway store, then runs the identical warm 42-cell
    batch sweep in two fresh subprocesses: the default v3 streaming
    decode (one resolved chunk resident per group at a time), and the
    ``REPRO_BATCH_MATERIALIZE=1`` control arm, which recreates the
    pre-v3 behaviour of materialising each group's full resolved stream
    up front.  Each child samples its own peak resident set (KiB, via
    ``/proc/self/statm``), so neither arm's footprint can mask the
    other's, plus a digest over every cell's stats tree that both arms
    must agree on.
    """
    import os
    import shutil
    import subprocess
    import tempfile

    from repro.trace.store import ArtifactStore
    from repro.trace.sweep import execute_sweep

    tasks = _figure5_tasks(scale)
    tmp = tempfile.mkdtemp(prefix="bench-rss-")
    arms: dict[str, dict] = {}
    try:
        store = ArtifactStore(tmp)
        if verbose:
            print("  -- warming the trace store", file=sys.stderr)
        execute_sweep(tasks, store, jobs=1, verbose=False, batch=True)
        for mode, extra in (
            ("streaming", {}),
            ("materialized", {"REPRO_BATCH_MATERIALIZE": "1"}),
        ):
            _clear_results(store)  # force every cell to decode + replay
            if verbose:
                print(
                    f"  -- warm batch sweep, {mode} decode", file=sys.stderr
                )
            env = dict(os.environ)
            env.pop("REPRO_BATCH_MATERIALIZE", None)
            env.update(extra)
            proc = subprocess.run(
                [sys.executable, "-c", _RSS_CHILD, tmp, str(scale)],
                env=env,
                capture_output=True,
                text=True,
                check=True,
            )
            arms[mode] = json.loads(proc.stdout.strip().splitlines()[-1])
    finally:
        shutil.rmtree(tmp, ignore_errors=True)
    streaming = arms["streaming"]["peak_rss_kib"]
    materialized = arms["materialized"]["peak_rss_kib"]
    return {
        "scale": scale,
        "cells": len(tasks),
        "streaming": arms["streaming"],
        "materialized": arms["materialized"],
        "rss_reduction_kib": materialized - streaming,
        "rss_ratio": round(materialized / streaming, 3),
        "bit_identical": (
            arms["streaming"]["digest"] == arms["materialized"]["digest"]
        ),
    }


# ----------------------------------------------------------------------
# Per-layer microbenchmarks
# ----------------------------------------------------------------------
def bench_cache(iterations: int = 2_000_000) -> dict:
    """Raw Cache.lookup throughput: hits over a resident working set."""
    cache = Cache(size=4 * 1024, line_size=32, associativity=2)
    lines = [index * 32 for index in range(64)]
    for address in lines:
        cache.fill(address)
    lookup = cache.lookup
    nlines = len(lines)
    started = time.perf_counter()
    for index in range(iterations):
        lookup(lines[index % nlines], False)
    seconds = time.perf_counter() - started
    return {"iterations": iterations, "lookups_per_sec": int(iterations / seconds)}


def bench_timing(iterations: int = 2_000_000) -> dict:
    """TimingModel.execute throughput (the per-instruction cost floor)."""
    timing = TimingModel()
    execute = timing.execute
    started = time.perf_counter()
    for _ in range(iterations):
        execute(1)
    seconds = time.perf_counter() - started
    return {"iterations": iterations, "executes_per_sec": int(iterations / seconds)}


def bench_machine(iterations: int = 500_000) -> dict:
    """Machine.load/store round trips over a small resident array."""
    machine = Machine(MachineConfig())
    base = machine.malloc(4096)
    words = [base + offset for offset in range(0, 4096, 8)]
    nwords = len(words)
    load = machine.load
    store = machine.store
    started = time.perf_counter()
    for index in range(iterations):
        address = words[index % nwords]
        store(address, index)
        load(address)
    seconds = time.perf_counter() - started
    return {
        "iterations": iterations,
        "refs_per_sec": int(2 * iterations / seconds),
    }


def bench_replay(scale: float = 0.3) -> dict:
    """Trace replay throughput (events/sec) on a captured health run."""
    trace, _ = capture_trace(
        "health",
        Variant.N,
        experiment_config(32),
        scale=scale,
        seed=APP_SEEDS["health"],
    )
    replay_trace(trace, experiment_config(64))  # warm the resolved stream
    started = time.perf_counter()
    replay_trace(trace, experiment_config(128))
    seconds = time.perf_counter() - started
    return {
        "events": trace.event_count,
        "events_per_sec": int(trace.event_count / seconds),
    }


# ----------------------------------------------------------------------
def check_regression(sweep: dict, baseline_path: Path, budget: float) -> str | None:
    """Compare a sweep result against a pinned benchmark file.

    Returns an error message on regression beyond ``budget``, else None.
    When the scales match, wall-clock seconds are compared directly;
    when they differ (CI runs reduced scale against the pinned scale-1.0
    file), the scale-independent refs/sec throughput is compared
    instead.
    """
    pinned = json.loads(baseline_path.read_text())["sweep"]
    if sweep["scale"] == pinned["scale"]:
        ratio = sweep["seconds"] / pinned["seconds"]
        measure = f"{sweep['seconds']}s vs pinned {pinned['seconds']}s"
    else:
        ratio = pinned["refs_per_sec"] / sweep["refs_per_sec"]
        measure = (
            f"{sweep['refs_per_sec']} refs/s vs pinned "
            f"{pinned['refs_per_sec']} refs/s (scales differ)"
        )
    if ratio > 1.0 + budget:
        return (
            f"sweep regressed {100 * (ratio - 1):.1f}% "
            f"(budget {100 * budget:.0f}%): {measure}"
        )
    return None


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=1.0,
                        help="sweep workload scale (default 1.0)")
    parser.add_argument("--out", default=None, metavar="FILE",
                        help="output JSON path (default BENCH_PR2.json "
                             "next to this script)")
    parser.add_argument("--skip-sweep", action="store_true",
                        help="skip the end-to-end Figure 5 sweep")
    parser.add_argument("--skip-micro", action="store_true",
                        help="skip the per-layer microbenchmarks")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-cell progress on stderr")
    parser.add_argument("--baseline", default=None, metavar="FILE",
                        help="pinned benchmark JSON to gate against "
                             "(exit 1 on regression)")
    parser.add_argument("--max-regression", type=float, default=0.05,
                        metavar="R",
                        help="allowed fractional slowdown vs --baseline "
                             "(default 0.05)")
    parser.add_argument("--batch", action="store_true",
                        help="also time the 42-cell sweep through the "
                             "replay pipelines (cold / warm-batch / "
                             "sequential-replay arms on a throwaway "
                             "store) and verify all arms agree bit for "
                             "bit (exit 1 otherwise)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="process-pool shards for the batch sweep "
                             "(default 1; whole trace-key groups move)")
    parser.add_argument("--ab", action="store_true",
                        help="same-machine A/B: run the direct sweep and "
                             "the replay arms in one sitting and record "
                             "the warm-batch speedup against both the "
                             "direct sweep and the sequential replay "
                             "path (implies --batch)")
    parser.add_argument("--repeats", type=int, default=1, metavar="N",
                        help="re-run the headline A/B pair (direct sweep "
                             "and warm batch arm) N times, interleaved, "
                             "and report the minimum of each -- rejects "
                             "machine-load drift on shared hosts "
                             "(default 1)")
    parser.add_argument("--rss", action="store_true",
                        help="A/B the warm batch sweep's peak RSS in "
                             "fresh subprocesses: v3 streaming decode "
                             "vs REPRO_BATCH_MATERIALIZE=1 (the pre-v3 "
                             "whole-stream residency); both arms must "
                             "agree bit for bit (exit 1 otherwise)")
    parser.add_argument("--timeline-interval", type=int, default=0,
                        metavar="N",
                        help="run the sweep with timeline sampling every N "
                             "references (default 0 = sampler disabled)")
    parser.add_argument("--note", action="append", default=[],
                        metavar="KEY=VALUE",
                        help="embed a measurement-context note in the "
                             "report (repeatable)")
    args = parser.parse_args(argv)

    report: dict = {
        "bench": "hot-path kernel",
        "python": sys.version.split()[0],
        "baseline": BASELINE,
    }
    notes = dict(note.split("=", 1) for note in args.note if "=" in note)
    if notes:
        report["notes"] = notes
    if args.ab:
        args.batch = True
    direct_aggregate: dict = {}
    if not args.skip_sweep:
        print(f"== Figure 5 sweep (scale {args.scale}) ==", file=sys.stderr)
        report["sweep"] = bench_sweep(
            args.scale,
            verbose=not args.quiet,
            timeline_interval=args.timeline_interval,
            aggregate_out=direct_aggregate,
        )
    if args.batch:
        if args.timeline_interval:
            parser.error("--batch does not support --timeline-interval "
                         "(the sampler forces the general direct path)")
        print(
            f"== batch sweep (scale {args.scale}, jobs {args.jobs}) ==",
            file=sys.stderr,
        )
        batch_aggregates: dict = {}
        direct_records: list[dict] = []
        direct_repeat_aggregates: dict[str, dict] = {}

        def rerun_direct(repeat: int) -> None:
            aggregate = direct_repeat_aggregates.setdefault(
                f"direct#{repeat}", {}
            )
            print(
                f"  -- direct repeat {repeat}/{args.repeats}",
                file=sys.stderr,
            )
            direct_records.append(
                bench_sweep(
                    args.scale, verbose=not args.quiet, aggregate_out=aggregate
                )
            )

        report["batch_sweep"] = bench_batch_sweep(
            args.scale,
            jobs=args.jobs,
            verbose=not args.quiet,
            aggregates_out=batch_aggregates,
            repeats=args.repeats,
            direct=rerun_direct if args.ab and "sweep" in report else None,
        )
        # Every replay arm and repeat must agree with every other bit
        # for bit; the direct sweep (and its repeats) joins the
        # comparison when it ran in this sitting.
        arms = dict(batch_aggregates)
        arms.update(direct_repeat_aggregates)
        if direct_aggregate:
            arms["direct"] = direct_aggregate
        names = sorted(arms)
        diverged = sorted(
            key
            for a in names
            for b in names
            if a < b
            for key in set(arms[a]) | set(arms[b])
            if arms[a].get(key) != arms[b].get(key)
        )
        identical = not diverged
        report["batch_sweep"]["bit_identical"] = identical
        if not identical:
            report["batch_sweep"]["diverged_keys"] = diverged[:20]
            print(
                f"BATCH DIVERGENCE: {len(diverged)} aggregate metrics "
                f"differ across arms {names}, e.g. {diverged[:5]}",
                file=sys.stderr,
            )
        if args.ab and "sweep" in report:
            batch = report["batch_sweep"]
            direct_seconds = [report["sweep"]["seconds"]] + [
                record["seconds"] for record in direct_records
            ]
            report["ab"] = {
                "jobs": args.jobs,
                "repeats": args.repeats,
                "direct_seconds": min(direct_seconds),
                "batch_cold_seconds": batch["cold"]["seconds"],
                "batch_warm_seconds": batch["warm"]["seconds"],
                "sequential_replay_seconds":
                    batch["sequential_replay"]["seconds"],
                # Headline: warm batch sweep vs the direct sweep (the
                # methodology BENCH_PR4/PR6 pin), same machine, one
                # sitting; min over the interleaved repeats on each side.
                "speedup": round(
                    min(direct_seconds) / batch["warm"]["seconds"], 2
                ),
                "speedup_vs_sequential_replay": round(
                    batch["sequential_replay"]["seconds"]
                    / batch["warm"]["seconds"],
                    2,
                ),
                "bit_identical": identical,
            }
            if len(direct_seconds) > 1:
                report["ab"]["direct_repeat_seconds"] = direct_seconds
                report["ab"]["warm_repeat_seconds"] = (
                    batch["warm"].get("repeat_seconds", [])
                )
    if args.rss:
        print(f"== peak-RSS A/B (scale {args.scale}) ==", file=sys.stderr)
        report["rss"] = bench_rss(args.scale, verbose=not args.quiet)
    if not args.skip_micro:
        print("== microbenchmarks ==", file=sys.stderr)
        report["micro"] = {
            "cache_lookup": bench_cache(),
            "timing_execute": bench_timing(),
            "machine_load_store": bench_machine(),
            "trace_replay": bench_replay(),
        }

    out_path = Path(args.out) if args.out else Path(__file__).parent / "BENCH_PR2.json"
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    print(f"wrote {out_path}", file=sys.stderr)
    if args.baseline and "sweep" in report:
        error = check_regression(
            report["sweep"], Path(args.baseline), args.max_regression
        )
        if error:
            print(f"REGRESSION: {error}", file=sys.stderr)
            return 1
        print("regression gate passed", file=sys.stderr)
    if not report.get("batch_sweep", {}).get("bit_identical", True):
        return 1
    if not report.get("rss", {}).get("bit_identical", True):
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
