"""Benchmark/reproduction of Figure 10: SMV forwarding overhead."""

import pytest

from repro.apps.base import Variant
from repro.experiments import figure10


@pytest.fixture(scope="module")
def fig10(full_runner):
    return figure10.run(full_runner, scale=1.0)


def test_figure10_regeneration(benchmark, full_runner):
    result = benchmark.pedantic(
        lambda: figure10.run(full_runner, scale=1.0), rounds=1, iterations=1
    )
    _run_shape_checks(result, TestPaperShapes)
    assert len(result.rows) == 3


class TestPaperShapes:
    def test_l_degraded_by_forwarding(self, fig10):
        """Figure 10(a): dereferencing forwarding addresses plus cache
        pollution make scheme L slower than the unoptimized code."""
        assert fig10.row(Variant.L).cycles > fig10.row(Variant.N).cycles

    def test_perf_improves_only_marginally(self, fig10):
        """Figure 10(a): perfect forwarding recovers the loss but beats N
        only marginally -- one layout cannot serve both access patterns."""
        n = fig10.row(Variant.N).cycles
        perf = fig10.row(Variant.PERF).cycles
        assert perf < n            # it does improve...
        assert perf > 0.90 * n     # ...but by little

    def test_l_misses_increase(self, fig10):
        """Figure 10(b): touching both old and new locations pollutes the
        cache, increasing both load and store misses under scheme L."""
        assert fig10.row(Variant.L).load_misses > fig10.row(Variant.N).load_misses
        assert fig10.row(Variant.L).store_misses > fig10.row(Variant.N).store_misses

    def test_forwarded_reference_fractions(self, fig10):
        """Figure 10(c): a noticeable minority of loads (paper: 7.7%) and
        a smaller share of stores (paper: 1.7%) require forwarding."""
        row = fig10.row(Variant.L)
        assert 0.02 < row.loads_forwarded_fraction < 0.35
        assert 0.0 < row.stores_forwarded_fraction < row.loads_forwarded_fraction

    def test_only_l_forwards(self, fig10):
        for variant in (Variant.N, Variant.PERF):
            row = fig10.row(variant)
            assert row.loads_forwarded_fraction == 0.0
            assert row.stores_forwarded_fraction == 0.0

    def test_forwarding_time_visible_in_latency_split(self, fig10):
        """Figure 10(d): scheme L's average reference time includes a
        distinct forwarding component; the other schemes have none."""
        assert fig10.row(Variant.L).avg_load_forwarding > 0.5
        assert fig10.row(Variant.N).avg_load_forwarding == 0.0
        assert fig10.row(Variant.PERF).avg_load_forwarding == 0.0

    def test_pollution_raises_ordinary_latency_vs_perf(self, fig10):
        """Figure 10(d): under L, even the 'ordinary' portion suffers
        relative to Perf because old locations pollute the cache."""
        assert (
            fig10.row(Variant.L).avg_load_ordinary
            >= fig10.row(Variant.PERF).avg_load_ordinary
        )


def _run_shape_checks(result, shapes_cls):
    """Invoke every test_* method of a shape-check class on ``result``.

    Under ``--benchmark-only`` the non-benchmark tests are skipped, so the
    benchmarked regeneration test re-runs the same assertions itself.
    """
    instance = shapes_cls()
    for name in dir(instance):
        if name.startswith("test_"):
            getattr(instance, name)(result)
