"""Setup shim: lets `pip install -e .` work without the `wheel` package.

All real metadata lives in pyproject.toml; this file exists because the
build environment is offline and lacks `wheel`, so pip must fall back to
the legacy `setup.py develop` editable path.
"""

from setuptools import setup

setup()
